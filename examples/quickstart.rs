//! Quickstart: one facade over every index structure. Build a
//! [`Client`] per kind with `Irs::builder()`, discover what each kind
//! can do from its [`Capabilities`] (no probing, no panics), and run
//! the same IRS query through all of them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use irs::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200_000;
    println!("generating {n} Renfe-like trip intervals...");
    let data = irs::datagen::RENFE.generate(n, 42);
    let weights = irs::datagen::uniform_weights(n, 43);

    // Capability discovery: what each kind supports is queryable
    // metadata, reported for the build configuration (with/without
    // weights) before any query runs.
    println!("\ncapabilities (built without weights | with weights):");
    println!("{:<14} {:>12} {:>12}", "kind", "uniform", "weighted");
    for kind in IndexKind::ALL {
        let plain = kind.capabilities(false);
        let weighted = kind.capabilities(true);
        println!(
            "{:<14} {:>12} {:>12}",
            kind.name(),
            format!(
                "{}|{}",
                flag(plain.uniform_sample),
                flag(weighted.uniform_sample)
            ),
            format!(
                "{}|{}",
                flag(plain.weighted_sample),
                flag(weighted.weighted_sample)
            ),
        );
    }

    // One query: 8% of the domain, s = 1000 (the paper's defaults).
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let q = workload.generate(1, 8.0, 7)[0];
    let s = 1000;
    println!("\nquery {q:?}, s = {s}");

    // The same fallible facade serves every structure.
    for kind in IndexKind::ALL {
        let t = Instant::now();
        let client = Irs::builder().kind(kind).seed(1).build(&data)?;
        let built = t.elapsed();
        let hits = client.count(q)?;
        let t = Instant::now();
        let ids = client.sample(q, s)?;
        let sampled = t.elapsed();
        assert!(ids.iter().all(|&id| data[id as usize].overlaps(&q)));
        println!(
            "{:<14} built {built:>10.2?}, |q ∩ X| = {hits}, {s} samples in {sampled:?}",
            kind.name()
        );
    }

    // Weighted IRS (Problem 2): supply weights, pick a weighted-capable
    // kind, and the same surface serves weight-proportional samples.
    let client = Irs::builder()
        .kind(IndexKind::Awit)
        .weights(weights.clone())
        .seed(2)
        .build(&data)?;
    let t = Instant::now();
    let ids = client.sample_weighted(q, s)?;
    println!(
        "\nawit (weighted) {s} weight-proportional samples in {:?}",
        t.elapsed()
    );
    assert_eq!(ids.len(), s);

    // A kind that *cannot* serve an operation says so with a typed
    // error — compare `client.capabilities()` up front, or match on it.
    let ait = Irs::builder().kind(IndexKind::Ait).build(&data)?;
    match ait.sample_weighted(q, s) {
        Err(QueryError::UnsupportedOperation { op, reason }) => {
            println!("ait refuses `{op}` with a typed error: {reason}")
        }
        other => panic!("expected a typed capability error, got {other:?}"),
    }

    // Prepare-once-draw-many: the stream pays the query's candidate
    // computation once, then draws are O(1)-ish forever.
    let stream_ids: Vec<ItemId> = client.weighted_sample_stream(q)?.take(5 * s).collect();
    assert_eq!(stream_ids.len(), 5 * s);
    println!(
        "sample stream drew {} more weighted samples",
        stream_ids.len()
    );
    Ok(())
}

fn flag(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}
