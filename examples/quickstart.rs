//! Quickstart: build every index over the same dataset, run one IRS query,
//! and compare what each structure costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use irs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

fn main() {
    let n = 200_000;
    println!("generating {n} Renfe-like trip intervals...");
    let data = irs::datagen::RENFE.generate(n, 42);
    let weights = irs::datagen::uniform_weights(n, 43);

    // Build all indexes.
    let t = Instant::now();
    let ait = Ait::new(&data);
    println!(
        "AIT built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(ait.heap_bytes())
    );
    let t = Instant::now();
    let aitv = AitV::new(&data);
    println!(
        "AIT-V built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(aitv.heap_bytes())
    );
    let t = Instant::now();
    let awit = Awit::new(&data, &weights);
    println!(
        "AWIT built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(awit.heap_bytes())
    );
    let t = Instant::now();
    let itree = IntervalTree::new(&data);
    println!(
        "Interval tree built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(itree.heap_bytes())
    );
    let t = Instant::now();
    let hint = HintM::new(&data);
    println!(
        "HINTm built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(hint.heap_bytes())
    );
    let t = Instant::now();
    let kds = Kds::new(&data);
    println!(
        "KDS built in {:?} ({:.1} MiB)",
        t.elapsed(),
        mib(kds.heap_bytes())
    );

    // One query: 8% of the domain, s = 1000 (the paper's defaults).
    let workload = irs::datagen::QueryWorkload::from_data(&data);
    let q = workload.generate(1, 8.0, 7)[0];
    let s = 1000;
    println!("\nquery {q:?}, s = {s}");
    println!("result-set size |q ∩ X| = {}", ait.range_count(q));

    let mut rng = StdRng::seed_from_u64(1);
    for (name, samples) in [
        ("AIT", timed(&mut rng, |r| ait.sample(q, s, r))),
        ("AIT-V", timed(&mut rng, |r| aitv.sample(q, s, r))),
        ("Interval tree", timed(&mut rng, |r| itree.sample(q, s, r))),
        ("HINTm", timed(&mut rng, |r| hint.sample(q, s, r))),
        ("KDS", timed(&mut rng, |r| kds.sample(q, s, r))),
        (
            "AWIT (weighted)",
            timed(&mut rng, |r| awit.sample_weighted(q, s, r)),
        ),
    ] {
        let (elapsed, ids) = samples;
        assert!(ids.iter().all(|&id| data[id as usize].overlaps(&q)));
        println!("{name:<16} {s} samples in {elapsed:?}");
    }
}

fn timed<R>(rng: &mut R, f: impl Fn(&mut R) -> Vec<ItemId>) -> (std::time::Duration, Vec<ItemId>) {
    let t = Instant::now();
    let out = f(rng);
    (t.elapsed(), out)
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
