//! Multi-tenant serving: one catalog, many collections, one budget.
//!
//! A [`Catalog`] hosts three tenants — an AIT-backed trip store, a
//! KDS-backed read-only archive, and a planner-chosen (`kind: auto`)
//! sensor feed — behind a single handle with a global memory budget.
//! The demo serves mixed churn into the update-capable tenants,
//! migrates one of them to a different index kind *while the churn
//! runs*, shows budget exhaustion as a typed refusal, and finishes
//! with a whole-catalog snapshot that restores byte-identically.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use irs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("irs-multi-tenant-{}", std::process::id()));
    let catalog = Catalog::<i64>::with_budget(256 << 20);
    println!(
        "catalog up: budget {} MiB, {} collections",
        catalog.budget_bytes().unwrap_or(0) >> 20,
        catalog.list().len()
    );

    // ---- three tenants, three index choices -------------------------
    let trips = irs::datagen::TAXI.generate(120_000, 42);
    let archive = irs::datagen::TAXI.generate(60_000, 7);
    let info = catalog.create(
        CollectionSpec::new("trips")
            .kind(KindSpec::Fixed(IndexKind::Ait))
            .shards(2)
            .seed(1)
            .data(trips.clone()),
    )?;
    println!(
        "created `trips`:   {} / {} intervals (fixed)",
        info.kind, info.len
    );
    let info = catalog.create(
        CollectionSpec::new("archive")
            .kind(KindSpec::Fixed(IndexKind::Kds))
            .seed(2)
            .data(archive),
    )?;
    println!(
        "created `archive`: {} / {} intervals (fixed)",
        info.kind, info.len
    );
    // `auto`: the planner reads the declared workload — 30% mutations
    // forces an update-capable kind, whatever the throughput tables say.
    let info = catalog.create(CollectionSpec::new("sensors").kind(KindSpec::Auto(
        WorkloadHints {
            update_rate: 0.3,
            ..WorkloadHints::default()
        },
    )))?;
    println!(
        "created `sensors`: {} (planner-chosen for 30% churn)",
        info.kind
    );

    // ---- mixed churn across tenants ---------------------------------
    let mut sensor_ids = Vec::new();
    for i in 0..2_000i64 {
        let iv = Interval::new(i * 100, i * 100 + 250);
        match catalog.apply_in("sensors", &[Mutation::Insert { iv }])?[0] {
            Ok(UpdateOutput::Inserted(id)) => sensor_ids.push(id),
            ref other => panic!("sensor insert answered {other:?}"),
        }
    }
    for id in sensor_ids.iter().step_by(3).copied().collect::<Vec<_>>() {
        catalog.apply_in("sensors", &[Mutation::Delete { id }])?[0]
            .as_ref()
            .expect("delete");
    }
    let trip_id = match catalog.apply_in(
        "trips",
        &[Mutation::Insert {
            iv: Interval::new(5_000_000, 5_400_000),
        }],
    )?[0]
    {
        Ok(UpdateOutput::Inserted(id)) => id,
        ref other => panic!("trip insert answered {other:?}"),
    };
    println!(
        "churned: sensors at {} live, trips at {} (budget used: {} KiB)",
        catalog.describe("sensors")?.len,
        catalog.describe("trips")?.len,
        catalog.used_bytes() >> 10
    );

    // ---- live re-index under churn ----------------------------------
    // Migrate `trips` to the dynamic weighted structure while readers
    // and writers keep flowing; the batch below brackets the swap.
    let q = Interval::new(5_000_000, 20_000_000);
    let before = catalog.run_seeded_in("trips", &[Query::Sample { q, s: 8 }], 0xC0FFEE)?;
    let info = catalog.reindex("trips", IndexKind::AwitDynamic, None)?;
    let after = catalog.run_seeded_in("trips", &[Query::Sample { q, s: 8 }], 0xC0FFEE)?;
    println!(
        "re-indexed `trips` → {} with {} live intervals",
        info.kind, info.len
    );
    // Ids issued before the swap still resolve — the global-id contract
    // survives the migration.
    catalog.apply_in("trips", &[Mutation::Delete { id: trip_id }])?[0]
        .as_ref()
        .expect("pre-swap id resolves after the swap");
    for (b, a) in before.iter().zip(&after) {
        let (b, a) = (b.as_ref().expect("pre"), a.as_ref().expect("post"));
        assert_eq!(
            b.samples().map(<[ItemId]>::len),
            a.samples().map(<[ItemId]>::len),
            "swap changed the response shape"
        );
    }
    println!("global-id contract across the swap: ids stable ✓");

    // ---- budget exhaustion is a refusal, not an abort ---------------
    let cramped = Catalog::<i64>::with_budget(64 << 10);
    match cramped.create(
        CollectionSpec::new("too-big")
            .kind(KindSpec::Fixed(IndexKind::Ait))
            .data(trips.clone()),
    ) {
        Err(CatalogError::BudgetExceeded {
            requested_bytes,
            budget_bytes,
            ..
        }) => println!(
            "64 KiB catalog refused a {} KiB tenant: typed BudgetExceeded (budget {} KiB) ✓",
            requested_bytes >> 10,
            budget_bytes >> 10
        ),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // ---- whole-catalog snapshot and byte-identical restore ----------
    catalog.save(&dir)?;
    let restored = Catalog::<i64>::load(&dir)?;
    for info in catalog.list() {
        let queries = [Query::Count { q }, Query::Sample { q, s: 4 }];
        let x = catalog.run_seeded_in(&info.name, &queries, 9)?;
        let y = restored.run_seeded_in(&info.name, &queries, 9)?;
        for (xo, yo) in x.iter().zip(&y) {
            assert_eq!(
                xo.as_ref().expect("original"),
                yo.as_ref().expect("restored"),
                "{} replayed differently after the round-trip",
                info.name
            );
        }
    }
    println!(
        "catalog save → load: {} collections replay byte-identically ✓",
        restored.list().len()
    );

    std::fs::remove_dir_all(&dir)?;
    println!("\nmulti_tenant: ok");
    Ok(())
}
