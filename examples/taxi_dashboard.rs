//! Ex. 1 of the paper: a vehicle-management dashboard. "Show vehicles that
//! were active between 17:00 and 22:00 a week ago" — visualizing hundreds
//! of thousands of trips would stall the UI, so the dashboard renders a
//! random sample instead, and the sample histogram tracks the true
//! distribution.
//!
//! Served through the `Irs::builder()` facade over a monolithic AIT
//! (the default single-shard backend); compare
//! `examples/engine_dashboard.rs`, where the same facade fronts the
//! sharded engine.
//!
//! ```sh
//! cargo run --release --example taxi_dashboard
//! ```

use irs::prelude::*;
use std::time::Instant;

/// Seconds in a week; trips are timestamped within one week here.
const WEEK: i64 = 7 * 24 * 3600;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic trips: rush-hour clustered starts, taxi-like durations.
    let n = 500_000;
    let data = irs::datagen::clustered(n, WEEK, 14, 5400, 900, 11);
    println!("{n} taxi trips over one week");

    let client = Irs::builder().kind(IndexKind::Ait).seed(5).build(&data)?;

    // The dashboard window: day 3, 17:00-22:00.
    let day3 = 3 * 24 * 3600;
    let q = Interval::new(day3 + 17 * 3600, day3 + 22 * 3600);

    let t = Instant::now();
    let active = client.count(q)?;
    println!(
        "\n{} trips active in the window (counted in {:?})",
        active,
        t.elapsed()
    );

    // Sampling 2,000 trips is enough to draw the activity histogram.
    let s = 2000;
    let t = Instant::now();
    let sample = client.sample(q, s)?;
    let t_sample = t.elapsed();

    // Exact histogram (what a full scan would render) vs sampled estimate:
    // bucket trips by their start hour-of-day.
    let t = Instant::now();
    let full = client.search(q)?;
    let t_full = t.elapsed();

    let hist = |ids: &[ItemId]| {
        let mut h = [0usize; 24];
        for &id in ids {
            let hour = (data[id as usize].lo % (24 * 3600)) / 3600;
            h[hour as usize] += 1;
        }
        h
    };
    let h_full = hist(&full);
    let h_sample = hist(&sample);

    println!("sampled {s} trips in {t_sample:?}; full scan took {t_full:?}");
    println!("\nstart-hour histogram (# = exact share, + = sampled estimate):");
    for hour in 0..24 {
        let exact = h_full[hour] as f64 / full.len().max(1) as f64;
        let est = h_sample[hour] as f64 / s as f64;
        let bar_e = "#".repeat((exact * 200.0).round() as usize);
        let bar_s = "+".repeat((est * 200.0).round() as usize);
        println!("{hour:>2}h exact {bar_e}");
        println!("    sample {bar_s}");
    }

    // The estimate should track the truth closely.
    let tv: f64 = (0..24)
        .map(|h| {
            (h_full[h] as f64 / full.len().max(1) as f64 - h_sample[h] as f64 / s as f64).abs()
        })
        .sum::<f64>()
        / 2.0;
    println!("\ntotal variation distance (sample vs exact): {tv:.4}");
    assert!(tv < 0.1, "sampled histogram diverged from the exact one");

    // Live refresh: the dashboard keeps drawing from the same window.
    // The stream paid the query's candidate computation once, so each
    // refresh costs only the draws.
    let t = Instant::now();
    let refreshed: Vec<ItemId> = client.sample_stream(q)?.take(3 * s).collect();
    println!(
        "three more {s}-trip refreshes streamed in {:?} (prepare-once-draw-many)",
        t.elapsed()
    );
    assert_eq!(refreshed.len(), 3 * s);
    Ok(())
}
