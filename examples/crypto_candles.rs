//! Ex. 3 of the paper: a historical cryptocurrency database. Each candle's
//! [low, high] price range is an interval; "when did BTC trade inside
//! [30,000, 40,000]?" is a range query over those intervals. Volume-
//! weighted sampling (AWIT behind the `Irs::builder()` facade) surfaces
//! the candles that mattered most, with probability exactly proportional
//! to traded volume.
//!
//! ```sh
//! cargo run --release --example crypto_candles
//! ```

use irs::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A random-walk price series: one [low, high] candle per minute over
    // ~two years, plus a traded volume per candle.
    let n = 1_000_000;
    let mut rng = StdRng::seed_from_u64(2024);
    let mut price: f64 = 35_000.0;
    let mut data: Vec<Interval64> = Vec::with_capacity(n);
    let mut volumes: Vec<f64> = Vec::with_capacity(n);
    for _ in 0..n {
        let drift: f64 = rng.random_range(-0.003..0.003);
        price = (price * (1.0 + drift)).clamp(1_000.0, 120_000.0);
        let spread = price * rng.random_range(0.0002..0.01);
        let lo = (price - spread / 2.0) as i64;
        let hi = (price + spread / 2.0) as i64;
        data.push(Interval::new(lo, hi.max(lo + 1)));
        // Volume spikes on big moves.
        volumes.push(1.0 + 5_000.0 * drift.abs() + rng.random_range(0.0..10.0));
    }
    println!(
        "{n} candles, price domain {:?}",
        irs::domain_bounds(&data).unwrap()
    );

    // The builder validates the volumes up front (a NaN or negative
    // volume would be a typed BuildError naming the row), then builds
    // an AWIT for volume-proportional IRS.
    let t = Instant::now();
    let client = Irs::builder()
        .kind(IndexKind::Awit)
        .weights(volumes.clone())
        .seed(9)
        .build(&data)?;
    println!("AWIT client built in {:?}", t.elapsed());

    // "When was BTC inside [30k, 40k]?"
    let band = Interval::new(30_000, 40_000);
    let t = Instant::now();
    let hits = client.count(band)?;
    let band_volume: f64 = client
        .search(band)?
        .iter()
        .map(|&id| volumes[id as usize])
        .sum();
    println!(
        "\n{} candles touched {band:?} (total volume {:.0}) — counted in {:?}",
        hits,
        band_volume,
        t.elapsed()
    );

    // Volume-weighted sample: heavy-volume candles dominate, as they
    // should for a "what moved the market in this band" view.
    let s = 20;
    let t = Instant::now();
    let sample = client.sample_weighted(band, s)?;
    println!("{s} volume-weighted candle samples in {:?}:", t.elapsed());
    for id in &sample {
        let iv = data[*id as usize];
        println!(
            "  minute {:>7}: range {iv:?}, volume {:8.1}",
            id, volumes[*id as usize]
        );
    }

    // Sanity: the average volume of weighted samples must exceed the
    // band's plain average (heavier candles are drawn more often). The
    // big sample comes off a stream — candidate computation ran once,
    // 20,000 draws amortized behind it.
    let big_sample: Vec<ItemId> = client.weighted_sample_stream(band)?.take(20_000).collect();
    let avg_sampled: f64 = big_sample
        .iter()
        .map(|&id| volumes[id as usize])
        .sum::<f64>()
        / big_sample.len() as f64;
    let avg_band = band_volume / hits as f64;
    println!("\navg volume: weighted samples {avg_sampled:.1} vs uniform band {avg_band:.1}");
    assert!(
        avg_sampled > avg_band,
        "volume weighting should bias samples toward heavy candles"
    );

    // And the facade stays honest about what this build cannot do:
    // an AWIT holding real volumes refuses *uniform* sampling with a
    // typed error instead of a silently wrong answer.
    assert!(!client.capabilities().uniform_sample);
    assert!(matches!(
        client.sample(band, 5),
        Err(QueryError::UnsupportedOperation { .. })
    ));
    Ok(())
}
