//! Warm restart: survive a process death without rebuilding.
//!
//! A "service" builds a sharded engine over a large dataset, serves
//! some traffic, ingests a little, and snapshots itself to disk with
//! [`Client::save`]. The "restarted process" then comes up with
//! [`Client::load`] — no index construction — and the demo proves the
//! restore is *byte-equivalent*: the same seeded batch draws the same
//! samples, ids issued before the restart still resolve, and new
//! inserts keep the global-id contract. Finally it demonstrates the
//! failure side: a truncated shard file is refused with a typed
//! [`PersistError`], never a panic.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```

use irs::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300_000;
    println!("generating {n} taxi-like trip intervals...");
    let data = irs::datagen::TAXI.generate(n, 42);
    let dir = std::env::temp_dir().join(format!("irs-warm-restart-{}", std::process::id()));

    // ---- first life: build, serve, ingest, snapshot -----------------
    let t = Instant::now();
    let mut client = Irs::builder()
        .kind(IndexKind::Ait)
        .shards(4)
        .seed(7)
        .build(&data)?;
    let build = t.elapsed();
    println!("cold build: {build:.2?} ({} shards)", client.shard_count());

    let q = Interval::new(5_000_000, 20_000_000);
    println!("serving: count({q:?}) = {}", client.count(q)?);
    let early_id = client.insert(Interval::new(6_000_000, 6_500_000))?;
    println!("ingested one interval before the snapshot: id {early_id}");

    let batch = [
        Query::Sample { q, s: 8 },
        Query::Count { q },
        Query::Sample {
            q: Interval::new(0, 2_000_000),
            s: 4,
        },
    ];
    let before = client.run_seeded(&batch, 0xC0FFEE);

    let t = Instant::now();
    client.save(&dir)?;
    println!("snapshot saved to {} in {:.2?}", dir.display(), t.elapsed());
    drop(client); // the process "dies"

    // ---- second life: load and verify byte-equivalence --------------
    let t = Instant::now();
    let mut revived = Client::<i64>::load(&dir)?;
    let load = t.elapsed();
    println!("warm restart: {load:.2?} (cold build was {build:.2?}) — no rebuild, state intact");

    let after = revived.run_seeded(&batch, 0xC0FFEE);
    assert_eq!(before, after, "loaded engine must replay byte-identically");
    println!("seeded replay across the restart: byte-identical ✓");

    // Ids issued before the restart survive it; new ids never collide.
    revived.remove(early_id)?;
    let late_id = revived.insert(Interval::new(6_000_000, 6_500_000))?;
    assert_ne!(early_id, late_id, "retired ids are never reissued");
    println!("global-id contract across the restart: ids stable ✓");

    // ---- failure side: corruption is typed, never a panic -----------
    let shard0 = dir.join("shard-0000.irs");
    let bytes = std::fs::read(&shard0)?;
    std::fs::write(&shard0, &bytes[..bytes.len() / 2])?;
    match Client::<i64>::load(&dir).map(|_| ()) {
        Err(e @ PersistError::Truncated { .. }) => {
            println!("truncated shard file refused: {e}");
        }
        other => panic!("expected a typed truncation error, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir)?;
    println!("\nwarm_restart: ok");
    Ok(())
}
