//! A multi-threaded query service on one shared engine: the shape the
//! concurrent read path exists for. One `Client` is built, cloned into
//! a fleet of worker threads (cheap `Arc` handles), and every worker
//! serves its own request stream concurrently — counts, searches, and
//! sample draws all run in parallel on the caller threads, while a
//! dedicated ingest thread trickles fresh intervals in through the
//! writer seat without ever blocking the readers for more than one
//! mutation batch.
//!
//! The demo measures the same request mix served by 1 thread and by
//! all available threads, and verifies that a seeded batch replays
//! byte-identically no matter how many threads are hammering the
//! backend — the two properties (scaling and determinism) that define
//! the concurrency model.
//!
//! ```sh
//! cargo run --release --example concurrent_service
//! ```

use irs::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Seconds in a week; intervals are timestamped within one week.
const WEEK: i64 = 7 * 24 * 3600;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300_000;
    let data = irs::datagen::clustered(n, WEEK, 14, 5400, 900, 23);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());

    let t = Instant::now();
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .shards(threads.min(8))
        .seed(99)
        .build(&data)?;
    println!(
        "{n} intervals in {} shards, built in {:?}; serving from {threads} caller threads",
        client.shard_count(),
        t.elapsed()
    );

    // The request mix every worker serves: a window count, a sample of
    // what's active, and a stabbing drill-down.
    let windows: Vec<Interval64> = (0..7)
        .map(|d| Interval::new(d * 24 * 3600 + 18 * 3600, d * 24 * 3600 + 21 * 3600))
        .collect();

    // --- Scaling: same request volume, 1 caller vs all callers. ---
    let requests_total = 1_200usize;
    for callers in [1usize, threads] {
        let served = AtomicU64::new(0);
        let t = Instant::now();
        std::thread::scope(|scope| {
            for w in 0..callers {
                let handle = client.clone(); // moved into the thread
                let windows = &windows;
                let served = &served;
                scope.spawn(move || {
                    for r in 0..requests_total / callers {
                        let q = windows[(w + r) % windows.len()];
                        let batch = [
                            Query::Count { q },
                            Query::Sample { q, s: 256 },
                            Query::Stab { p: q.lo },
                        ];
                        for result in handle.run(&batch) {
                            result.expect("service query failed");
                        }
                        served.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let qps = served.load(Ordering::Relaxed) as f64 / t.elapsed().as_secs_f64();
        println!("  {callers:>2} caller(s): {qps:>10.0} queries/sec");
    }

    // --- Live ingest beside the readers. ---
    let stop = AtomicBool::new(false);
    let ingested = std::thread::scope(|scope| {
        let writer = client.clone();
        let stop_flag = &stop;
        let ingest = scope.spawn(move || {
            let mut ids = Vec::new();
            while !stop_flag.load(Ordering::Relaxed) {
                // The writer seat serializes mutations across clones;
                // readers keep running between batches.
                let id = writer
                    .writer()
                    .insert(Interval::new(WEEK, WEEK + 600))
                    .expect("ingest insert");
                ids.push(id);
            }
            ids
        });
        for _ in 0..threads.saturating_sub(1).max(1) {
            let handle = client.clone();
            let windows = &windows;
            scope.spawn(move || {
                for r in 0..200 {
                    let q = windows[r % windows.len()];
                    handle.count(q).expect("reader count");
                    handle.sample(q, 64).expect("reader sample");
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        ingest.join().expect("ingest thread")
    });
    println!(
        "  ingested {} intervals while {} readers ran; len = {}",
        ingested.len(),
        threads.saturating_sub(1).max(1),
        client.len()
    );
    assert_eq!(client.len(), n + ingested.len());

    // --- Determinism: a seeded batch is a pure function of its seed. ---
    let batch: Vec<Query<i64>> = windows
        .iter()
        .map(|&q| Query::Sample { q, s: 64 })
        .collect();
    let reference = client.run_seeded(&batch, 0xD577);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let handle = client.clone();
            let (batch, reference) = (&batch, &reference);
            scope.spawn(move || {
                for _ in 0..10 {
                    assert_eq!(
                        &handle.run_seeded(batch, 0xD577),
                        reference,
                        "seeded replay diverged under concurrency"
                    );
                }
            });
        }
    });
    println!("  seeded replay byte-identical across {threads} concurrent callers ✓");
    Ok(())
}
