//! Live ingest: a sliding-window stream served while it updates.
//!
//! Simulates a trip-tracking service: every tick a batch of fresh trips
//! arrives (`extend_batch` — the paper's pooled batch insertion), the
//! oldest window expires (`remove`), and dashboards keep querying
//! throughout. One `Client`, both directions, typed errors everywhere.
//!
//! ```sh
//! cargo run --release --example live_ingest
//! ```

use irs::prelude::*;
use std::collections::VecDeque;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 50_000;
    let batch = 1_000;
    let ticks = 20;
    println!("seeding a {window}-trip window (taxi profile), {batch} trips in/out per tick...");
    let seed_data = irs::datagen::TAXI.generate(window, 42);
    let stream = irs::datagen::TAXI.generate(batch * ticks, 43);

    // AIT: the paper's §III-D update algorithms behind the unified API.
    // Swap in `.shards(4)` and the same calls route across shards.
    let mut client = Irs::builder()
        .kind(IndexKind::Ait)
        .seed(7)
        .build(&seed_data)?;
    assert!(
        client.capabilities().update,
        "ait must support live updates"
    );

    // FIFO of live ids: build-time ids first, then whatever the inserts
    // return — ids are stable, so expiry is just `remove(oldest)`.
    let mut live: VecDeque<ItemId> = (0..seed_data.len() as ItemId).collect();

    let workload = irs::datagen::QueryWorkload::from_data(&seed_data);
    let queries = workload.generate(16, 4.0, 9);

    let started = Instant::now();
    let (mut ingested, mut expired, mut sampled) = (0usize, 0usize, 0usize);
    for tick in 0..ticks {
        // Ingest: one pooled batch, immediately queryable.
        let arriving = &stream[tick * batch..(tick + 1) * batch];
        let ids = client.extend_batch(arriving)?;
        ingested += ids.len();
        live.extend(ids);

        // Expire: the window's oldest trips. Their ids never reappear.
        for _ in 0..batch {
            let id = live.pop_front().expect("window is never empty");
            client.remove(id)?;
            expired += 1;
        }

        // Serve: the dashboard keeps sampling between mutations.
        for &q in &queries {
            sampled += client.sample(q, 64)?.len();
        }

        if (tick + 1) % 5 == 0 {
            println!(
                "tick {:>2}: window = {} trips, {} in / {} out, {} samples served",
                tick + 1,
                client.len(),
                ingested,
                expired,
                sampled
            );
        }
    }
    assert_eq!(client.len(), window, "in/out balance must hold the window");

    let dt = started.elapsed();
    let ops = (ingested + expired) as f64 / dt.as_secs_f64();
    println!(
        "\n{ingested} inserts + {expired} removes + {sampled} samples in {dt:.2?} \
         ({ops:.0} updates/sec interleaved with queries)"
    );

    // Expired trips are really gone: a removed id is never sampled and
    // never removable twice.
    let gone = live.pop_front().unwrap();
    client.remove(gone)?;
    match client.remove(gone) {
        Err(UpdateError::UnknownId { id }) => {
            println!("retired id {id} stays retired (typed error)")
        }
        other => panic!("expected UnknownId, got {other:?}"),
    }
    Ok(())
}
