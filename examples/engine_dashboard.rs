//! A fleet-operations dashboard backed by the sharded engine through
//! the unified facade: one `Client` serves every widget on the page —
//! live counts, a sampled activity histogram, a weighted
//! "revenue-proportional" sample, and a point-in-time drill-down — as a
//! single mixed batch per refresh, every answer a typed `Result`.
//!
//! Compare `examples/taxi_dashboard.rs`, which runs the same facade
//! over one single-threaded index; here `.shards(k)` swaps in the
//! sharded engine and nothing else about the code changes — that is
//! the point of the `Backend` abstraction. (For the multi-threaded
//! service shape — one engine shared by a fleet of caller threads —
//! see `examples/concurrent_service.rs`.)
//!
//! ```sh
//! cargo run --release --example engine_dashboard
//! ```

use irs::prelude::*;
use std::time::Instant;

/// Seconds in a week; trips are timestamped within one week here.
const WEEK: i64 = 7 * 24 * 3600;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500_000;
    let data = irs::datagen::clustered(n, WEEK, 14, 5400, 900, 11);
    // "Fare" weights: longer trips earn proportionally more.
    let weights: Vec<f64> = data
        .iter()
        .map(|iv| 2.5 + (iv.hi - iv.lo) as f64 / 60.0)
        .collect();

    let shards = std::thread::available_parallelism().map_or(2, |p| p.get().max(2));
    let t = Instant::now();
    let client = Irs::builder()
        .kind(IndexKind::Kds)
        .shards(shards)
        .weights(weights.clone())
        .seed(7)
        .build(&data)?;
    println!(
        "{n} taxi trips indexed into {} {} shards in {:?}",
        client.shard_count(),
        client.kind(),
        t.elapsed()
    );

    // One dashboard refresh = one batch: the evening window on each of
    // the 7 days (count + sample), a revenue-weighted sample for the
    // fares widget, and a "what was on the road at midnight" drill-down.
    let s = 1500;
    let evening =
        |day: i64| Interval::new(day * 24 * 3600 + 17 * 3600, day * 24 * 3600 + 22 * 3600);
    let mut batch = Vec::new();
    for day in 0..7 {
        batch.push(Query::Count { q: evening(day) });
        batch.push(Query::Sample { q: evening(day), s });
    }
    batch.push(Query::SampleWeighted { q: evening(3), s });
    batch.push(Query::Stab { p: 4 * 24 * 3600 });

    let t = Instant::now();
    // Every answer is a typed Result; `?` on the collect surfaces the
    // first failure (unsupported op, dead shard) instead of a panic.
    let out: Vec<QueryOutput> = client.run(&batch).into_iter().collect::<Result<_, _>>()?;
    let refresh = t.elapsed();

    println!("\nevening activity (17:00-22:00), count + {s}-trip sample per day:");
    for day in 0..7usize {
        let count = out[day * 2].count().unwrap();
        let sample = out[day * 2 + 1].samples().unwrap();
        // Mean duration estimated from the sample vs the count headline.
        let mean_min = sample
            .iter()
            .map(|&id| (data[id as usize].hi - data[id as usize].lo) as f64 / 60.0)
            .sum::<f64>()
            / sample.len().max(1) as f64;
        let bar = "#".repeat(count / 2_000);
        println!("day {day}: {count:>6} trips, mean {mean_min:>5.1} min  {bar}");
    }

    let weighted = out[14].samples().unwrap();
    let mean_fare =
        weighted.iter().map(|&id| weights[id as usize]).sum::<f64>() / weighted.len().max(1) as f64;
    let plain_mean = {
        let ids = out[7].samples().unwrap(); // day 3 uniform sample
        ids.iter().map(|&id| weights[id as usize]).sum::<f64>() / ids.len().max(1) as f64
    };
    println!("\nfares widget (day 3): revenue-weighted sample mean fare {mean_fare:.2}");
    println!("(uniform sample mean fare {plain_mean:.2} — weighted skews higher, as it must)");
    assert!(
        mean_fare > plain_mean,
        "weighted sampling must over-represent expensive trips"
    );

    let midnight = out[15].ids().unwrap();
    println!(
        "\n{} trips were on the road at day-4 midnight",
        midnight.len()
    );

    println!(
        "\nwhole dashboard refreshed in {refresh:?} ({} requests)",
        batch.len()
    );

    // Sanity: the engine agrees with a direct oracle count on one window.
    let bf = irs::BruteForce::new(&data);
    assert_eq!(out[6].count().unwrap(), bf.range_count(evening(3)));
    Ok(())
}
