//! Ex. 2 of the paper: an online bookstore / library analytics job.
//! "Estimate shopping statistics per month from 2018 to 2023" — per-month
//! result sets are huge, but a fixed-size independent sample per month
//! estimates the statistic at a fraction of the cost, and the index keeps
//! absorbing new transactions through batched insertions.
//!
//! The estimation pipeline runs through the `Irs::builder()` facade as
//! one mixed batch (search + sample per month); the ingestion tail
//! drives the index directly — the facade's static snapshot reports
//! `capabilities().update == false`, and querying that metadata is how
//! a job decides which surface to use.
//!
//! ```sh
//! cargo run --release --example library_analytics
//! ```

use irs::prelude::*;
use std::time::Instant;

const DAY: i64 = 24 * 3600;
const MONTH: i64 = 30 * DAY;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six years of borrow transactions: borrow date → return date
    // (1-60 days, Book-profile-like long tail).
    let years = 6;
    let domain = years * 12 * MONTH;
    let n = 800_000;
    let data = irs::datagen::uniform(n, domain, 60 * DAY, 31);
    println!("{n} borrow records over {years} years");

    let t = Instant::now();
    let client = Irs::builder().kind(IndexKind::Ait).seed(3).build(&data)?;
    println!("AIT client built in {:?}", t.elapsed());

    // Ground truth statistic: average borrow duration per month, estimated
    // from s = 500 samples instead of the full month's result set. One
    // batch answers all months: search (exact) + sample (estimate) pairs.
    let s = 500;
    let months = 6;
    let mut batch = Vec::new();
    for month in 0..months {
        let q = Interval::new(month * MONTH, (month + 1) * MONTH);
        batch.push(Query::Search { q });
        batch.push(Query::Sample { q, s });
    }
    let mut outputs = client.run(&batch).into_iter();

    let mean_duration = |ids: &[ItemId]| {
        ids.iter()
            .map(|&id| (data[id as usize].hi - data[id as usize].lo) as f64)
            .sum::<f64>()
            / ids.len().max(1) as f64
    };
    println!("\nper-month average borrow duration (exact vs {s}-sample estimate):");
    let mut worst_rel_err: f64 = 0.0;
    for month in 0..months as usize {
        let ids = outputs.next().unwrap()?.into_ids().expect("search output");
        let sample = outputs
            .next()
            .unwrap()?
            .into_samples()
            .expect("sample output");
        let exact = mean_duration(&ids);
        let est = mean_duration(&sample);
        let rel = (est - exact).abs() / exact;
        worst_rel_err = worst_rel_err.max(rel);
        println!(
            "  month {:>2}: exact {:>5.1} days, estimate {:>5.1} days ({:>5.2}% err, |q∩X|={})",
            month + 1,
            exact / DAY as f64,
            est / DAY as f64,
            rel * 100.0,
            ids.len()
        );
    }
    assert!(
        worst_rel_err < 0.25,
        "sample estimates should track the exact statistic"
    );

    // The library keeps lending. The facade's snapshot is static —
    // queryable metadata, not a surprise panic — so ingestion drives
    // the index structure directly via the batched insertion pool
    // (§III-D) and queries mid-stream.
    assert!(!client.capabilities().update);
    let mut ait = Ait::new(&data);
    let new_borrows = irs::datagen::uniform(5_000, 10 * DAY, 45 * DAY, 77);
    let t = Instant::now();
    for iv in &new_borrows {
        // Shift the new borrows to "today" at the end of the timeline.
        let shifted = Interval::new(iv.lo + domain - 10 * DAY, iv.hi + domain - 10 * DAY);
        ait.insert_buffered(shifted);
    }
    ait.flush_pool();
    println!(
        "\ningested {} new borrows via batch insertion in {:?} ({:.1}µs amortized)",
        new_borrows.len(),
        t.elapsed(),
        t.elapsed().as_micros() as f64 / new_borrows.len() as f64
    );
    let today = Interval::new(domain - DAY, domain);
    println!(
        "records overlapping the last day: {}",
        ait.range_count(today)
    );
    ait.validate()
        .expect("index invariants hold after ingestion");
    Ok(())
}
