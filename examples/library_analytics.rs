//! Ex. 2 of the paper: an online bookstore / library analytics job.
//! "Estimate shopping statistics per month from 2018 to 2023" — per-month
//! result sets are huge, but a fixed-size independent sample per month
//! estimates the statistic at a fraction of the cost, and the index keeps
//! absorbing new transactions through batched insertions.
//!
//! ```sh
//! cargo run --release --example library_analytics
//! ```

use irs::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::time::Instant;

const DAY: i64 = 24 * 3600;
const MONTH: i64 = 30 * DAY;

fn main() {
    // Six years of borrow transactions: borrow date → return date
    // (1-60 days, Book-profile-like long tail).
    let years = 6;
    let domain = years * 12 * MONTH;
    let n = 800_000;
    let data = irs::datagen::uniform(n, domain, 60 * DAY, 31);
    println!("{n} borrow records over {years} years");

    let t = Instant::now();
    let mut ait = Ait::new(&data);
    println!("AIT built in {:?}", t.elapsed());

    // Ground truth statistic: average borrow duration per month, estimated
    // from s = 500 samples instead of the full month's result set.
    let s = 500;
    let mut rng = StdRng::seed_from_u64(3);
    println!("\nper-month average borrow duration (exact vs {s}-sample estimate):");
    let mut worst_rel_err: f64 = 0.0;
    for month in 0..6 {
        let q = Interval::new(month * MONTH, (month + 1) * MONTH);
        let ids = ait.range_search(q);
        let exact: f64 = ids
            .iter()
            .map(|&id| (data[id as usize].hi - data[id as usize].lo) as f64)
            .sum::<f64>()
            / ids.len().max(1) as f64;
        let sample = ait.sample(q, s, &mut rng);
        let est: f64 = sample
            .iter()
            .map(|&id| (data[id as usize].hi - data[id as usize].lo) as f64)
            .sum::<f64>()
            / sample.len().max(1) as f64;
        let rel = (est - exact).abs() / exact;
        worst_rel_err = worst_rel_err.max(rel);
        println!(
            "  month {:>2}: exact {:>5.1} days, estimate {:>5.1} days ({:>5.2}% err, |q∩X|={})",
            month + 1,
            exact / DAY as f64,
            est / DAY as f64,
            rel * 100.0,
            ids.len()
        );
    }
    assert!(
        worst_rel_err < 0.25,
        "sample estimates should track the exact statistic"
    );

    // The library keeps lending: stream one day of new borrows through the
    // batched insertion pool (§III-D) and query mid-stream.
    let new_borrows = irs::datagen::uniform(5_000, 10 * DAY, 45 * DAY, 77);
    let t = Instant::now();
    for iv in &new_borrows {
        // Shift the new borrows to "today" at the end of the timeline.
        let shifted = Interval::new(iv.lo + domain - 10 * DAY, iv.hi + domain - 10 * DAY);
        ait.insert_buffered(shifted);
    }
    ait.flush_pool();
    println!(
        "\ningested {} new borrows via batch insertion in {:?} ({:.1}µs amortized)",
        new_borrows.len(),
        t.elapsed(),
        t.elapsed().as_micros() as f64 / new_borrows.len() as f64
    );
    let today = Interval::new(domain - DAY, domain);
    println!(
        "records overlapping the last day: {}",
        ait.range_count(today)
    );
    ait.validate()
        .expect("index invariants hold after ingestion");
}
