//! Client/server in one process: spin up `irs-server` on an ephemeral
//! port, then drive it from several [`RemoteClient`] threads exactly as
//! separate processes on separate machines would.
//!
//! The demo walks the whole wire surface: health and stats, concurrent
//! batch queries (with a seeded batch proving wire answers are
//! byte-identical to in-process ones), remote mutations honoring the
//! global-id contract, a snapshot saved and inspected over the wire,
//! and a graceful shutdown that drains every connection.
//!
//! ```sh
//! cargo run --release --example remote_client
//! ```

use irs::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200_000;
    println!("building a 4-shard AIT backend over {n} taxi-like intervals...");
    let data = irs::datagen::TAXI.generate(n, 42);
    let client = Irs::builder()
        .kind(IndexKind::Ait)
        .shards(4)
        .seed(7)
        .build(&data)?;

    // ---- serve ------------------------------------------------------
    // Port 0: the OS picks a free port; real deployments pass a fixed
    // address and run `irs-server` as its own process.
    let handle = irs::serve(client.clone(), ("127.0.0.1", 0))?;
    let addr = handle.local_addr();
    println!("irs-server listening on {addr}\n");

    // ---- health, stats ----------------------------------------------
    let mut remote = RemoteClient::<i64>::connect(addr)?;
    remote.health()?;
    let stats = remote.stats()?;
    println!(
        "serving {} × {} shard(s), {} intervals, endpoint {}",
        stats.kind, stats.shards, stats.len, stats.endpoint
    );

    // ---- queries over the wire --------------------------------------
    let q = Interval::new(10_000_000, 90_000_000);
    println!("\ncount({q:?}) = {}", remote.count(q)?);
    let ids = remote.sample(q, 5)?;
    println!("sample({q:?}, 5) -> {ids:?}");
    for id in &ids {
        assert!(data[*id as usize].overlaps(&q));
    }

    // Seeded batches are byte-identical over the wire and in-process.
    let batch: Vec<Query<i64>> = (0..8)
        .map(|i| Query::Sample {
            q: Interval::new(i * 5_000_000, i * 5_000_000 + 20_000_000),
            s: 10,
        })
        .collect();
    let over_wire = remote.run_seeded(&batch, 99)?;
    let in_process = client.run_seeded(&batch, 99);
    for (w, l) in over_wire.iter().zip(&in_process) {
        assert_eq!(w.as_ref().unwrap(), l.as_ref().unwrap());
    }
    println!("seeded replay: wire answers byte-identical to in-process ✓");

    // ---- concurrent clients -----------------------------------------
    let t = Instant::now();
    let per_thread = 200usize;
    std::thread::scope(|scope| {
        for i in 0..4i64 {
            scope.spawn(move || {
                let mut conn = RemoteClient::<i64>::connect(addr).expect("connect");
                for j in 0..per_thread as i64 {
                    let lo = (i * 1_000 + j) * 10_000;
                    conn.count(Interval::new(lo, lo + 30_000_000))
                        .expect("count");
                }
            });
        }
    });
    println!(
        "4 threads × {per_thread} remote counts in {:?}",
        t.elapsed()
    );

    // ---- remote mutations -------------------------------------------
    let id = remote.insert(Interval::new(-500, -400))?;
    println!("\nremote insert -> id {id}");
    assert_eq!(remote.count(Interval::new(-500, -400))?, 1);
    remote.remove(id)?;
    match remote.remove(id) {
        Err(e) => println!("double delete refused: {e}"),
        Ok(()) => unreachable!("retired ids stay retired"),
    }

    // ---- snapshot admin over the wire -------------------------------
    let dir = std::env::temp_dir().join(format!("irs-remote-demo-{}", std::process::id()));
    let dir_s = dir.to_str().expect("utf8 temp path");
    remote.save(dir_s)?;
    let info = remote.inspect_snapshot(dir_s)?;
    println!(
        "\nsnapshot saved server-side: format v{}, {} × {} shard(s), {} intervals",
        info.format_version, info.kind, info.shards, info.len
    );

    // ---- graceful shutdown ------------------------------------------
    let stats = remote.stats()?;
    println!(
        "\nserver counters: {} requests, {} queries, {} mutations, {} protocol errors",
        stats.requests, stats.queries, stats.mutations, stats.protocol_errors
    );
    remote.shutdown()?;
    handle.join();
    println!("server drained and exited ✓");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
