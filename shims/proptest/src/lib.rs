//! Workspace-local stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment has no crate-registry access, so this shim
//! implements the subset of the proptest API the workspace's test suites
//! use:
//!
//! - [`proptest!`] — the test-defining macro, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header and
//!   `arg in strategy` bindings.
//! - Strategies: integer ranges (`0i64..100`), tuples of strategies
//!   (up to arity 6), and [`collection::vec`] with an exact length or a
//!   `usize` range.
//! - [`prop_assert!`] / [`prop_assert_eq!`] — assertion forms.
//!
//! Differences from upstream, deliberately accepted for a test-only shim:
//! no shrinking (a failing case reports its deterministic per-case seed so
//! it can be replayed), and input generation is seeded from the test
//! function's name, so each test is reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run-count configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the workspace's heavier suites all set
        // an explicit count, so a smaller default keeps unconfigured tests
        // fast without weakening the configured ones.
        Self { cases: 64 }
    }
}

/// Value generator: the shim's version of `proptest::strategy::Strategy`.
///
/// Only generation is supported (no shrink trees).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies (`prop::collection` in upstream paths).
pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `elem`-generated values with a
    /// length drawn from `size` (an exact `usize` or a `usize` range).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Length bounds for [`collection::vec`]: `lo..hi` (half-open, as in
/// upstream `proptest`) or an exact length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi_exclusive: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-length range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec-length range");
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// FNV-1a over the test name: gives every property test its own stable
/// seed stream without any global state.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the per-case RNG. Public because the [`proptest!`] expansion
/// calls it; not part of the compatibility surface.
pub fn case_rng(test_seed: u64, case: u32) -> SmallRng {
    SmallRng::seed_from_u64(test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Shim of upstream's macro: each `#[test] fn name(arg in strategy, ...)`
/// becomes a plain `#[test]` that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let test_seed = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut __proptest_rng = $crate::case_rng(test_seed, case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed (case seed {test_seed:#x}^{case})",
                            cfg.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assertion macro: in this shim simply panics (no shrinking to abort).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro: panics on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro: panics on match.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `prop::` paths tests reach through the prelude glob.
pub mod prop {
    pub use crate::collection;
}

/// Mirror of `proptest::prelude::*` for the names this workspace uses.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::case_rng(1, 0);
        for _ in 0..100 {
            let v = Strategy::generate(&(0i64..10, 5u32..=6), &mut rng);
            assert!((0..10).contains(&v.0) && (5..=6).contains(&v.1));
            let xs = Strategy::generate(&prop::collection::vec(0i64..5, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|x| (0..5).contains(x)));
            let exact = Strategy::generate(&prop::collection::vec(0u8..2, 7usize), &mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_form_runs(
            xs in prop::collection::vec((0i64..100, 0i64..10), 1..20),
            k in 1usize..5,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..5).contains(&k));
            for &(a, b) in &xs {
                prop_assert!((0..100).contains(&a));
                prop_assert_eq!(b.clamp(0, 9), b);
            }
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_runs(x in 0i64..5) {
            prop_assert!((0..5).contains(&x));
        }
    }
}
