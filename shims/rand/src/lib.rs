//! Workspace-local stand-in for the [`rand`](https://docs.rs/rand/0.9) crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! reimplements the (small) subset of the rand 0.9 API the workspace
//! actually uses:
//!
//! - [`RngCore`] — the object-safe raw-randomness trait, implemented for
//!   `&mut R` so `&mut dyn RngCore` works as a generic argument.
//! - [`Rng`] — the extension trait with [`Rng::random_range`], blanket
//!   implemented for every `RngCore + ?Sized` exactly like upstream.
//! - [`SeedableRng::seed_from_u64`] plus [`rngs::StdRng`] and
//!   [`rngs::SmallRng`], both backed by xoshiro256++ seeded via SplitMix64
//!   (upstream uses ChaCha12 / xoshiro256++; the statistical quality of
//!   xoshiro256++ passes the workspace's chi-square suites with margin).
//! - Integer ranges use Lemire's widening-multiply rejection method, so
//!   draws are exactly uniform (no modulo bias) — the IRS distribution
//!   tests depend on this.
//!
//! Determinism contract: for a fixed seed the draw sequence is stable
//! across platforms (no `usize`-width dependence on 64-bit targets; the
//! workspace only targets 64-bit).

/// Raw source of randomness (object-safe subset of rand 0.9's `RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (sized or not), mirroring rand 0.9.
pub trait Rng: RngCore {
    /// A uniformly random value from `range` (exactly uniform for integer
    /// ranges; standard 53-bit-mantissa uniform for float ranges).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} out of [0, 1]"
        );
        distr::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset: the workspace only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derives a full-period generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range-sampling plumbing behind [`Rng::random_range`].
pub mod distr {
    use super::RngCore;

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(bits: u64) -> f64 {
        // 53 mantissa bits: uniform over the 2^53 grid, always < 1.0.
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)` by Lemire's widening-multiply
    /// rejection — exactly uniform, no modulo bias.
    #[inline]
    pub fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection zone: the low `(2^64) mod bound` multiples are
        // over-represented; reject them.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(rng.next_u64()) * u128::from(bound);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Types [`super::Rng::random_range`] can draw uniformly.
    ///
    /// The single blanket [`SampleRange`] impl below dispatches through
    /// this trait; keeping one blanket impl (as upstream does) is what
    /// lets integer-literal ranges infer their type from the use site.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Uniform draw from `[lo, hi)`.
        fn sample_exclusive(rng: &mut (impl RngCore + ?Sized), lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive(rng: &mut (impl RngCore + ?Sized), lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_exclusive(rng: &mut (impl RngCore + ?Sized), lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "random_range: empty range");
                    // Two's-complement offset trick maps signed spans onto u64.
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    lo.wrapping_add(uniform_below(rng, span) as $t)
                }
                #[inline]
                fn sample_inclusive(rng: &mut (impl RngCore + ?Sized), lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "random_range: empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(uniform_below(rng, span + 1) as $t)
                }
            }
        )*};
    }
    impl_sample_uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    );

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_exclusive(rng: &mut (impl RngCore + ?Sized), lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "random_range: empty range");
                    loop {
                        let v = lo + (hi - lo) * unit_f64(rng.next_u64()) as $t;
                        // Rounding of lo + span*u can land exactly on `hi`
                        // for large spans; redraw (probability ~2^-53).
                        if v < hi {
                            return v;
                        }
                    }
                }
                #[inline]
                fn sample_inclusive(rng: &mut (impl RngCore + ?Sized), lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "random_range: empty range");
                    lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
                }
            }
        )*};
    }
    impl_sample_uniform_float!(f32, f64);

    /// A range that [`super::Rng::random_range`] can sample from.
    pub trait SampleRange<T> {
        /// Draws one uniform value; panics on an empty range.
        fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        #[inline]
        fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> T {
            T::sample_exclusive(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
        #[inline]
        fn sample_single(self, rng: &mut (impl RngCore + ?Sized)) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }
}

/// The concrete generators.
pub mod rngs {
    use super::SeedableRng;

    /// SplitMix64 stream, used to expand a `u64` seed into generator state
    /// (the standard xoshiro seeding procedure).
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ core: 256-bit state, full 2^256-1 period, passes
    /// BigCrush. Shared by [`StdRng`] and [`SmallRng`].
    #[derive(Clone, Debug)]
    struct Xoshiro256PlusPlus {
        s: [u64; 4],
    }

    impl Xoshiro256PlusPlus {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state (possible only for adversarial seeds) would be
            // a fixed point; SplitMix64 never produces it from any seed,
            // but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    macro_rules! rng_newtype {
        ($(#[$doc:meta])* $name:ident, $salt:expr) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256PlusPlus);

            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> Self {
                    // Distinct salt per generator type so StdRng and
                    // SmallRng streams differ for equal seeds, as upstream.
                    Self(Xoshiro256PlusPlus::seed_from_u64(state ^ $salt))
                }
            }

            impl super::RngCore for $name {
                #[inline]
                fn next_u32(&mut self) -> u32 {
                    (self.0.next_u64() >> 32) as u32
                }
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }
        };
    }

    rng_newtype!(
        /// Stand-in for rand's `StdRng` (upstream: ChaCha12; here
        /// xoshiro256++ — not cryptographically secure, which no caller in
        /// this workspace requires).
        StdRng,
        0
    );
    rng_newtype!(
        /// Stand-in for rand's `SmallRng` (upstream is also xoshiro256++
        /// on 64-bit targets).
        SmallRng,
        0xA5A5_5A5A_0F0F_F0F0
    );
}

// Re-export matching `use rand::...` paths used in the workspace.
pub use distr::SampleRange;

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::{SmallRng, StdRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut s = StdRng::seed_from_u64(1);
        let mut m = SmallRng::seed_from_u64(1);
        assert_ne!(s.next_u64(), m.next_u64());
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(rng.random_range(4u32..5), 4);
        assert_eq!(rng.random_range(9i16..=9), 9);
    }

    #[test]
    fn uniform_below_is_unbiased_mod_small() {
        // 3 buckets over 90k draws: counts within 2% of 30k each.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u64; 3];
        for _ in 0..90_000 {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for c in counts {
            assert!((29_000..=31_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn works_through_dyn_and_unsized() {
        fn draw(rng: &mut (impl RngCore + ?Sized)) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynref: &mut dyn RngCore = &mut rng;
        assert!(draw(dynref) < 100);
        let mut boxed: Box<dyn RngCore> = Box::new(StdRng::seed_from_u64(6));
        assert!(draw(&mut boxed) < 100);
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
