//! AIT updates (§III-D): one-by-one insertion, pooled batch insertion, and
//! deletion, with a height-triggered rebuild that preserves the `O(log n)`
//! height bound Algorithm 1's analysis depends on.

use crate::ait::{Ait, AitHot, AitNode};
use crate::build::{BuildEntry, Key, NIL};
use irs_core::{Endpoint, Interval, ItemId};

impl<E: Endpoint> Ait<E> {
    /// Height above which an insertion triggers a full rebuild
    /// (`2⌈log₂ n⌉ + 2`, a constant factor over the balanced height so
    /// rebuilds stay rare).
    fn height_limit(&self) -> usize {
        2 * (self.len.max(2) as f64).log2().ceil() as usize + 2
    }

    /// Inserts `iv` immediately (one-by-one insertion), returning its new
    /// id. Walks the same cases as Algorithm 1: cases 1/2 update the
    /// visited node's `AL` lists and descend; case 3 additionally updates
    /// the node's own `L` lists and stops. Cost is dominated by the sorted
    /// `Vec::insert`s — this is exactly the expensive path Table VII
    /// measures against batch insertion.
    pub fn insert(&mut self, iv: Interval<E>) -> ItemId {
        let id = self.alloc_id();
        self.insert_with_id(iv, id);
        if self.height > self.height_limit() {
            self.rebuild();
        }
        id
    }

    /// Buffers `iv` in the insertion pool (batch insertion). The pool is
    /// scanned linearly by queries; once it reaches `⌈log₂ n⌉²` entries it
    /// is flushed into the tree in one pass, sorting each touched list
    /// once instead of shifting it per insertion.
    pub fn insert_buffered(&mut self, iv: Interval<E>) -> ItemId {
        let id = self.alloc_id();
        self.pool.push((iv, id));
        self.len += 1;
        if self.pool.len() >= self.pool_capacity {
            self.flush_pool();
        }
        id
    }

    /// Number of intervals currently waiting in the insertion pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Merges every pooled interval into the tree, then re-sorts only the
    /// lists that were touched.
    pub fn flush_pool(&mut self) {
        if self.pool.is_empty() {
            return;
        }
        let pool = std::mem::take(&mut self.pool);
        let mut dirty: Vec<u32> = Vec::new();
        for (iv, id) in pool {
            // `len` was already bumped when the entry joined the pool.
            self.len -= 1;
            self.place(iv, id, true, &mut dirty);
        }
        dirty.sort_unstable();
        dirty.dedup();
        for &at in &dirty {
            let node = &mut self.nodes[at as usize];
            node.l_lo.sort_unstable_by_key(|a| (a.key, a.id));
            node.l_hi.sort_unstable_by_key(|a| (a.key, a.id));
            node.al_lo.sort_unstable_by_key(|a| (a.key, a.id));
            node.al_hi.sort_unstable_by_key(|a| (a.key, a.id));
        }
        for &at in &dirty {
            self.refresh_hot(at);
        }
        if self.height > self.height_limit() {
            self.rebuild();
        }
    }

    fn alloc_id(&mut self) -> ItemId {
        let id = self.next_id;
        self.next_id = self.next_id.checked_add(1).expect("id space exhausted");
        id
    }

    fn insert_with_id(&mut self, iv: Interval<E>, id: ItemId) {
        let mut touched = Vec::new();
        self.place(iv, id, false, &mut touched);
        for &at in &touched {
            self.refresh_hot(at);
        }
    }

    /// Routes `(iv, id)` to its node, recording every touched node in
    /// `dirty` so the caller can re-derive its hot entry. With
    /// `defer_sort` the keys are appended (the caller re-sorts);
    /// otherwise keys are inserted at their sorted position.
    fn place(&mut self, iv: Interval<E>, id: ItemId, defer_sort: bool, dirty: &mut Vec<u32>) {
        self.len += 1;
        if self.root == NIL {
            self.root = self.new_leaf(iv, id);
            self.height = 1;
            return;
        }
        let mut at = self.root;
        let mut depth = 1usize;
        loop {
            // Every node on the path gains the interval in its subtree
            // lists — including the case-3 stop node, whose AL lists must
            // keep covering its own L lists for parent-fork queries.
            Self::add_key(&mut self.nodes[at as usize].al_lo, iv.lo, id, defer_sort);
            Self::add_key(&mut self.nodes[at as usize].al_hi, iv.hi, id, defer_sort);
            dirty.push(at);
            let node = &self.nodes[at as usize];
            if iv.hi < node.center {
                if node.left == NIL {
                    let leaf = self.new_leaf(iv, id);
                    self.nodes[at as usize].left = leaf;
                    self.height = self.height.max(depth + 1);
                    return;
                }
                at = node.left;
            } else if iv.lo > node.center {
                if node.right == NIL {
                    let leaf = self.new_leaf(iv, id);
                    self.nodes[at as usize].right = leaf;
                    self.height = self.height.max(depth + 1);
                    return;
                }
                at = node.right;
            } else {
                let node = &mut self.nodes[at as usize];
                Self::add_key(&mut node.l_lo, iv.lo, id, defer_sort);
                Self::add_key(&mut node.l_hi, iv.hi, id, defer_sort);
                return;
            }
            depth += 1;
        }
    }

    fn add_key(list: &mut Vec<Key<E>>, key: E, id: ItemId, defer_sort: bool) {
        if defer_sort {
            list.push(Key { key, id });
        } else {
            let pos = list.partition_point(|k| (k.key, k.id) < (key, id));
            list.insert(pos, Key { key, id });
        }
    }

    fn new_leaf(&mut self, iv: Interval<E>, id: ItemId) -> u32 {
        // A leaf's center must stab its single interval; with an
        // order-only endpoint type the left endpoint is the natural pick.
        let node = AitNode {
            center: iv.lo,
            l_lo: vec![Key { key: iv.lo, id }],
            l_hi: vec![Key { key: iv.hi, id }],
            al_lo: vec![Key { key: iv.lo, id }],
            al_hi: vec![Key { key: iv.hi, id }],
            left: NIL,
            right: NIL,
        };
        let idx = self.nodes.len() as u32;
        // The hot arena stays index-aligned: derive the leaf's entry
        // now; the parent link change is refreshed by the caller.
        self.hot.push(AitHot::of(&node));
        self.nodes.push(node);
        idx
    }

    /// Deletes the interval `(iv, id)` if present (in the tree or the
    /// pool), returning whether it was found. Removes the interval from
    /// the `AL` lists of every node on its path and from the `L` lists of
    /// its home node, then prunes emptied leaves.
    pub fn delete(&mut self, iv: Interval<E>, id: ItemId) -> bool {
        if let Some(pos) = self
            .pool
            .iter()
            .position(|&(piv, pid)| pid == id && piv == iv)
        {
            self.pool.swap_remove(pos);
            self.len -= 1;
            return true;
        }
        // First pass: locate the home node without mutating, so a missing
        // id cannot corrupt the AL lists.
        let mut path: Vec<u32> = Vec::new();
        let mut at = self.root;
        let home = loop {
            if at == NIL {
                return false;
            }
            let node = &self.nodes[at as usize];
            path.push(at);
            if iv.hi < node.center {
                at = node.left;
            } else if iv.lo > node.center {
                at = node.right;
            } else {
                break at;
            }
        };
        if !Self::contains_key(&self.nodes[home as usize].l_lo, iv.lo, id) {
            return false;
        }

        for &n in &path {
            let node = &mut self.nodes[n as usize];
            Self::remove_key(&mut node.al_lo, iv.lo, id);
            Self::remove_key(&mut node.al_hi, iv.hi, id);
        }
        let node = &mut self.nodes[home as usize];
        Self::remove_key(&mut node.l_lo, iv.lo, id);
        Self::remove_key(&mut node.l_hi, iv.hi, id);
        self.len -= 1;

        self.prune_path(&path);
        if !self.nodes.is_empty() {
            for &n in &path {
                self.refresh_hot(n);
            }
        }
        true
    }

    fn contains_key(list: &[Key<E>], key: E, id: ItemId) -> bool {
        let mut pos = list.partition_point(|k| k.key < key);
        while pos < list.len() && list[pos].key == key {
            if list[pos].id == id {
                return true;
            }
            pos += 1;
        }
        false
    }

    fn remove_key(list: &mut Vec<Key<E>>, key: E, id: ItemId) {
        let mut pos = list.partition_point(|k| k.key < key);
        while pos < list.len() && list[pos].key == key {
            if list[pos].id == id {
                list.remove(pos);
                return;
            }
            pos += 1;
        }
        debug_assert!(false, "remove_key: ({key:?}, {id}) not found");
    }

    /// Unlinks nodes along `path` (bottom-up) that hold no intervals at all
    /// — empty `AL` means the whole subtree is empty, so the arena slot is
    /// abandoned until the next rebuild reclaims it.
    fn prune_path(&mut self, path: &[u32]) {
        for w in (1..path.len()).rev() {
            let child = path[w];
            if !self.nodes[child as usize].al_lo.is_empty() {
                break;
            }
            let parent = &mut self.nodes[path[w - 1] as usize];
            if parent.left == child {
                parent.left = NIL;
            } else if parent.right == child {
                parent.right = NIL;
            }
        }
        if let Some(&root) = path.first() {
            if self.nodes[root as usize].al_lo.is_empty() {
                self.root = NIL;
                self.nodes.clear();
                self.hot.clear();
                self.height = 0;
            }
        }
    }

    /// All live `(interval, id)` pairs — tree and insertion pool alike —
    /// in no particular order, reconstructed in `O(n log n)` by joining
    /// each node's two `L` lists on id (both hold exactly the node's
    /// interval set). This is how [`Ait::rebuild`] recovers its input,
    /// and how callers that track intervals by id alone (the engine's
    /// delete-by-id table) can seed their lookup lazily instead of
    /// mirroring every build.
    pub fn entries(&self) -> Vec<(Interval<E>, ItemId)> {
        let mut out = Vec::with_capacity(self.len);
        for node in &self.nodes {
            if node.l_lo.is_empty() {
                continue;
            }
            let mut by_id_lo: Vec<&Key<E>> = node.l_lo.iter().collect();
            let mut by_id_hi: Vec<&Key<E>> = node.l_hi.iter().collect();
            by_id_lo.sort_unstable_by_key(|k| k.id);
            by_id_hi.sort_unstable_by_key(|k| k.id);
            for (klo, khi) in by_id_lo.iter().zip(&by_id_hi) {
                debug_assert_eq!(klo.id, khi.id);
                out.push((Interval::new(klo.key, khi.key), klo.id));
            }
        }
        out.extend(self.pool.iter().copied());
        out
    }

    /// Rebuilds the tree from scratch, preserving ids and folding in any
    /// pooled insertions. Invoked automatically when the height bound is
    /// violated; also useful after heavy deletion to reclaim arena slots.
    pub fn rebuild(&mut self) {
        let entries: Vec<BuildEntry<E>> = self
            .entries()
            .into_iter()
            .map(|(iv, id)| BuildEntry { iv, id, w: 1.0 })
            .collect();
        let next_id = self.next_id;
        *self = Ait::from_entries(entries, next_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::{BruteForce, RangeCount, RangeSampler, RangeSearch};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_into_empty() {
        let mut ait = Ait::<i64>::new(&[]);
        let id = ait.insert(iv(5, 9));
        assert_eq!(id, 0);
        assert_eq!(ait.len(), 1);
        assert_eq!(ait.range_search(iv(7, 7)), vec![0]);
        ait.validate().unwrap();
    }

    #[test]
    fn inserted_intervals_are_queryable() {
        let base: Vec<_> = (0..100).map(|i| iv(i * 10, i * 10 + 8)).collect();
        let mut ait = Ait::new(&base);
        let mut data = base.clone();
        for i in 0..50 {
            let x = iv(i * 7 + 3, i * 7 + 40);
            ait.insert(x);
            data.push(x);
        }
        ait.validate().unwrap();
        let bf = BruteForce::new(&data);
        for q in [iv(0, 1000), iv(35, 60), iv(995, 1200), iv(-10, -1)] {
            assert_eq!(
                sorted(ait.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn buffered_inserts_visible_before_flush() {
        let base: Vec<_> = (0..2000).map(|i| iv(i, i + 5)).collect();
        let mut ait = Ait::new(&base);
        let cap = ait.pool_capacity;
        // Stay below the flush threshold.
        for i in 0..cap - 1 {
            ait.insert_buffered(iv(10_000 + i as i64, 10_000 + i as i64 + 2));
        }
        assert_eq!(ait.pool_len(), cap - 1);
        // Pool entries must appear in queries and counts.
        assert_eq!(ait.range_count(iv(10_000, 20_000)), cap - 1);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = ait.sample(iv(10_000, 20_000), 64, &mut rng);
        assert_eq!(samples.len(), 64);
        // Flush and re-check.
        ait.flush_pool();
        assert_eq!(ait.pool_len(), 0);
        ait.validate().unwrap();
        assert_eq!(ait.range_count(iv(10_000, 20_000)), cap - 1);
    }

    #[test]
    fn pool_flushes_automatically_at_capacity() {
        let base: Vec<_> = (0..500).map(|i| iv(i, i + 1)).collect();
        let mut ait = Ait::new(&base);
        let cap = ait.pool_capacity;
        for i in 0..cap {
            ait.insert_buffered(iv(i as i64, i as i64 + 3));
        }
        assert_eq!(ait.pool_len(), 0, "pool should have flushed");
        ait.validate().unwrap();
        assert_eq!(ait.len(), 500 + cap);
    }

    #[test]
    fn delete_roundtrip() {
        let data: Vec<_> = (0..200).map(|i| iv(i, i + 20)).collect();
        let mut ait = Ait::new(&data);
        for id in (0..200u32).step_by(2) {
            assert!(ait.delete(data[id as usize], id), "delete {id}");
        }
        ait.validate().unwrap();
        assert_eq!(ait.len(), 100);
        let remaining: Vec<_> = (0..200u32).filter(|id| id % 2 == 1).collect();
        assert_eq!(sorted(ait.range_search(iv(-100, 1000))), remaining);
        // Deleting again fails cleanly.
        assert!(!ait.delete(data[0], 0));
    }

    #[test]
    fn delete_everything_empties_tree() {
        let data: Vec<_> = (0..50).map(|i| iv(i * 3, i * 3 + 10)).collect();
        let mut ait = Ait::new(&data);
        for (id, &x) in data.iter().enumerate() {
            assert!(ait.delete(x, id as ItemId));
        }
        assert!(ait.is_empty());
        assert_eq!(ait.range_count(iv(-100, 1000)), 0);
        // Tree is usable again afterwards.
        ait.insert(iv(1, 2));
        assert_eq!(ait.range_count(iv(0, 5)), 1);
        ait.validate().unwrap();
    }

    #[test]
    fn delete_from_pool() {
        let mut ait = Ait::new(&(0..1000).map(|i| iv(i, i + 1)).collect::<Vec<_>>());
        let id = ait.insert_buffered(iv(5000, 5001));
        assert!(ait.pool_len() > 0);
        assert!(ait.delete(iv(5000, 5001), id));
        assert_eq!(ait.range_count(iv(5000, 5002)), 0);
        ait.validate().unwrap();
    }

    #[test]
    fn skewed_insertions_trigger_rebuild_and_keep_height_bounded() {
        let mut ait = Ait::<i64>::new(&[iv(1_000_000, 1_000_001)]);
        // Strictly nested-to-the-left chain: each interval goes left of
        // every existing center, forcing worst-case growth without rebuild.
        for i in 0..2000 {
            ait.insert(iv(i, i + 1));
        }
        let n = ait.len();
        let bound = 2 * (n as f64).log2().ceil() as usize + 2;
        assert!(
            ait.height() <= bound,
            "height {} exceeds bound {bound}",
            ait.height()
        );
        ait.validate().unwrap();
        let bf = BruteForce::new(
            &std::iter::once(iv(1_000_000, 1_000_001))
                .chain((0..2000).map(|i| iv(i, i + 1)))
                .collect::<Vec<_>>(),
        );
        assert_eq!(ait.range_count(iv(0, 2001)), bf.range_count(iv(0, 2001)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_update_stream_matches_oracle(
            base in prop::collection::vec((0i64..500, 0i64..80), 1..80),
            ops in prop::collection::vec((0i64..600, 0i64..100, 0u8..4), 1..120),
        ) {
            let data: Vec<_> = base.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let mut ait = Ait::new(&data);
            let mut shadow: Vec<(Interval<i64>, ItemId)> =
                data.iter().enumerate().map(|(i, &x)| (x, i as ItemId)).collect();
            let mut rng = StdRng::seed_from_u64(1234);
            for &(lo, len, op) in &ops {
                match op {
                    0 => {
                        let x = iv(lo, lo + len);
                        let id = ait.insert(x);
                        shadow.push((x, id));
                    }
                    1 => {
                        let x = iv(lo, lo + len);
                        let id = ait.insert_buffered(x);
                        shadow.push((x, id));
                    }
                    2 if !shadow.is_empty() => {
                        let k = rng.random_range(0..shadow.len());
                        let (x, id) = shadow.swap_remove(k);
                        prop_assert!(ait.delete(x, id));
                    }
                    _ => {
                        // Query step: compare against the shadow set.
                        let q = iv(lo, lo + len);
                        let expect: Vec<ItemId> = {
                            let mut v: Vec<_> = shadow
                                .iter()
                                .filter(|(x, _)| x.overlaps(&q))
                                .map(|&(_, id)| id)
                                .collect();
                            v.sort_unstable();
                            v
                        };
                        prop_assert_eq!(sorted(ait.range_search(q)), expect.clone());
                        prop_assert_eq!(ait.range_count(q), expect.len());
                    }
                }
            }
            ait.validate().unwrap();
            prop_assert_eq!(ait.len(), shadow.len());
        }
    }
}
