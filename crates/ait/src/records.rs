//! Node records: the compact representation of `q ∩ X` that Algorithm 1
//! computes.
//!
//! A [`NodeRecord`] points at a contiguous run of one of a node's four
//! sorted lists; the set `R` of records produced for a query partitions
//! `q ∩ X` exactly (Theorem 3: records from distinct nodes are disjoint,
//! and the `AL` records of the case-3 children are disjoint from the `L`
//! records of their ancestors). `|R| = O(log n)`, so the alias table over
//! record sizes is built in `O(log n)` per query.

/// Which of the node's four sorted lists a record indexes into.
///
/// The integer tags match the paper's encoding in Algorithm 1
/// (0: `Ll`, 1: `Lr`, 2: `ALr`, 3: `ALl` — cases 1, 2, and the two
/// case-3 children respectively).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ListKind {
    /// `Ll`: node's own intervals sorted by left endpoint (cases 1 and 3).
    Lo = 0,
    /// `Lr`: node's own intervals sorted by right endpoint (case 2).
    Hi = 1,
    /// `ALr`: subtree intervals sorted by right endpoint (case-3 left
    /// child).
    AllHi = 2,
    /// `ALl`: subtree intervals sorted by left endpoint (case-3 right
    /// child).
    AllLo = 3,
}

/// A contiguous run `[start, end]` (inclusive, 0-based) of one sorted list
/// of one node; every element of the run overlaps the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeRecord {
    /// Arena index of the node.
    pub node: u32,
    /// Which list of that node.
    pub kind: ListKind,
    /// First overlapping position.
    pub start: u32,
    /// Last overlapping position (`end ≥ start`).
    pub end: u32,
}

impl NodeRecord {
    /// Number of intervals the record denotes.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start + 1) as usize
    }

    /// Records are only ever created non-empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_len_is_inclusive() {
        let r = NodeRecord {
            node: 0,
            kind: ListKind::Lo,
            start: 3,
            end: 3,
        };
        assert_eq!(r.len(), 1);
        let r = NodeRecord {
            node: 0,
            kind: ListKind::AllLo,
            start: 0,
            end: 9,
        };
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
    }

    #[test]
    fn kind_tags_match_paper_encoding() {
        assert_eq!(ListKind::Lo as u8, 0);
        assert_eq!(ListKind::Hi as u8, 1);
        assert_eq!(ListKind::AllHi as u8, 2);
        assert_eq!(ListKind::AllLo as u8, 3);
    }
}
