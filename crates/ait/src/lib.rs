//! The paper's contribution: independent range sampling on interval data in
//! `Õ(s)` time via the **Augmented Interval Tree** family.
//!
//! - [`Ait`] (§III) — an interval tree whose every node additionally stores
//!   *all* intervals of its subtree in two sorted lists (`ALl`, `ALr`).
//!   A range query decomposes `q ∩ X` into `O(log n)` *node records*
//!   (contiguous runs of sorted lists) in `O(log² n)` time; sampling then
//!   draws records from a Walker alias table and indexes uniformly inside
//!   them. Exact, `O(n log n)` space, `O(log² n + s)` query. Also supports
//!   `O(log² n)` range counting (Corollary 1) and insertions / batched
//!   insertions / deletions (§III-D).
//! - [`AitV`] (§III-C) — buckets the pair-sorted dataset into groups of
//!   `⌈log₂ n⌉`, indexes one *virtual interval* per bucket with an [`Ait`],
//!   and rejection-samples members: `O(n)` space, `O(log² n + s)`
//!   *expected* query time.
//! - [`Awit`] (§IV) — augments every sorted list with cumulative weight
//!   arrays so node-record weights are `O(1)` and in-record draws are
//!   `O(log n)` via the cumulative-sum method: weighted IRS in
//!   `O(log² n + s log n)` with no per-query structure over `q ∩ X`.
//!
//! All three implement the query traits from [`irs_core`], so they are
//! drop-in peers of the baselines in `irs-interval-tree`, `irs-hint`, and
//! `irs-kds`.

#![deny(missing_docs)]

mod ait;
mod aitv;
mod awit;
mod build;
mod dynamic_awit;
mod persist;
mod records;
mod update;

pub use ait::{Ait, AitPrepared};
pub use aitv::{AitV, AitVPrepared, RejectionStats};
pub use awit::{Awit, AwitPrepared};
pub use dynamic_awit::{DynamicAwit, DynamicAwitPrepared};
pub use records::{ListKind, NodeRecord};
