//! AIT-V (§III-C): the linear-space AIT over *virtual intervals*.
//!
//! The dataset is pair-sorted (left endpoint ascending, ties by right
//! endpoint) and chopped into buckets of `⌈log₂ n⌉` consecutive intervals.
//! Each bucket is summarized by its virtual interval
//! `v = [min lo, max hi]`, and an ordinary [`Ait`] indexes the `Θ(n/log n)`
//! virtual intervals — `O(n)` space total. A sample is drawn by picking a
//! virtual slot uniformly from the record set, picking a bucket member
//! uniformly, and *rejecting* members that miss the query; acceptance is
//! uniform over `q ∩ X`, and pair-sort locality keeps the expected number
//! of rejections constant in practice (the paper's §III-C measurement —
//! ~1.09 attempts per accepted sample — is reproduced by the
//! `aitv_rejections` bench).

use crate::ait::Ait;
use crate::build::Key;
use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeSampler,
};
use irs_sampling::AliasTable;
use std::sync::atomic::{AtomicU64, Ordering};

/// Rejection-sampling telemetry for one `sample_into` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectionStats {
    /// Member draws attempted (accepted + rejected).
    pub attempts: u64,
    /// Samples produced.
    pub accepted: u64,
    /// Times the exact-fallback path was taken (pathological queries
    /// where rejection sampling failed to land for a long stretch).
    pub fallbacks: u64,
}

/// The AIT with virtual intervals: `O(n)` space, `O(log² n + s)` expected
/// query time (Corollaries 2 and 3).
#[derive(Debug)]
pub struct AitV<E> {
    /// AIT over the virtual intervals; item ids are bucket indices.
    pub(crate) virtual_ait: Ait<E>,
    /// Dataset ids in pair-sort order; bucket `b` owns
    /// `members[b·size .. min((b+1)·size, n)]`.
    pub(crate) members: Vec<ItemId>,
    /// Dataset copy in original id order, needed for the `x ∩ q` rejection
    /// test.
    pub(crate) data: Vec<Interval<E>>,
    pub(crate) bucket_size: usize,
}

impl<E: Endpoint> AitV<E> {
    /// Builds with the paper's bucket size `⌈log₂ n⌉`.
    pub fn new(data: &[Interval<E>]) -> Self {
        let b = (data.len().max(2) as f64).log2().ceil() as usize;
        Self::with_bucket_size(data, b.max(1))
    }

    /// Builds with an explicit bucket size (exposed for the ablation
    /// bench; `bucket_size = 1` degenerates to a plain AIT with an extra
    /// indirection).
    pub fn with_bucket_size(data: &[Interval<E>], bucket_size: usize) -> Self {
        assert!(bucket_size >= 1, "bucket size must be at least 1");
        let members = irs_core::pair_sort_indices(data);
        let mut virtuals: Vec<Interval<E>> = Vec::with_capacity(members.len() / bucket_size + 1);
        for chunk in members.chunks(bucket_size) {
            // Pair sort makes the first member's lo the bucket minimum;
            // the max hi must be scanned.
            let lo = data[chunk[0] as usize].lo;
            let mut hi = data[chunk[0] as usize].hi;
            for &id in &chunk[1..] {
                let h = data[id as usize].hi;
                if h > hi {
                    hi = h;
                }
            }
            virtuals.push(Interval::new(lo, hi));
        }
        AitV {
            virtual_ait: Ait::new(&virtuals),
            members,
            data: data.to_vec(),
            bucket_size,
        }
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bucket size in use.
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// Number of virtual intervals (`Θ(n / log n)` with the default
    /// bucket size).
    pub fn virtual_count(&self) -> usize {
        self.members.len().div_ceil(self.bucket_size)
    }

    fn bucket_members(&self, bucket: usize) -> &[ItemId] {
        let start = bucket * self.bucket_size;
        let end = (start + self.bucket_size).min(self.members.len());
        &self.members[start..end]
    }
}

/// Phase-2 handle of AIT-V: records over the virtual AIT plus the state
/// needed for rejection sampling.
///
/// All phase-1 state (the record set and the alias table over it) is
/// immutable after [`AitV::prepare`], so one handle can serve draws
/// from many threads; the telemetry counters are atomics, accumulated
/// once per `sample_into` call from per-call stack scratch.
pub struct AitVPrepared<'a, E> {
    aitv: &'a AitV<E>,
    q: Interval<E>,
    /// Each record resolved to its list slice of the virtual AIT, so a
    /// rejection attempt reads the bucket id straight from the slice
    /// instead of dereferencing the node per draw.
    runs: Vec<&'a [Key<E>]>,
    /// Alias table over the records' lengths, built once in phase 1
    /// (`None` iff `records` is empty).
    alias: Option<AliasTable>,
    attempts: AtomicU64,
    accepted: AtomicU64,
    fallbacks: AtomicU64,
}

impl<'a, E: Endpoint> AitVPrepared<'a, E> {
    /// Telemetry from the draws performed so far on this handle.
    ///
    /// Each counter is exact over completed `sample_into` calls. With
    /// draws *in flight* on other threads the three counters are read
    /// independently (relaxed atomics, no cross-counter ordering), so
    /// the snapshot is approximate — each field is monotone and
    /// correct on its own, but cross-field ratios may be slightly off
    /// until the concurrent calls finish. (Note `accepted > attempts`
    /// is possible even single-threaded: the exact-enumeration
    /// fallback produces samples without per-draw attempts.)
    pub fn stats(&self) -> RejectionStats {
        RejectionStats {
            attempts: self.attempts.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Enumerates the true result set by scanning every candidate bucket —
    /// the `O(candidates)` fallback used when rejection sampling stalls,
    /// and the basis of the (expected-time) range search below.
    fn enumerate_exact(&self) -> Vec<ItemId> {
        let mut out = Vec::new();
        for run in &self.runs {
            for key in *run {
                let bucket = key.id as usize;
                for &id in self.aitv.bucket_members(bucket) {
                    if self.aitv.data[id as usize].overlaps(&self.q) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }
}

impl<E: Endpoint> PreparedSampler for AitVPrepared<'_, E> {
    /// Candidate *slots* (bucket members reachable from the records) — an
    /// upper bound on `|q ∩ X|`, as documented on the trait.
    fn candidate_count(&self) -> usize {
        self.runs
            .iter()
            .map(|run| {
                run.iter()
                    .map(|k| self.aitv.bucket_members(k.id as usize).len())
                    .sum::<usize>()
            })
            .sum()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        let (Some(alias), false) = (&self.alias, s == 0) else {
            return;
        };
        // Per-call scratch: counters accumulate on the stack and are
        // folded into the shared atomics once, at the end — no mutable
        // phase-1 state is touched during the draws.
        let mut stats = RejectionStats::default();

        // Rejection cap per *query* (not per draw): if the acceptance rate
        // is so low that we burn this many attempts, fall back to exact
        // enumeration — still uniform, never diverges (e.g. when every
        // candidate bucket's members all miss q, i.e. q ∩ X = ∅).
        let mut budget: u64 = 256 + 64 * s as u64;
        let mut produced = 0usize;
        while produced < s {
            if budget == 0 {
                stats.fallbacks += 1;
                let exact = self.enumerate_exact();
                if exact.is_empty() {
                    // True result set is empty: nothing can be sampled.
                    self.accumulate(stats);
                    return;
                }
                while produced < s {
                    let k = rand::Rng::random_range(&mut *rng, 0..exact.len());
                    out.push(exact[k]);
                    produced += 1;
                    stats.accepted += 1;
                }
                break;
            }
            budget -= 1;
            stats.attempts += 1;
            let run = self.runs[alias.sample(rng)];
            let offset = rand::Rng::random_range(&mut *rng, 0..run.len());
            let bucket = run[offset].id as usize;
            let members = self.aitv.bucket_members(bucket);
            // Uniformity requires every bucket slot to carry equal mass, so
            // short tail buckets are topped up with "pseudo-intervals"
            // (paper §III-C): a draw landing on a pseudo slot is rejected.
            let slot = rand::Rng::random_range(&mut *rng, 0..self.aitv.bucket_size);
            let Some(&id) = members.get(slot) else {
                continue;
            };
            if self.aitv.data[id as usize].overlaps(&self.q) {
                out.push(id);
                produced += 1;
                stats.accepted += 1;
            }
        }
        self.accumulate(stats);
    }
}

impl<E: Endpoint> AitVPrepared<'_, E> {
    /// Folds one call's stack-local counters into the shared telemetry.
    fn accumulate(&self, stats: RejectionStats) {
        self.attempts.fetch_add(stats.attempts, Ordering::Relaxed);
        self.accepted.fetch_add(stats.accepted, Ordering::Relaxed);
        self.fallbacks.fetch_add(stats.fallbacks, Ordering::Relaxed);
    }
}

impl<E: Endpoint> RangeSampler<E> for AitV<E> {
    type Prepared<'a> = AitVPrepared<'a, E>;

    fn prepare(&self, q: Interval<E>) -> AitVPrepared<'_, E> {
        let mut records = Vec::new();
        let mut pool_matches = Vec::new();
        self.virtual_ait
            .collect_records(q, &mut records, &mut pool_matches);
        debug_assert!(pool_matches.is_empty(), "AIT-V is static; no pool expected");
        // The alias table is phase-1 state: build it here, once, so the
        // draws share it immutably (and repeat draws on one handle stop
        // paying the construction).
        let alias = (!records.is_empty()).then(|| {
            let weights: Vec<f64> = records.iter().map(|r| r.len() as f64).collect();
            AliasTable::new(&weights)
        });
        let runs = records
            .iter()
            .map(|rec| {
                let list = self.virtual_ait.nodes[rec.node as usize].list(rec.kind);
                &list[rec.start as usize..=rec.end as usize]
            })
            .collect();
        AitVPrepared {
            aitv: self,
            q,
            runs,
            alias,
            attempts: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }
}

impl<E: Endpoint> irs_core::RangeSearch<E> for AitV<E> {
    /// Exact range search by scanning candidate buckets — `O(log² n +
    /// |q∩X|)` expected thanks to pair-sort locality. Provided for
    /// completeness and testing; AIT-V's raison d'être is sampling.
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        let prepared = self.prepare(q);
        out.extend(prepared.enumerate_exact());
    }
}

impl<E: Endpoint> MemoryFootprint for AitV<E> {
    fn heap_bytes(&self) -> usize {
        self.virtual_ait.heap_bytes() + vec_bytes(&self.members) + vec_bytes(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::{BruteForce, RangeSearch};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_dataset() {
        let aitv = AitV::<i64>::new(&[]);
        assert!(aitv.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(aitv.sample(iv(0, 10), 5, &mut rng).is_empty());
    }

    #[test]
    fn virtual_count_is_n_over_log_n() {
        let data: Vec<_> = (0..4096).map(|i| iv(i, i + 3)).collect();
        let aitv = AitV::new(&data);
        assert_eq!(aitv.bucket_size(), 12); // log2(4096)
        assert_eq!(aitv.virtual_count(), 4096usize.div_ceil(12));
    }

    #[test]
    fn search_matches_oracle() {
        let data: Vec<_> = (0..500)
            .map(|i| iv((i * 13) % 400, (i * 13) % 400 + 5 + (i % 17)))
            .collect();
        let aitv = AitV::new(&data);
        let bf = BruteForce::new(&data);
        for q in [iv(0, 450), iv(100, 120), iv(399, 399), iv(500, 600)] {
            assert_eq!(
                sorted(aitv.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn samples_are_valid_and_uniform() {
        let data: Vec<_> = (0..300).map(|i| iv(i, i + 40)).collect();
        let aitv = AitV::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(100, 140);
        let support = sorted(bf.range_search(q));
        let mut rng = StdRng::seed_from_u64(99);
        let draws = 150_000usize;
        let mut counts = vec![0u64; support.len()];
        let samples = aitv.sample(q, draws, &mut rng);
        assert_eq!(samples.len(), draws);
        for id in samples {
            let pos = irs_sampling::stats::expect_in_support(&support, &id);
            counts[pos] += 1;
        }
        assert!(
            irs_sampling::stats::chi_square_uniformity_ok(&counts, draws as u64),
            "AIT-V sampling not uniform"
        );
    }

    #[test]
    fn empty_result_set_terminates_via_fallback() {
        // Buckets whose virtual interval overlaps q although no member
        // does: members [0,10] and [100,110] produce virtual [0,110];
        // q = [50,60] hits the virtual interval only.
        let data = vec![iv(0, 10), iv(100, 110)];
        let aitv = AitV::with_bucket_size(&data, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let prepared = aitv.prepare(iv(50, 60));
        assert!(prepared.candidate_count() > 0, "virtual candidate expected");
        let mut out = Vec::new();
        prepared.sample_into(&mut rng, 10, &mut out);
        assert!(out.is_empty(), "no real interval overlaps the query");
        assert!(prepared.stats().fallbacks >= 1);
    }

    #[test]
    fn tail_bucket_members_are_not_over_sampled() {
        // 10 intervals, bucket size 4 → tail bucket has 2 members. All
        // intervals overlap the query; uniformity must hold across the
        // short bucket (pseudo-interval rejection).
        let data: Vec<_> = (0..10).map(|i| iv(i, i + 100)).collect();
        let aitv = AitV::with_bucket_size(&data, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 100_000usize;
        let mut counts = vec![0u64; 10];
        for id in aitv.sample(iv(50, 60), draws, &mut rng) {
            counts[id as usize] += 1;
        }
        assert!(
            irs_sampling::stats::chi_square_uniformity_ok(&counts, draws as u64),
            "tail bucket skew: {counts:?}"
        );
    }

    #[test]
    fn rejection_rate_is_low_on_local_data() {
        // Pair-sorted locality: similar intervals share buckets, so
        // attempts/accepted should be close to 1 (paper reports ~1.09).
        let data: Vec<_> = (0..10_000).map(|i| iv(i, i + 50)).collect();
        let aitv = AitV::new(&data);
        let mut rng = StdRng::seed_from_u64(6);
        let prepared = aitv.prepare(iv(4000, 4800));
        let mut out = Vec::new();
        prepared.sample_into(&mut rng, 1000, &mut out);
        assert_eq!(out.len(), 1000);
        let stats = prepared.stats();
        let ratio = stats.attempts as f64 / stats.accepted as f64;
        assert!(ratio < 1.5, "rejection ratio {ratio} too high");
    }

    #[test]
    fn linear_space_versus_ait() {
        let data: Vec<_> = (0..20_000).map(|i| iv(i, i + 9)).collect();
        let ait = Ait::new(&data);
        let aitv = AitV::new(&data);
        assert!(
            aitv.heap_bytes() * 3 < ait.heap_bytes(),
            "AIT-V ({}) should be far smaller than AIT ({})",
            aitv.heap_bytes(),
            ait.heap_bytes()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_samples_always_overlap_query(
            raw in prop::collection::vec((0i64..800, 0i64..100), 1..200),
            q_lo in -50i64..900,
            q_len in 0i64..300,
            bucket in 1usize..9,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let aitv = AitV::with_bucket_size(&data, bucket);
            let q = iv(q_lo, q_lo + q_len);
            let bf = BruteForce::new(&data);
            let support = sorted(bf.range_search(q));
            let mut rng = StdRng::seed_from_u64(7);
            let samples = aitv.sample(q, 50, &mut rng);
            if support.is_empty() {
                prop_assert!(samples.is_empty());
            } else {
                prop_assert_eq!(samples.len(), 50);
                for id in samples {
                    prop_assert!(support.binary_search(&id).is_ok());
                }
            }
            prop_assert_eq!(sorted(aitv.range_search(q)), support);
        }
    }
}
