//! AWIT (§IV): the Augmented *Weighted* Interval Tree.
//!
//! Same shape as the AIT, but every sorted list carries a cumulative weight
//! array (`Wl`, `Wr`, `AWl`, `AWr`). A node record's total weight is then
//! two array lookups, so the per-query alias over `R` still costs
//! `O(log n)`; drawing *inside* a record uses the cumulative-sum method on
//! the prebuilt prefix array (`O(log n)` per draw, no per-query structure
//! over `q ∩ X`). Total: `O(log² n + s log n)` per query, `O(n log n)`
//! space (Corollaries 4 and 5). Updates are not supported (§IV's
//! discussion: a single insertion shifts entire prefix arrays).

use crate::build::{build_tree, BuildEntry, Key, NodeFactory, NIL};
use crate::records::{ListKind, NodeRecord};
use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSearch, WeightedRangeSampler,
};
use irs_sampling::{sample_prefix_range, AliasTable};

/// An AWIT node: the four sorted lists plus their cumulative weight
/// arrays, index-aligned (`w_*[j] = Σ_{k≤j} w(list[k])`).
#[derive(Debug)]
pub(crate) struct AwitNode<E> {
    pub(crate) center: E,
    pub(crate) l_lo: Vec<Key<E>>,
    pub(crate) l_hi: Vec<Key<E>>,
    pub(crate) al_lo: Vec<Key<E>>,
    pub(crate) al_hi: Vec<Key<E>>,
    /// `Wl`: cumulative weights of `l_lo`.
    pub(crate) w_l_lo: Vec<f64>,
    /// `Wr`: cumulative weights of `l_hi`.
    pub(crate) w_l_hi: Vec<f64>,
    /// `AWl`: cumulative weights of `al_lo`.
    pub(crate) w_al_lo: Vec<f64>,
    /// `AWr`: cumulative weights of `al_hi`.
    pub(crate) w_al_hi: Vec<f64>,
    pub(crate) left: u32,
    pub(crate) right: u32,
}

impl<E: Endpoint> AwitNode<E> {
    fn list(&self, kind: ListKind) -> &[Key<E>] {
        match kind {
            ListKind::Lo => &self.l_lo,
            ListKind::Hi => &self.l_hi,
            ListKind::AllHi => &self.al_hi,
            ListKind::AllLo => &self.al_lo,
        }
    }

    fn prefix(&self, kind: ListKind) -> &[f64] {
        match kind {
            ListKind::Lo => &self.w_l_lo,
            ListKind::Hi => &self.w_l_hi,
            ListKind::AllHi => &self.w_al_hi,
            ListKind::AllLo => &self.w_al_lo,
        }
    }
}

struct AwitFactory;

fn keys_and_prefix<E: Endpoint>(
    entries: &[BuildEntry<E>],
    key_of: impl Fn(&BuildEntry<E>) -> E,
) -> (Vec<Key<E>>, Vec<f64>) {
    let mut keys = Vec::with_capacity(entries.len());
    let mut prefix = Vec::with_capacity(entries.len());
    let mut acc = 0.0;
    for e in entries {
        keys.push(Key {
            key: key_of(e),
            id: e.id,
        });
        acc += e.w;
        prefix.push(acc);
    }
    (keys, prefix)
}

impl<E: Endpoint> NodeFactory<E> for AwitFactory {
    type Node = AwitNode<E>;

    fn make(
        &self,
        center: E,
        here_lo: &[BuildEntry<E>],
        here_hi: &[BuildEntry<E>],
        all_lo: &[BuildEntry<E>],
        all_hi: &[BuildEntry<E>],
    ) -> AwitNode<E> {
        let (l_lo, w_l_lo) = keys_and_prefix(here_lo, |e| e.iv.lo);
        let (l_hi, w_l_hi) = keys_and_prefix(here_hi, |e| e.iv.hi);
        let (al_lo, w_al_lo) = keys_and_prefix(all_lo, |e| e.iv.lo);
        let (al_hi, w_al_hi) = keys_and_prefix(all_hi, |e| e.iv.hi);
        AwitNode {
            center,
            l_lo,
            l_hi,
            al_lo,
            al_hi,
            w_l_lo,
            w_l_hi,
            w_al_lo,
            w_al_hi,
            left: NIL,
            right: NIL,
        }
    }

    fn set_children(node: &mut AwitNode<E>, left: u32, right: u32) {
        node.left = left;
        node.right = right;
    }
}

/// The Augmented Weighted Interval Tree: weighted independent range
/// sampling in `O(log² n + s log n)`, `O(n log n)` space. Static (no
/// updates, per §IV).
///
/// ```
/// use irs_ait::Awit;
/// use irs_core::{Interval, WeightedRangeSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data: Vec<_> = (0..100).map(|i| Interval::new(i, i + 10)).collect();
/// let weights: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
/// let awit = Awit::new(&data, &weights);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = awit.sample_weighted(Interval::new(40, 60), 5, &mut rng);
/// assert_eq!(samples.len(), 5);
/// ```
#[derive(Debug)]
pub struct Awit<E> {
    pub(crate) nodes: Vec<AwitNode<E>>,
    pub(crate) root: u32,
    pub(crate) len: usize,
    pub(crate) height: usize,
}

impl<E: Endpoint> Awit<E> {
    /// Builds the AWIT in `O(n log n)`. `weights` must be positive, finite,
    /// and aligned with `data`.
    pub fn new(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        let entries: Vec<BuildEntry<E>> = data
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(i, (&iv, &w))| {
                assert!(
                    w > 0.0 && w.is_finite(),
                    "weights must be positive, got {w}"
                );
                BuildEntry {
                    iv,
                    id: i as ItemId,
                    w,
                }
            })
            .collect();
        let built = build_tree(&AwitFactory, entries);
        Awit {
            nodes: built.nodes,
            root: built.root,
            len: data.len(),
            height: built.height,
        }
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Algorithm 1's record computation — identical traversal to
    /// [`crate::Ait`], duplicated here because the node layout differs.
    fn collect_records(&self, q: Interval<E>, records: &mut Vec<NodeRecord>) {
        let mut at = self.root;
        while at != NIL {
            let node = &self.nodes[at as usize];
            if q.hi < node.center {
                let j = node.l_lo.partition_point(|k| k.key <= q.hi);
                if j >= 1 {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (j - 1) as u32,
                    });
                }
                at = node.left;
            } else if node.center < q.lo {
                let j = node.l_hi.partition_point(|k| k.key < q.lo);
                if j < node.l_hi.len() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Hi,
                        start: j as u32,
                        end: (node.l_hi.len() - 1) as u32,
                    });
                }
                at = node.right;
            } else {
                if !node.l_lo.is_empty() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (node.l_lo.len() - 1) as u32,
                    });
                }
                if node.left != NIL {
                    let child = &self.nodes[node.left as usize];
                    let j = child.al_hi.partition_point(|k| k.key < q.lo);
                    if j < child.al_hi.len() {
                        records.push(NodeRecord {
                            node: node.left,
                            kind: ListKind::AllHi,
                            start: j as u32,
                            end: (child.al_hi.len() - 1) as u32,
                        });
                    }
                }
                if node.right != NIL {
                    let child = &self.nodes[node.right as usize];
                    let j = child.al_lo.partition_point(|k| k.key <= q.hi);
                    if j >= 1 {
                        records.push(NodeRecord {
                            node: node.right,
                            kind: ListKind::AllLo,
                            start: 0,
                            end: (j - 1) as u32,
                        });
                    }
                }
                break;
            }
        }
    }

    /// Total weight of a record via its prefix array: two lookups, `O(1)`
    /// (the key AWIT property — no access to the intervals themselves).
    fn record_weight(&self, rec: &NodeRecord) -> f64 {
        let prefix = self.nodes[rec.node as usize].prefix(rec.kind);
        let base = if rec.start == 0 {
            0.0
        } else {
            prefix[rec.start as usize - 1]
        };
        prefix[rec.end as usize] - base
    }

    /// Sum of weights over `q ∩ X` in `O(log² n)` — the weighted analogue
    /// of range counting.
    pub fn range_weight(&self, q: Interval<E>) -> f64 {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        records.iter().map(|r| self.record_weight(r)).sum()
    }
}

impl<E: Endpoint> RangeSearch<E> for Awit<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        for rec in &records {
            let list = self.nodes[rec.node as usize].list(rec.kind);
            out.extend(
                list[rec.start as usize..=rec.end as usize]
                    .iter()
                    .map(|k| k.id),
            );
        }
    }
}

impl<E: Endpoint> RangeCount<E> for Awit<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        records.iter().map(NodeRecord::len).sum()
    }
}

/// Phase-2 handle of the AWIT: records plus their precomputed weights.
pub struct AwitPrepared<'a, E> {
    awit: &'a Awit<E>,
    pub(crate) records: Vec<NodeRecord>,
    pub(crate) record_weights: Vec<f64>,
}

impl<'a, E: Endpoint> AwitPrepared<'a, E> {
    /// One weight-proportional draw from record `k` (an index into
    /// [`AwitPrepared::records`]), via the cumulative-sum method on the
    /// prebuilt prefix array. `O(log n)`.
    pub(crate) fn sample_record<R: rand::RngCore + ?Sized>(&self, k: usize, rng: &mut R) -> ItemId {
        let rec = &self.records[k];
        let node = &self.awit.nodes[rec.node as usize];
        let prefix = node.prefix(rec.kind);
        let idx = sample_prefix_range(prefix, rec.start as usize, rec.end as usize, rng);
        node.list(rec.kind)[idx].id
    }

    /// The node records (white-box inspection).
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Total weight of `q ∩ X`.
    pub fn total_weight(&self) -> f64 {
        self.record_weights.iter().sum()
    }
}

impl<E: Endpoint> PreparedSampler for AwitPrepared<'_, E> {
    fn candidate_count(&self) -> usize {
        self.records.iter().map(NodeRecord::len).sum()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.records.is_empty() {
            return;
        }
        // Alias over record weights (O(|R|)), then the cumulative-sum
        // method *within* the chosen record against the prebuilt prefix
        // array — building an alias over the record's intervals would cost
        // O(|X(Ri)|) per query, which §IV explicitly rules out.
        let alias = AliasTable::new(&self.record_weights);
        for _ in 0..s {
            let rec = &self.records[alias.sample(rng)];
            let node = &self.awit.nodes[rec.node as usize];
            let prefix = node.prefix(rec.kind);
            let idx = sample_prefix_range(prefix, rec.start as usize, rec.end as usize, rng);
            out.push(node.list(rec.kind)[idx].id);
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for Awit<E> {
    type Prepared<'a> = AwitPrepared<'a, E>;

    fn prepare_weighted(&self, q: Interval<E>) -> AwitPrepared<'_, E> {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        let record_weights = records.iter().map(|r| self.record_weight(r)).collect();
        AwitPrepared {
            awit: self,
            records,
            record_weights,
        }
    }
}

impl<E: Endpoint> MemoryFootprint for Awit<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<AwitNode<E>>();
        for node in &self.nodes {
            bytes += vec_bytes(&node.l_lo)
                + vec_bytes(&node.l_hi)
                + vec_bytes(&node.al_lo)
                + vec_bytes(&node.al_hi)
                + vec_bytes(&node.w_l_lo)
                + vec_bytes(&node.w_l_hi)
                + vec_bytes(&node.w_al_lo)
                + vec_bytes(&node.w_al_hi);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ait;
    use irs_core::BruteForce;
    use irs_sampling::stats::chi_square_ok;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_awit() {
        let awit = Awit::<i64>::new(&[], &[]);
        assert!(awit.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(awit.sample_weighted(iv(0, 10), 5, &mut rng).is_empty());
        assert_eq!(awit.range_weight(iv(0, 10)), 0.0);
    }

    #[test]
    fn search_and_count_match_oracle() {
        let data: Vec<_> = (0..400)
            .map(|i| iv((i * 11) % 350, (i * 11) % 350 + i % 23))
            .collect();
        let weights: Vec<f64> = (0..400).map(|i| 1.0 + (i % 100) as f64).collect();
        let awit = Awit::new(&data, &weights);
        let bf = BruteForce::new_weighted(&data, &weights);
        for q in [iv(0, 400), iv(100, 110), iv(349, 360), iv(-20, -1)] {
            assert_eq!(
                sorted(awit.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
            assert_eq!(awit.range_count(q), bf.range_count(q));
            let rw = awit.range_weight(q);
            let expect = bf.result_weight(q);
            assert!(
                (rw - expect).abs() < 1e-6 * expect.max(1.0),
                "weight {rw} vs {expect}"
            );
        }
    }

    #[test]
    fn record_weights_use_prefix_arrays() {
        let data: Vec<_> = (0..64).map(|i| iv(i, i + 8)).collect();
        let weights: Vec<f64> = (0..64).map(|i| (i + 1) as f64).collect();
        let awit = Awit::new(&data, &weights);
        let q = iv(20, 30);
        let prepared = awit.prepare_weighted(q);
        let bf = BruteForce::new_weighted(&data, &weights);
        let expect = bf.result_weight(q);
        assert!((prepared.total_weight() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn sampling_probability_proportional_to_weight() {
        let data: Vec<_> = (0..40).map(|i| iv(i, i + 25)).collect();
        let weights: Vec<f64> = (0..40).map(|i| 1.0 + (i % 10) as f64 * 3.0).collect();
        let awit = Awit::new(&data, &weights);
        let bf = BruteForce::new_weighted(&data, &weights);
        let q = iv(18, 28);
        let support = sorted(bf.range_search(q));
        assert!(support.len() > 5);
        let total: f64 = support.iter().map(|&id| weights[id as usize]).sum();
        let expected: Vec<f64> = support
            .iter()
            .map(|&id| weights[id as usize] / total)
            .collect();

        let mut rng = StdRng::seed_from_u64(321);
        let draws = 300_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in awit.sample_weighted(q, draws, &mut rng) {
            let pos = support.binary_search(&id).expect("sample outside q ∩ X");
            counts[pos] += 1;
        }
        assert!(
            chi_square_ok(&counts, &expected, draws as u64),
            "AWIT sampling deviates from weights"
        );
    }

    #[test]
    fn uniform_weights_degenerate_to_ait_distribution() {
        let data: Vec<_> = (0..128).map(|i| iv(i % 50, i % 50 + 20)).collect();
        let weights = vec![2.5; 128];
        let awit = Awit::new(&data, &weights);
        let ait = Ait::new(&data);
        let q = iv(30, 45);
        assert_eq!(
            sorted(irs_core::RangeSearch::range_search(&awit, q)),
            sorted(irs_core::RangeSearch::range_search(&ait, q))
        );
        // Equal weights → uniform sampling; spot-check with chi-square.
        let support = sorted(irs_core::RangeSearch::range_search(&awit, q));
        let mut rng = StdRng::seed_from_u64(8);
        let draws = 120_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in awit.sample_weighted(q, draws, &mut rng) {
            counts[support.binary_search(&id).unwrap()] += 1;
        }
        assert!(irs_sampling::stats::chi_square_uniformity_ok(
            &counts,
            draws as u64
        ));
    }

    #[test]
    fn extreme_weight_ratios() {
        let data = vec![iv(0, 10); 3];
        let weights = vec![1e-6, 1.0, 1e6];
        let awit = Awit::new(&data, &weights);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = awit.sample_weighted(iv(5, 5), 5000, &mut rng);
        let heavy = samples.iter().filter(|&&id| id == 2).count();
        assert!(heavy > 4950, "heavy item drawn {heavy}/5000");
    }

    #[test]
    fn footprint_roughly_doubles_ait() {
        let data: Vec<_> = (0..5000).map(|i| iv(i, i + 7)).collect();
        let weights = vec![1.0; 5000];
        let awit = Awit::new(&data, &weights);
        let ait = Ait::new(&data);
        let ratio = awit.heap_bytes() as f64 / ait.heap_bytes() as f64;
        assert!(
            (1.2..2.6).contains(&ratio),
            "AWIT/AIT footprint ratio {ratio}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_oracle_and_weights(
            raw in prop::collection::vec((0i64..600, 0i64..90, 1u32..100), 1..200),
            queries in prop::collection::vec((-30i64..700, 0i64..200), 8),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len, _)| iv(lo, lo + len)).collect();
            let weights: Vec<f64> = raw.iter().map(|&(_, _, w)| w as f64).collect();
            let awit = Awit::new(&data, &weights);
            let bf = BruteForce::new_weighted(&data, &weights);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(awit.range_search(q)), sorted(bf.range_search(q)));
                let rw = awit.range_weight(q);
                let expect = bf.result_weight(q);
                prop_assert!((rw - expect).abs() < 1e-6 * expect.max(1.0));
            }
        }
    }
}
