//! AWIT (§IV): the Augmented *Weighted* Interval Tree.
//!
//! Same shape as the AIT, but every sorted list carries a cumulative weight
//! array (`Wl`, `Wr`, `AWl`, `AWr`). A node record's total weight is then
//! two array lookups, so the per-query alias over `R` still costs
//! `O(log n)`; drawing *inside* a record uses the cumulative-sum method on
//! the prebuilt prefix array (`O(log n)` per draw, no per-query structure
//! over `q ∩ X`). Total: `O(log² n + s log n)` per query, `O(n log n)`
//! space (Corollaries 4 and 5). Updates are not supported (§IV's
//! discussion: a single insertion shifts entire prefix arrays).

use crate::build::{build_tree, key_layout, BuildEntry, Key, NodeFactory, NIL};
use crate::records::{ListKind, NodeRecord};
use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSearch, WeightedRangeSampler,
};
use irs_sampling::{
    prefetch_read, sample_prefix_range_eytzinger, sample_prefix_window, sample_prefix_window_fill,
    AliasTable, Eytzinger, EYTZINGER_WINDOW_MIN,
};

/// An AWIT node: the four sorted lists plus their cumulative weight
/// arrays, index-aligned (`w_*[j] = Σ_{k≤j} w(list[k])`).
#[derive(Debug)]
pub(crate) struct AwitNode<E> {
    pub(crate) center: E,
    pub(crate) l_lo: Vec<Key<E>>,
    pub(crate) l_hi: Vec<Key<E>>,
    pub(crate) al_lo: Vec<Key<E>>,
    pub(crate) al_hi: Vec<Key<E>>,
    /// `Wl`: cumulative weights of `l_lo`.
    pub(crate) w_l_lo: Vec<f64>,
    /// `Wr`: cumulative weights of `l_hi`.
    pub(crate) w_l_hi: Vec<f64>,
    /// `AWl`: cumulative weights of `al_lo`.
    pub(crate) w_al_lo: Vec<f64>,
    /// `AWr`: cumulative weights of `al_hi`.
    pub(crate) w_al_hi: Vec<f64>,
    pub(crate) left: u32,
    pub(crate) right: u32,
}

impl<E: Endpoint> AwitNode<E> {
    fn list(&self, kind: ListKind) -> &[Key<E>] {
        match kind {
            ListKind::Lo => &self.l_lo,
            ListKind::Hi => &self.l_hi,
            ListKind::AllHi => &self.al_hi,
            ListKind::AllLo => &self.al_lo,
        }
    }

    fn prefix(&self, kind: ListKind) -> &[f64] {
        match kind {
            ListKind::Lo => &self.w_l_lo,
            ListKind::Hi => &self.w_l_hi,
            ListKind::AllHi => &self.w_al_hi,
            ListKind::AllLo => &self.w_al_lo,
        }
    }
}

/// Derived, never-serialized hot-path companion of one [`AwitNode`]:
/// the fields Algorithm 1 touches at every level of the descent — split
/// key and child links — packed at the front of a 64-byte-aligned
/// struct so one cache line per level carries the whole decision,
/// followed by Eytzinger layouts of the node's endpoint lists and
/// cumulative-weight arrays. Rebuilt from the authority arrays by
/// [`Awit::finalize`] at build and decode time; snapshots never carry
/// it (see DESIGN.md, "Hot-path memory layout").
#[derive(Debug)]
#[repr(align(64))]
pub(crate) struct AwitHot<E> {
    center: E,
    left: u32,
    right: u32,
    ey_l_lo: Eytzinger<E>,
    ey_l_hi: Eytzinger<E>,
    ey_al_lo: Eytzinger<E>,
    ey_al_hi: Eytzinger<E>,
    ey_w_l_lo: Eytzinger<f64>,
    ey_w_l_hi: Eytzinger<f64>,
    ey_w_al_lo: Eytzinger<f64>,
    ey_w_al_hi: Eytzinger<f64>,
}

impl<E: Endpoint> AwitHot<E> {
    fn of(node: &AwitNode<E>) -> Self {
        AwitHot {
            center: node.center,
            left: node.left,
            right: node.right,
            ey_l_lo: key_layout(&node.l_lo),
            ey_l_hi: key_layout(&node.l_hi),
            ey_al_lo: key_layout(&node.al_lo),
            ey_al_hi: key_layout(&node.al_hi),
            ey_w_l_lo: Eytzinger::from_sorted(&node.w_l_lo),
            ey_w_l_hi: Eytzinger::from_sorted(&node.w_l_hi),
            ey_w_al_lo: Eytzinger::from_sorted(&node.w_al_lo),
            ey_w_al_hi: Eytzinger::from_sorted(&node.w_al_hi),
        }
    }

    /// The weight-prefix layout matching [`AwitNode::prefix`]`(kind)`.
    fn ey_prefix(&self, kind: ListKind) -> &Eytzinger<f64> {
        match kind {
            ListKind::Lo => &self.ey_w_l_lo,
            ListKind::Hi => &self.ey_w_l_hi,
            ListKind::AllHi => &self.ey_w_al_hi,
            ListKind::AllLo => &self.ey_w_al_lo,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.ey_l_lo.heap_bytes()
            + self.ey_l_hi.heap_bytes()
            + self.ey_al_lo.heap_bytes()
            + self.ey_al_hi.heap_bytes()
            + self.ey_w_l_lo.heap_bytes()
            + self.ey_w_l_hi.heap_bytes()
            + self.ey_w_al_lo.heap_bytes()
            + self.ey_w_al_hi.heap_bytes()
    }
}

struct AwitFactory;

fn keys_and_prefix<E: Endpoint>(
    entries: &[BuildEntry<E>],
    key_of: impl Fn(&BuildEntry<E>) -> E,
) -> (Vec<Key<E>>, Vec<f64>) {
    let mut keys = Vec::with_capacity(entries.len());
    let mut prefix = Vec::with_capacity(entries.len());
    let mut acc = 0.0;
    for e in entries {
        keys.push(Key {
            key: key_of(e),
            id: e.id,
        });
        acc += e.w;
        prefix.push(acc);
    }
    (keys, prefix)
}

impl<E: Endpoint> NodeFactory<E> for AwitFactory {
    type Node = AwitNode<E>;

    fn make(
        &self,
        center: E,
        here_lo: &[BuildEntry<E>],
        here_hi: &[BuildEntry<E>],
        all_lo: &[BuildEntry<E>],
        all_hi: &[BuildEntry<E>],
    ) -> AwitNode<E> {
        let (l_lo, w_l_lo) = keys_and_prefix(here_lo, |e| e.iv.lo);
        let (l_hi, w_l_hi) = keys_and_prefix(here_hi, |e| e.iv.hi);
        let (al_lo, w_al_lo) = keys_and_prefix(all_lo, |e| e.iv.lo);
        let (al_hi, w_al_hi) = keys_and_prefix(all_hi, |e| e.iv.hi);
        AwitNode {
            center,
            l_lo,
            l_hi,
            al_lo,
            al_hi,
            w_l_lo,
            w_l_hi,
            w_al_lo,
            w_al_hi,
            left: NIL,
            right: NIL,
        }
    }

    fn set_children(node: &mut AwitNode<E>, left: u32, right: u32) {
        node.left = left;
        node.right = right;
    }
}

/// The Augmented Weighted Interval Tree: weighted independent range
/// sampling in `O(log² n + s log n)`, `O(n log n)` space. Static (no
/// updates, per §IV).
///
/// ```
/// use irs_ait::Awit;
/// use irs_core::{Interval, WeightedRangeSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data: Vec<_> = (0..100).map(|i| Interval::new(i, i + 10)).collect();
/// let weights: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
/// let awit = Awit::new(&data, &weights);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = awit.sample_weighted(Interval::new(40, 60), 5, &mut rng);
/// assert_eq!(samples.len(), 5);
/// ```
#[derive(Debug)]
pub struct Awit<E> {
    pub(crate) nodes: Vec<AwitNode<E>>,
    pub(crate) root: u32,
    pub(crate) len: usize,
    pub(crate) height: usize,
    /// Derived descent arena, index-aligned with `nodes`. Never
    /// serialized; every constructor and decode path must call
    /// [`Awit::finalize`] to (re)build it.
    pub(crate) hot: Vec<AwitHot<E>>,
}

impl<E: Endpoint> Awit<E> {
    /// Builds the AWIT in `O(n log n)`. `weights` must be positive, finite,
    /// and aligned with `data`.
    pub fn new(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        let entries: Vec<BuildEntry<E>> = data
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(i, (&iv, &w))| {
                assert!(
                    w > 0.0 && w.is_finite(),
                    "weights must be positive, got {w}"
                );
                BuildEntry {
                    iv,
                    id: i as ItemId,
                    w,
                }
            })
            .collect();
        let built = build_tree(&AwitFactory, entries);
        let mut awit = Awit {
            nodes: built.nodes,
            root: built.root,
            len: data.len(),
            height: built.height,
            hot: Vec::new(),
        };
        awit.finalize();
        awit
    }

    /// Rebuilds the derived hot-path state (descent arena + Eytzinger
    /// layouts) from the authority node arrays. `O(n log n)`, same as
    /// construction; called by [`Awit::new`] and by snapshot decoding.
    pub(crate) fn finalize(&mut self) {
        self.hot = self.nodes.iter().map(AwitHot::of).collect();
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Algorithm 1's record computation — identical traversal to
    /// [`crate::Ait`], duplicated here because the node layout differs.
    /// Runs over the derived descent arena: one cache line per level for
    /// the case split, Eytzinger layouts for the per-node searches, and
    /// both children prefetched while the current search resolves.
    fn collect_records(&self, q: Interval<E>, records: &mut Vec<NodeRecord>) {
        let hot = self.hot.as_slice();
        debug_assert_eq!(hot.len(), self.nodes.len());
        let mut at = self.root;
        while at != NIL {
            let node = &hot[at as usize];
            // Pull the next level toward L1 while this node's binary
            // search runs — whichever way the case split goes, the child
            // header is resident by the time the descent arrives.
            if node.left != NIL {
                prefetch_read(&hot[node.left as usize]);
            }
            if node.right != NIL {
                prefetch_read(&hot[node.right as usize]);
            }
            if q.hi < node.center {
                let j = node.ey_l_lo.partition_point(|&k| k <= q.hi);
                if j >= 1 {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (j - 1) as u32,
                    });
                }
                at = node.left;
            } else if node.center < q.lo {
                let j = node.ey_l_hi.partition_point(|&k| k < q.lo);
                if j < node.ey_l_hi.len() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Hi,
                        start: j as u32,
                        end: (node.ey_l_hi.len() - 1) as u32,
                    });
                }
                at = node.right;
            } else {
                if !node.ey_l_lo.is_empty() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (node.ey_l_lo.len() - 1) as u32,
                    });
                }
                if node.left != NIL {
                    let child = &hot[node.left as usize];
                    let j = child.ey_al_hi.partition_point(|&k| k < q.lo);
                    if j < child.ey_al_hi.len() {
                        records.push(NodeRecord {
                            node: node.left,
                            kind: ListKind::AllHi,
                            start: j as u32,
                            end: (child.ey_al_hi.len() - 1) as u32,
                        });
                    }
                }
                if node.right != NIL {
                    let child = &hot[node.right as usize];
                    let j = child.ey_al_lo.partition_point(|&k| k <= q.hi);
                    if j >= 1 {
                        records.push(NodeRecord {
                            node: node.right,
                            kind: ListKind::AllLo,
                            start: 0,
                            end: (j - 1) as u32,
                        });
                    }
                }
                break;
            }
        }
    }

    /// Total weight of a record via its prefix array: two lookups, `O(1)`
    /// (the key AWIT property — no access to the intervals themselves).
    fn record_weight(&self, rec: &NodeRecord) -> f64 {
        let prefix = self.nodes[rec.node as usize].prefix(rec.kind);
        let base = if rec.start == 0 {
            0.0
        } else {
            prefix[rec.start as usize - 1]
        };
        prefix[rec.end as usize] - base
    }

    /// Sum of weights over `q ∩ X` in `O(log² n)` — the weighted analogue
    /// of range counting.
    pub fn range_weight(&self, q: Interval<E>) -> f64 {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        records.iter().map(|r| self.record_weight(r)).sum()
    }
}

impl<E: Endpoint> RangeSearch<E> for Awit<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        for rec in &records {
            let list = self.nodes[rec.node as usize].list(rec.kind);
            out.extend(
                list[rec.start as usize..=rec.end as usize]
                    .iter()
                    .map(|k| k.id),
            );
        }
    }
}

impl<E: Endpoint> RangeCount<E> for Awit<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        records.iter().map(NodeRecord::len).sum()
    }
}

/// How many draws each batched sampling pass resolves at once: enough
/// to amortize the alias table and RNG plumbing across a chunk, small
/// enough that the per-chunk scratch lives in two stack cache lines.
const DRAW_CHUNK: usize = 64;

/// One record's draw context, resolved once per query at prepare time:
/// the list slice, its prefix window (with the window's base and total
/// mass hoisted — two random reads into a large prefix array otherwise
/// paid per draw), the node's full-array Eytzinger layout, and the
/// record's position. Per draw this saves the node dereference, the
/// `ListKind` dispatch, both slice computations, and the base/total
/// loads.
struct RecordRun<'a, E> {
    list: &'a [Key<E>],
    prefix: &'a [f64],
    ey: &'a Eytzinger<f64>,
    win: &'a [f64],
    base: f64,
    total: f64,
    lo: u32,
    hi: u32,
}

impl<E> RecordRun<'_, E> {
    /// One weight-proportional draw from this record: windowed scalar
    /// search for narrow windows (resident after the first draw),
    /// branchless full-array Eytzinger for wide ones. Both sides
    /// consume exactly one RNG draw.
    #[inline]
    fn draw<R: rand::RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        if self.win.len() < EYTZINGER_WINDOW_MIN {
            self.lo as usize + sample_prefix_window(self.win, self.base, self.total, rng)
        } else {
            sample_prefix_range_eytzinger(
                self.ey,
                self.prefix,
                self.lo as usize,
                self.hi as usize,
                rng,
            )
        }
    }
}

/// Phase-2 handle of the AWIT: records plus their precomputed weights
/// and per-record draw contexts.
pub struct AwitPrepared<'a, E> {
    pub(crate) records: Vec<NodeRecord>,
    pub(crate) record_weights: Vec<f64>,
    runs: Vec<RecordRun<'a, E>>,
}

impl<'a, E: Endpoint> AwitPrepared<'a, E> {
    /// One weight-proportional draw from record `k` (an index into
    /// [`AwitPrepared::records`]), via the cumulative-sum method on the
    /// prebuilt prefix array. `O(log n)`.
    pub(crate) fn sample_record<R: rand::RngCore + ?Sized>(&self, k: usize, rng: &mut R) -> ItemId {
        let run = &self.runs[k];
        run.list[run.draw(rng)].id
    }

    /// The node records (white-box inspection).
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }

    /// Total weight of `q ∩ X`.
    pub fn total_weight(&self) -> f64 {
        self.record_weights.iter().sum()
    }
}

impl<E: Endpoint> PreparedSampler for AwitPrepared<'_, E> {
    fn candidate_count(&self) -> usize {
        self.records.iter().map(NodeRecord::len).sum()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.records.is_empty() {
            return;
        }
        // Alias over record weights (O(|R|)), then the cumulative-sum
        // method *within* the chosen record against the prebuilt prefix
        // array — building an alias over the record's intervals would cost
        // O(|X(Ri)|) per query, which §IV explicitly rules out.
        //
        // Draws run in three batched passes. A query typically touches
        // hundreds of records while drawing only a few samples from each,
        // so draw-order execution pays a cold window plus a cold list line
        // on nearly every draw — random accesses across enough pages that
        // software prefetch can't hide them (a prefetch that misses the
        // TLB is dropped). Instead: (1) all record choices up front (the
        // alias cells stay hot), (2) a counting sort grouping draws by
        // record, (3) the in-record searches record by record in index
        // order — each record's window, base, and total are loaded once
        // for its whole group, and consecutive records' windows are
        // adjacent slices of the same node arrays, so the hardware
        // prefetcher streams them. Each result is scattered back to its
        // draw's original output slot, so the per-slot distribution is
        // exactly what draw-order execution produces: slot j still holds
        // an independent draw from record `ks[j]`.
        let alias = AliasTable::new(&self.record_weights);
        let base = out.len();
        out.resize(base + s, 0);
        let mut ks = vec![0u32; s];
        alias.sample_fill(rng, &mut ks);
        // Counting sort: `order` lists draw indices grouped by record,
        // record groups in ascending record order.
        let mut starts = vec![0u32; self.runs.len() + 1];
        for &k in &ks {
            starts[k as usize + 1] += 1;
        }
        for r in 0..self.runs.len() {
            starts[r + 1] += starts[r];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; s];
        for (j, &k) in ks.iter().enumerate() {
            let c = &mut cursor[k as usize];
            order[*c as usize] = j as u32;
            *c += 1;
        }
        // Batched in-record searches, one record group at a time: all of a
        // group's draws come from the same window, so its cache lines,
        // base, and total are paid once per group instead of once per
        // draw. `idxs` is aligned with `order`: position p holds the
        // in-window offset of draw `order[p]`.
        let mut idxs = vec![0u32; s];
        for (r, run) in self.runs.iter().enumerate() {
            let group = &mut idxs[starts[r] as usize..starts[r + 1] as usize];
            if !group.is_empty() {
                sample_prefix_window_fill(run.win, run.base, run.total, rng, group);
            }
        }
        // Gather in two chunked passes: prefetch each resolved key, then
        // read the ids over lines the prefetches already pulled in.
        let mut pos = 0usize;
        while pos < s {
            let c = (s - pos).min(DRAW_CHUNK);
            for (&idx, &j) in idxs[pos..pos + c].iter().zip(&order[pos..pos + c]) {
                let run = &self.runs[ks[j as usize] as usize];
                prefetch_read(&run.list[run.lo as usize + idx as usize]);
            }
            for (&idx, &j) in idxs[pos..pos + c].iter().zip(&order[pos..pos + c]) {
                let run = &self.runs[ks[j as usize] as usize];
                out[base + j as usize] = run.list[run.lo as usize + idx as usize].id;
            }
            pos += c;
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for Awit<E> {
    type Prepared<'a> = AwitPrepared<'a, E>;

    fn prepare_weighted(&self, q: Interval<E>) -> AwitPrepared<'_, E> {
        let mut records = Vec::new();
        self.collect_records(q, &mut records);
        // Each record's weight needs two random reads into its node's
        // prefix array. Issue every prefetch first so the ~|R| cache
        // misses overlap instead of serializing through the map below.
        for rec in &records {
            let prefix = self.nodes[rec.node as usize].prefix(rec.kind);
            prefetch_read(&prefix[rec.end as usize]);
            prefetch_read(&prefix[rec.start as usize]);
        }
        let runs: Vec<RecordRun<'_, E>> = records
            .iter()
            .map(|rec| {
                let node = &self.nodes[rec.node as usize];
                let prefix = node.prefix(rec.kind);
                let base = if rec.start == 0 {
                    0.0
                } else {
                    prefix[rec.start as usize - 1]
                };
                RecordRun {
                    list: node.list(rec.kind),
                    prefix,
                    ey: self.hot[rec.node as usize].ey_prefix(rec.kind),
                    win: &prefix[rec.start as usize..=rec.end as usize],
                    base,
                    total: prefix[rec.end as usize] - base,
                    lo: rec.start,
                    hi: rec.end,
                }
            })
            .collect();
        let record_weights = runs.iter().map(|run| run.total).collect();
        AwitPrepared {
            records,
            record_weights,
            runs,
        }
    }
}

impl<E: Endpoint> MemoryFootprint for Awit<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<AwitNode<E>>();
        for node in &self.nodes {
            bytes += vec_bytes(&node.l_lo)
                + vec_bytes(&node.l_hi)
                + vec_bytes(&node.al_lo)
                + vec_bytes(&node.al_hi)
                + vec_bytes(&node.w_l_lo)
                + vec_bytes(&node.w_l_hi)
                + vec_bytes(&node.w_al_lo)
                + vec_bytes(&node.w_al_hi);
        }
        bytes += self.hot.capacity() * std::mem::size_of::<AwitHot<E>>();
        for hot in &self.hot {
            bytes += hot.heap_bytes();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ait;
    use irs_core::BruteForce;
    use irs_sampling::stats::chi_square_ok;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_awit() {
        let awit = Awit::<i64>::new(&[], &[]);
        assert!(awit.is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(awit.sample_weighted(iv(0, 10), 5, &mut rng).is_empty());
        assert_eq!(awit.range_weight(iv(0, 10)), 0.0);
    }

    #[test]
    fn search_and_count_match_oracle() {
        let data: Vec<_> = (0..400)
            .map(|i| iv((i * 11) % 350, (i * 11) % 350 + i % 23))
            .collect();
        let weights: Vec<f64> = (0..400).map(|i| 1.0 + (i % 100) as f64).collect();
        let awit = Awit::new(&data, &weights);
        let bf = BruteForce::new_weighted(&data, &weights);
        for q in [iv(0, 400), iv(100, 110), iv(349, 360), iv(-20, -1)] {
            assert_eq!(
                sorted(awit.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
            assert_eq!(awit.range_count(q), bf.range_count(q));
            let rw = awit.range_weight(q);
            let expect = bf.result_weight(q);
            assert!(
                (rw - expect).abs() < 1e-6 * expect.max(1.0),
                "weight {rw} vs {expect}"
            );
        }
    }

    #[test]
    fn record_weights_use_prefix_arrays() {
        let data: Vec<_> = (0..64).map(|i| iv(i, i + 8)).collect();
        let weights: Vec<f64> = (0..64).map(|i| (i + 1) as f64).collect();
        let awit = Awit::new(&data, &weights);
        let q = iv(20, 30);
        let prepared = awit.prepare_weighted(q);
        let bf = BruteForce::new_weighted(&data, &weights);
        let expect = bf.result_weight(q);
        assert!((prepared.total_weight() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn sampling_probability_proportional_to_weight() {
        let data: Vec<_> = (0..40).map(|i| iv(i, i + 25)).collect();
        let weights: Vec<f64> = (0..40).map(|i| 1.0 + (i % 10) as f64 * 3.0).collect();
        let awit = Awit::new(&data, &weights);
        let bf = BruteForce::new_weighted(&data, &weights);
        let q = iv(18, 28);
        let support = sorted(bf.range_search(q));
        assert!(support.len() > 5);
        let total: f64 = support.iter().map(|&id| weights[id as usize]).sum();
        let expected: Vec<f64> = support
            .iter()
            .map(|&id| weights[id as usize] / total)
            .collect();

        let mut rng = StdRng::seed_from_u64(321);
        let draws = 300_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in awit.sample_weighted(q, draws, &mut rng) {
            let pos = irs_sampling::stats::expect_in_support(&support, &id);
            counts[pos] += 1;
        }
        assert!(
            chi_square_ok(&counts, &expected, draws as u64),
            "AWIT sampling deviates from weights"
        );
    }

    #[test]
    fn uniform_weights_degenerate_to_ait_distribution() {
        let data: Vec<_> = (0..128).map(|i| iv(i % 50, i % 50 + 20)).collect();
        let weights = vec![2.5; 128];
        let awit = Awit::new(&data, &weights);
        let ait = Ait::new(&data);
        let q = iv(30, 45);
        assert_eq!(
            sorted(irs_core::RangeSearch::range_search(&awit, q)),
            sorted(irs_core::RangeSearch::range_search(&ait, q))
        );
        // Equal weights → uniform sampling; spot-check with chi-square.
        let support = sorted(irs_core::RangeSearch::range_search(&awit, q));
        let mut rng = StdRng::seed_from_u64(8);
        let draws = 120_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in awit.sample_weighted(q, draws, &mut rng) {
            counts[support.binary_search(&id).unwrap()] += 1;
        }
        assert!(irs_sampling::stats::chi_square_uniformity_ok(
            &counts,
            draws as u64
        ));
    }

    #[test]
    fn extreme_weight_ratios() {
        let data = vec![iv(0, 10); 3];
        let weights = vec![1e-6, 1.0, 1e6];
        let awit = Awit::new(&data, &weights);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = awit.sample_weighted(iv(5, 5), 5000, &mut rng);
        let heavy = samples.iter().filter(|&&id| id == 2).count();
        assert!(heavy > 4950, "heavy item drawn {heavy}/5000");
    }

    #[test]
    fn footprint_roughly_doubles_ait() {
        let data: Vec<_> = (0..5000).map(|i| iv(i, i + 7)).collect();
        let weights = vec![1.0; 5000];
        let awit = Awit::new(&data, &weights);
        let ait = Ait::new(&data);
        let ratio = awit.heap_bytes() as f64 / ait.heap_bytes() as f64;
        assert!(
            (1.2..2.6).contains(&ratio),
            "AWIT/AIT footprint ratio {ratio}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_oracle_and_weights(
            raw in prop::collection::vec((0i64..600, 0i64..90, 1u32..100), 1..200),
            queries in prop::collection::vec((-30i64..700, 0i64..200), 8),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len, _)| iv(lo, lo + len)).collect();
            let weights: Vec<f64> = raw.iter().map(|&(_, _, w)| w as f64).collect();
            let awit = Awit::new(&data, &weights);
            let bf = BruteForce::new_weighted(&data, &weights);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(awit.range_search(q)), sorted(bf.range_search(q)));
                let rw = awit.range_weight(q);
                let expect = bf.result_weight(q);
                prop_assert!((rw - expect).abs() < 1e-6 * expect.max(1.0));
            }
        }
    }
}
