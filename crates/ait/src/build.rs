//! Shared top-down builder for the AIT and AWIT.
//!
//! Both trees have the same shape (an interval tree whose nodes carry the
//! augmented subtree lists); they differ only in what each node stores per
//! entry (AWIT adds cumulative weights). The builder threads two pre-sorted
//! views of every subtree's interval set through the recursion so that no
//! per-node sorting is needed: partitioning a sorted list stably keeps it
//! sorted, making construction `O(n log n)` total.

use irs_core::{Endpoint, Interval, ItemId};
use irs_sampling::Eytzinger;

/// Sentinel child index meaning "no child".
pub(crate) const NIL: u32 = u32::MAX;

/// An interval with its dataset id and weight, the builder's working unit.
/// Unweighted builds pass `w = 1.0` and simply ignore it in the factory.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BuildEntry<E> {
    pub iv: Interval<E>,
    pub id: ItemId,
    pub w: f64,
}

/// A sorted-list element of the final trees: one endpoint plus the
/// interval's id. Storing single endpoints (not whole intervals) halves the
/// footprint of the augmented lists; each query case only ever compares one
/// endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Key<E> {
    pub key: E,
    pub id: ItemId,
}

/// Eytzinger layout over the raw endpoints of a key list sorted by
/// `(key, id)` — the derived search structure every per-node endpoint
/// binary search on the read hot path runs against. The id tiebreaker
/// never changes a `partition_point` over keys alone, so dropping it
/// here is sound.
pub(crate) fn key_layout<E: Endpoint>(list: &[Key<E>]) -> Eytzinger<E> {
    let raw: Vec<E> = list.iter().map(|k| k.key).collect();
    Eytzinger::from_sorted(&raw)
}

/// How a tree type materializes a node from the builder's sorted slices.
pub(crate) trait NodeFactory<E: Endpoint> {
    type Node;

    /// Builds a node from the entries stabbed by `center` (`here_*`, the
    /// `Ll`/`Lr` lists) and all entries of the subtree (`all_*`, the
    /// `ALl`/`ALr` lists). `here_lo`/`all_lo` are sorted by `iv.lo`,
    /// `here_hi`/`all_hi` by `iv.hi`. Children are patched in later via
    /// [`NodeFactory::set_children`].
    fn make(
        &self,
        center: E,
        here_lo: &[BuildEntry<E>],
        here_hi: &[BuildEntry<E>],
        all_lo: &[BuildEntry<E>],
        all_hi: &[BuildEntry<E>],
    ) -> Self::Node;

    fn set_children(node: &mut Self::Node, left: u32, right: u32);
}

/// Output of [`build_tree`]: the node arena plus shape metadata.
pub(crate) struct BuiltTree<N> {
    pub nodes: Vec<N>,
    pub root: u32,
    pub height: usize,
}

/// Builds the tree over `entries` (any order). Returns an empty arena with
/// `root == NIL` for an empty dataset.
pub(crate) fn build_tree<E: Endpoint, F: NodeFactory<E>>(
    factory: &F,
    entries: Vec<BuildEntry<E>>,
) -> BuiltTree<F::Node> {
    let mut by_lo = entries;
    let mut by_hi = by_lo.clone();
    // Secondary id key makes the two orders agree on ties, which keeps the
    // structure deterministic (helpful for tests and reproducible layouts).
    by_lo.sort_unstable_by_key(|a| (a.iv.lo, a.id));
    by_hi.sort_unstable_by_key(|a| (a.iv.hi, a.id));

    let mut tree = BuiltTree {
        nodes: Vec::new(),
        root: NIL,
        height: 0,
    };
    tree.root = build_node(factory, by_lo, by_hi, 1, &mut tree.nodes, &mut tree.height);
    tree
}

fn build_node<E: Endpoint, F: NodeFactory<E>>(
    factory: &F,
    by_lo: Vec<BuildEntry<E>>,
    by_hi: Vec<BuildEntry<E>>,
    depth: usize,
    nodes: &mut Vec<F::Node>,
    height: &mut usize,
) -> u32 {
    if by_lo.is_empty() {
        return NIL;
    }
    *height = (*height).max(depth);

    // Central point: median of all 2|X'| endpoints, so each side of the
    // split inherits at most half of the endpoints (height = O(log n)).
    let mut endpoints: Vec<E> = Vec::with_capacity(by_lo.len() * 2);
    for e in &by_lo {
        endpoints.push(e.iv.lo);
        endpoints.push(e.iv.hi);
    }
    let mid = endpoints.len() / 2;
    let (_, &mut center, _) = endpoints.select_nth_unstable(mid);
    drop(endpoints);

    // Stable three-way partition of both sorted views.
    let (here_lo, left_lo, right_lo) = split_three(by_lo, center);
    let (here_hi, left_hi, right_hi) = split_three(by_hi, center);
    debug_assert!(
        !here_lo.is_empty(),
        "median endpoint must stab at least one interval"
    );
    debug_assert_eq!(here_lo.len(), here_hi.len());

    // Materialize this node before recursing; `all_*` is exactly the
    // concatenation of the three parts in list order, which we rebuild
    // cheaply to hand the factory contiguous slices.
    let mut all_lo = Vec::with_capacity(left_lo.len() + here_lo.len() + right_lo.len());
    merge_sorted_lo(&left_lo, &here_lo, &right_lo, &mut all_lo);
    let mut all_hi = Vec::with_capacity(all_lo.len());
    merge_sorted_hi(&left_hi, &here_hi, &right_hi, &mut all_hi);

    let node = factory.make(center, &here_lo, &here_hi, &all_lo, &all_hi);
    drop(all_lo);
    drop(all_hi);
    let idx = nodes.len() as u32;
    nodes.push(node);

    let left = build_node(factory, left_lo, left_hi, depth + 1, nodes, height);
    let right = build_node(factory, right_lo, right_hi, depth + 1, nodes, height);
    F::set_children(&mut nodes[idx as usize], left, right);
    idx
}

/// (stabbed by center, strictly left, strictly right) partition of a list.
type ThreeWay<E> = (Vec<BuildEntry<E>>, Vec<BuildEntry<E>>, Vec<BuildEntry<E>>);

/// Stable split of `items` into (stabbed by center, strictly left,
/// strictly right).
fn split_three<E: Endpoint>(items: Vec<BuildEntry<E>>, center: E) -> ThreeWay<E> {
    let mut here = Vec::new();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for e in items {
        if e.iv.hi < center {
            left.push(e);
        } else if e.iv.lo > center {
            right.push(e);
        } else {
            here.push(e);
        }
    }
    (here, left, right)
}

/// Three-way merge of lists individually sorted by `(iv.lo, id)`.
fn merge_sorted_lo<E: Endpoint>(
    a: &[BuildEntry<E>],
    b: &[BuildEntry<E>],
    c: &[BuildEntry<E>],
    out: &mut Vec<BuildEntry<E>>,
) {
    merge_by(a, b, c, out, |e| (e.iv.lo, e.id));
}

/// Three-way merge of lists individually sorted by `(iv.hi, id)`.
fn merge_sorted_hi<E: Endpoint>(
    a: &[BuildEntry<E>],
    b: &[BuildEntry<E>],
    c: &[BuildEntry<E>],
    out: &mut Vec<BuildEntry<E>>,
) {
    merge_by(a, b, c, out, |e| (e.iv.hi, e.id));
}

fn merge_by<E: Endpoint, K: Ord>(
    a: &[BuildEntry<E>],
    b: &[BuildEntry<E>],
    c: &[BuildEntry<E>],
    out: &mut Vec<BuildEntry<E>>,
    key: impl Fn(&BuildEntry<E>) -> K,
) {
    let (mut i, mut j, mut k) = (0, 0, 0);
    loop {
        let ka = a.get(i).map(&key);
        let kb = b.get(j).map(&key);
        let kc = c.get(k).map(&key);
        // Pick the smallest present key; `None` sorts last via this match.
        match (&ka, &kb, &kc) {
            (None, None, None) => break,
            _ => {
                let pick_a =
                    ka.is_some() && (kb.is_none() || ka <= kb) && (kc.is_none() || ka <= kc);
                if pick_a {
                    out.push(a[i]);
                    i += 1;
                } else if kb.is_some() && (kc.is_none() || kb <= kc) {
                    out.push(b[j]);
                    j += 1;
                } else {
                    out.push(c[k]);
                    k += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn be(lo: i64, hi: i64, id: ItemId) -> BuildEntry<i64> {
        BuildEntry {
            iv: Interval::new(lo, hi),
            id,
            w: 1.0,
        }
    }

    /// Minimal factory that keeps the raw slices for inspection.
    struct Probe;
    struct ProbeNode {
        center: i64,
        here: usize,
        all_lo: Vec<(i64, ItemId)>,
        all_hi: Vec<(i64, ItemId)>,
        left: u32,
        right: u32,
    }
    impl NodeFactory<i64> for Probe {
        type Node = ProbeNode;
        fn make(
            &self,
            center: i64,
            here_lo: &[BuildEntry<i64>],
            here_hi: &[BuildEntry<i64>],
            all_lo: &[BuildEntry<i64>],
            all_hi: &[BuildEntry<i64>],
        ) -> ProbeNode {
            assert_eq!(here_lo.len(), here_hi.len());
            ProbeNode {
                center,
                here: here_lo.len(),
                all_lo: all_lo.iter().map(|e| (e.iv.lo, e.id)).collect(),
                all_hi: all_hi.iter().map(|e| (e.iv.hi, e.id)).collect(),
                left: NIL,
                right: NIL,
            }
        }
        fn set_children(node: &mut ProbeNode, left: u32, right: u32) {
            node.left = left;
            node.right = right;
        }
    }

    #[test]
    fn empty_build() {
        let t = build_tree(&Probe, Vec::<BuildEntry<i64>>::new());
        assert_eq!(t.root, NIL);
        assert_eq!(t.height, 0);
        assert!(t.nodes.is_empty());
    }

    #[test]
    fn augmented_lists_are_sorted_and_complete() {
        let entries: Vec<_> = (0..200)
            .map(|i| be(i % 37, i % 37 + (i % 11), i as u32))
            .collect();
        let t = build_tree(&Probe, entries.clone());
        let root = &t.nodes[t.root as usize];
        assert_eq!(root.all_lo.len(), entries.len());
        assert!(
            root.all_lo.windows(2).all(|w| w[0].0 <= w[1].0),
            "ALl not sorted"
        );
        assert!(
            root.all_hi.windows(2).all(|w| w[0].0 <= w[1].0),
            "ALr not sorted"
        );
        // Every node: here count ≥ 1, subtree list sizes consistent.
        let mut total_here = 0;
        for node in &t.nodes {
            assert!(node.here >= 1);
            assert_eq!(node.all_lo.len(), node.all_hi.len());
            total_here += node.here;
        }
        assert_eq!(total_here, entries.len());
    }

    #[test]
    fn height_stays_logarithmic() {
        let entries: Vec<_> = (0..10_000)
            .map(|i| be(i * 3, i * 3 + 1, i as u32))
            .collect();
        let t = build_tree(&Probe, entries);
        assert!(
            t.height <= 18,
            "height {} for 10k disjoint intervals",
            t.height
        );
    }

    #[test]
    fn children_partition_strictly() {
        let entries: Vec<_> = (0..500)
            .map(|i| be((i * 7) % 100, (i * 7) % 100 + (i % 13), i as u32))
            .collect();
        let t = build_tree(&Probe, entries);
        for node in &t.nodes {
            if node.left != NIL {
                let l = &t.nodes[node.left as usize];
                assert!(
                    l.all_hi.last().unwrap().0 < node.center,
                    "left child leaks over center"
                );
            }
            if node.right != NIL {
                let r = &t.nodes[node.right as usize];
                assert!(
                    r.all_lo.first().unwrap().0 > node.center,
                    "right child leaks over center"
                );
            }
        }
    }
}
