//! The Augmented Interval Tree and Algorithm 1 (§III-A, §III-B).

use crate::build::{build_tree, key_layout, BuildEntry, Key, NodeFactory, NIL};
use crate::records::{ListKind, NodeRecord};
use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSampler, RangeSearch,
};
use irs_sampling::{prefetch_read, AliasTable, Eytzinger};

/// One AIT node: the interval-tree lists (`Ll`, `Lr`) plus the augmented
/// subtree lists (`ALl`, `ALr`). Lists store `(endpoint, id)` pairs — each
/// query case compares exactly one endpoint, so storing whole intervals
/// would double the footprint for nothing.
#[derive(Debug, Clone)]
pub(crate) struct AitNode<E> {
    pub center: E,
    /// `Ll`: intervals stabbed by `center`, sorted by left endpoint.
    pub l_lo: Vec<Key<E>>,
    /// `Lr`: the same intervals, sorted by right endpoint.
    pub l_hi: Vec<Key<E>>,
    /// `ALl`: *all* intervals of this subtree, sorted by left endpoint.
    pub al_lo: Vec<Key<E>>,
    /// `ALr`: all subtree intervals, sorted by right endpoint.
    pub al_hi: Vec<Key<E>>,
    pub left: u32,
    pub right: u32,
}

impl<E: Endpoint> AitNode<E> {
    pub(crate) fn list(&self, kind: ListKind) -> &[Key<E>] {
        match kind {
            ListKind::Lo => &self.l_lo,
            ListKind::Hi => &self.l_hi,
            ListKind::AllHi => &self.al_hi,
            ListKind::AllLo => &self.al_lo,
        }
    }
}

/// Derived, never-serialized hot-path companion of one [`AitNode`]: the
/// descent-critical fields (split key, child links) at the front of a
/// 64-byte-aligned struct, followed by Eytzinger layouts of the four
/// endpoint lists. Index-aligned with `Ait::nodes`; rebuilt wholesale
/// by [`Ait::finalize`] and per touched node by [`Ait::refresh_hot`]
/// after mutations (see DESIGN.md, "Hot-path memory layout").
#[derive(Debug, Clone)]
#[repr(align(64))]
pub(crate) struct AitHot<E> {
    pub(crate) center: E,
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) ey_l_lo: Eytzinger<E>,
    pub(crate) ey_l_hi: Eytzinger<E>,
    pub(crate) ey_al_lo: Eytzinger<E>,
    pub(crate) ey_al_hi: Eytzinger<E>,
}

impl<E: Endpoint> AitHot<E> {
    pub(crate) fn of(node: &AitNode<E>) -> Self {
        AitHot {
            center: node.center,
            left: node.left,
            right: node.right,
            ey_l_lo: key_layout(&node.l_lo),
            ey_l_hi: key_layout(&node.l_hi),
            ey_al_lo: key_layout(&node.al_lo),
            ey_al_hi: key_layout(&node.al_hi),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.ey_l_lo.heap_bytes()
            + self.ey_l_hi.heap_bytes()
            + self.ey_al_lo.heap_bytes()
            + self.ey_al_hi.heap_bytes()
    }
}

pub(crate) struct AitFactory;

impl<E: Endpoint> NodeFactory<E> for AitFactory {
    type Node = AitNode<E>;

    fn make(
        &self,
        center: E,
        here_lo: &[BuildEntry<E>],
        here_hi: &[BuildEntry<E>],
        all_lo: &[BuildEntry<E>],
        all_hi: &[BuildEntry<E>],
    ) -> AitNode<E> {
        AitNode {
            center,
            l_lo: here_lo
                .iter()
                .map(|e| Key {
                    key: e.iv.lo,
                    id: e.id,
                })
                .collect(),
            l_hi: here_hi
                .iter()
                .map(|e| Key {
                    key: e.iv.hi,
                    id: e.id,
                })
                .collect(),
            al_lo: all_lo
                .iter()
                .map(|e| Key {
                    key: e.iv.lo,
                    id: e.id,
                })
                .collect(),
            al_hi: all_hi
                .iter()
                .map(|e| Key {
                    key: e.iv.hi,
                    id: e.id,
                })
                .collect(),
            left: NIL,
            right: NIL,
        }
    }

    fn set_children(node: &mut AitNode<E>, left: u32, right: u32) {
        node.left = left;
        node.right = right;
    }
}

/// The Augmented Interval Tree (AIT) of §III.
///
/// Exact independent range sampling in `O(log² n + s)`, range counting in
/// `O(log² n)`, `O(n log n)` space. Supports insertions (one-by-one or
/// batched through an insertion pool) and deletions per §III-D.
///
/// ```
/// use irs_ait::Ait;
/// use irs_core::{Interval, RangeSampler, RangeCount};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data: Vec<_> = (0..1000).map(|i| Interval::new(i, i + 50)).collect();
/// let ait = Ait::new(&data);
/// let q = Interval::new(200, 240);
/// let mut rng = StdRng::seed_from_u64(1);
/// let samples = ait.sample(q, 10, &mut rng);
/// assert_eq!(samples.len(), 10);
/// assert_eq!(ait.range_count(q), 91);
/// ```
#[derive(Debug)]
pub struct Ait<E> {
    pub(crate) nodes: Vec<AitNode<E>>,
    pub(crate) root: u32,
    /// Number of live intervals (tree + pool).
    pub(crate) len: usize,
    pub(crate) height: usize,
    pub(crate) next_id: ItemId,
    /// Insertion pool for batched updates (§III-D); scanned linearly by
    /// queries until flushed.
    pub(crate) pool: Vec<(Interval<E>, ItemId)>,
    pub(crate) pool_capacity: usize,
    /// Derived descent arena, index-aligned with `nodes`. Never
    /// serialized; constructors and decode paths call [`Ait::finalize`],
    /// mutation paths call [`Ait::refresh_hot`] per touched node.
    pub(crate) hot: Vec<AitHot<E>>,
}

impl<E: Endpoint> Ait<E> {
    /// Builds the AIT over `data` in `O(n log n)`.
    pub fn new(data: &[Interval<E>]) -> Self {
        let entries: Vec<BuildEntry<E>> = data
            .iter()
            .enumerate()
            .map(|(i, &iv)| BuildEntry {
                iv,
                id: i as ItemId,
                w: 1.0,
            })
            .collect();
        Self::from_entries(entries, data.len() as ItemId)
    }

    pub(crate) fn from_entries(entries: Vec<BuildEntry<E>>, next_id: ItemId) -> Self {
        let len = entries.len();
        let built = build_tree(&AitFactory, entries);
        let pool_capacity = Self::pool_capacity_for(len);
        let mut ait = Ait {
            nodes: built.nodes,
            root: built.root,
            len,
            height: built.height,
            next_id,
            pool: Vec::new(),
            pool_capacity,
            hot: Vec::new(),
        };
        ait.finalize();
        ait
    }

    /// Rebuilds the derived hot-path state from the authority node
    /// arrays. `O(n log n)`; called at construction and snapshot decode.
    pub(crate) fn finalize(&mut self) {
        self.hot = self.nodes.iter().map(AitHot::of).collect();
    }

    /// Re-derives the hot entry of one node after its lists or links
    /// changed. Costs the size of the node's lists — the same order as
    /// the sorted `Vec` churn the mutation itself already paid.
    pub(crate) fn refresh_hot(&mut self, at: u32) {
        self.hot[at as usize] = AitHot::of(&self.nodes[at as usize]);
    }

    pub(crate) fn pool_capacity_for(n: usize) -> usize {
        let lg = (n.max(2) as f64).log2().ceil() as usize;
        (lg * lg).max(16)
    }

    /// Number of intervals indexed (including any still in the pool).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Core of Algorithm 1 (lines 1–21): walks at most one root-to-leaf
    /// path, running one binary search per visited node, and stops the
    /// first time the query interval stabs a center (case 3) — where the
    /// two children's augmented lists finish the job. Produces the record
    /// set `R` in `O(log² n)`.
    ///
    /// Pool entries (batched insertions not yet merged) are scanned
    /// linearly and reported through `pool_matches`.
    pub(crate) fn collect_records(
        &self,
        q: Interval<E>,
        records: &mut Vec<NodeRecord>,
        pool_matches: &mut Vec<ItemId>,
    ) {
        for (iv, id) in &self.pool {
            if iv.overlaps(&q) {
                pool_matches.push(*id);
            }
        }
        let hot = self.hot.as_slice();
        debug_assert_eq!(hot.len(), self.nodes.len());
        let mut at = self.root;
        while at != NIL {
            let node = &hot[at as usize];
            // Pull the next level toward L1 while this node's binary
            // search runs — whichever way the case split goes, the child
            // header is resident by the time the descent arrives.
            if node.left != NIL {
                prefetch_read(&hot[node.left as usize]);
            }
            if node.right != NIL {
                prefetch_read(&hot[node.right as usize]);
            }
            if q.hi < node.center {
                // Case 1: q lies left of the center. Ll[0..j) overlaps.
                let j = node.ey_l_lo.partition_point(|&k| k <= q.hi);
                if j >= 1 {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (j - 1) as u32,
                    });
                }
                at = node.left;
            } else if node.center < q.lo {
                // Case 2: q lies right of the center. Lr[j..] overlaps.
                let j = node.ey_l_hi.partition_point(|&k| k < q.lo);
                if j < node.ey_l_hi.len() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Hi,
                        start: j as u32,
                        end: (node.ey_l_hi.len() - 1) as u32,
                    });
                }
                at = node.right;
            } else {
                // Case 3: q stabs the center — all of Ll overlaps, and the
                // children's augmented lists cover both whole subtrees, so
                // no further descent is ever needed (the key AIT property).
                if !node.ey_l_lo.is_empty() {
                    records.push(NodeRecord {
                        node: at,
                        kind: ListKind::Lo,
                        start: 0,
                        end: (node.ey_l_lo.len() - 1) as u32,
                    });
                }
                if node.left != NIL {
                    let child = &hot[node.left as usize];
                    let j = child.ey_al_hi.partition_point(|&k| k < q.lo);
                    if j < child.ey_al_hi.len() {
                        records.push(NodeRecord {
                            node: node.left,
                            kind: ListKind::AllHi,
                            start: j as u32,
                            end: (child.ey_al_hi.len() - 1) as u32,
                        });
                    }
                }
                if node.right != NIL {
                    let child = &hot[node.right as usize];
                    let j = child.ey_al_lo.partition_point(|&k| k <= q.hi);
                    if j >= 1 {
                        records.push(NodeRecord {
                            node: node.right,
                            kind: ListKind::AllLo,
                            start: 0,
                            end: (j - 1) as u32,
                        });
                    }
                }
                break;
            }
        }
    }

    /// Structural invariant checker used by tests and debug assertions.
    ///
    /// Verifies, for every node: list sortedness, `Ll`/`Lr` id agreement,
    /// `AL` = union of subtree `L`s, center stabbing, and the strict
    /// left/right separation of children.
    pub fn validate(&self) -> Result<(), String> {
        fn ids_sorted<E: Endpoint>(list: &[Key<E>]) -> Vec<ItemId> {
            let mut ids: Vec<ItemId> = list.iter().map(|k| k.id).collect();
            ids.sort_unstable();
            ids
        }
        fn walk<E: Endpoint>(ait: &Ait<E>, at: u32) -> Result<Vec<ItemId>, String> {
            if at == NIL {
                return Ok(Vec::new());
            }
            let node = &ait.nodes[at as usize];
            for (name, list) in [
                ("Ll", &node.l_lo),
                ("Lr", &node.l_hi),
                ("ALl", &node.al_lo),
                ("ALr", &node.al_hi),
            ] {
                if !list.windows(2).all(|w| w[0].key <= w[1].key) {
                    return Err(format!("node {at}: {name} not sorted"));
                }
            }
            if ids_sorted(&node.l_lo) != ids_sorted(&node.l_hi) {
                return Err(format!("node {at}: Ll/Lr id mismatch"));
            }
            if node.l_lo.iter().any(|k| k.key > node.center) {
                return Err(format!("node {at}: Ll entry starts after center"));
            }
            if node.l_hi.iter().any(|k| k.key < node.center) {
                return Err(format!("node {at}: Lr entry ends before center"));
            }
            if node.left != NIL {
                let child = &ait.nodes[node.left as usize];
                if child.al_hi.last().is_some_and(|k| k.key >= node.center) {
                    return Err(format!("node {at}: left subtree crosses center"));
                }
            }
            if node.right != NIL {
                let child = &ait.nodes[node.right as usize];
                if child.al_lo.first().is_some_and(|k| k.key <= node.center) {
                    return Err(format!("node {at}: right subtree crosses center"));
                }
            }
            let mut subtree = ids_sorted(&node.l_lo);
            subtree.extend(walk(ait, node.left)?);
            subtree.extend(walk(ait, node.right)?);
            subtree.sort_unstable();
            if subtree != ids_sorted(&node.al_lo) || subtree != ids_sorted(&node.al_hi) {
                return Err(format!(
                    "node {at}: AL lists disagree with subtree contents"
                ));
            }
            Ok(subtree)
        }
        // Derived-state coherence: the hot arena must mirror the
        // authority arrays exactly, or searches would silently drift.
        if self.hot.len() != self.nodes.len() {
            return Err(format!(
                "hot arena size {} != node arena size {}",
                self.hot.len(),
                self.nodes.len()
            ));
        }
        for (at, (node, hot)) in self.nodes.iter().zip(&self.hot).enumerate() {
            if hot.center != node.center || hot.left != node.left || hot.right != node.right {
                return Err(format!("node {at}: hot header is stale"));
            }
            if hot.ey_l_lo.len() != node.l_lo.len()
                || hot.ey_l_hi.len() != node.l_hi.len()
                || hot.ey_al_lo.len() != node.al_lo.len()
                || hot.ey_al_hi.len() != node.al_hi.len()
            {
                return Err(format!("node {at}: hot layout lengths are stale"));
            }
        }
        let all = walk(self, self.root)?;
        if all.len() + self.pool.len() != self.len {
            return Err(format!(
                "size mismatch: tree {} + pool {} != len {}",
                all.len(),
                self.pool.len(),
                self.len
            ));
        }
        Ok(())
    }
}

impl<E: Endpoint> RangeSearch<E> for Ait<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        let mut records = Vec::new();
        let mut pool_matches = Vec::new();
        self.collect_records(q, &mut records, &mut pool_matches);
        for rec in &records {
            let list = self.nodes[rec.node as usize].list(rec.kind);
            out.extend(
                list[rec.start as usize..=rec.end as usize]
                    .iter()
                    .map(|k| k.id),
            );
        }
        out.extend_from_slice(&pool_matches);
    }
}

impl<E: Endpoint> RangeCount<E> for Ait<E> {
    /// Range counting in `O(log² n)` (Corollary 1): `|q ∩ X|` is the sum of
    /// record lengths — the record set partitions the result set exactly.
    fn range_count(&self, q: Interval<E>) -> usize {
        let mut records = Vec::new();
        let mut pool_matches = Vec::new();
        self.collect_records(q, &mut records, &mut pool_matches);
        records.iter().map(NodeRecord::len).sum::<usize>() + pool_matches.len()
    }
}

/// How many draws each batched sampling pass resolves at once (matches
/// the AWIT's chunk; see `awit.rs`).
const DRAW_CHUNK: usize = 64;

/// Phase-2 handle of the AIT: the record set `R` plus any pool matches.
/// Sampling builds a Walker alias over record sizes (`O(log n)`) and then
/// draws each sample in `O(1)`. `runs` resolves each record to its list
/// slice once, so a draw is a uniform pick into a slice instead of a
/// node dereference plus `ListKind` dispatch.
pub struct AitPrepared<'a, E> {
    records: Vec<NodeRecord>,
    pool_matches: Vec<ItemId>,
    runs: Vec<&'a [Key<E>]>,
}

impl<'a, E: Endpoint> AitPrepared<'a, E> {
    /// The node records computed by Algorithm 1 (exposed for inspection
    /// and white-box tests).
    pub fn records(&self) -> &[NodeRecord] {
        &self.records
    }
}

impl<E: Endpoint> PreparedSampler for AitPrepared<'_, E> {
    fn candidate_count(&self) -> usize {
        self.records.iter().map(NodeRecord::len).sum::<usize>() + self.pool_matches.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        let n_rec = self.records.len();
        let n_pool = self.pool_matches.len();
        if n_rec + n_pool == 0 {
            return;
        }
        // Record weight = run length; pool entries weigh 1 each, giving
        // every interval in q ∩ X identical mass (Theorem 3).
        let mut weights = Vec::with_capacity(n_rec + n_pool);
        weights.extend(self.records.iter().map(|r| r.len() as f64));
        weights.extend(std::iter::repeat_n(1.0, n_pool));
        let alias = AliasTable::new(&weights);
        // Chunked three-pass draws: all record choices first (the alias
        // cells stay hot), then every in-record offset (issuing a gather
        // prefetch of the chosen key), then the id gather over lines the
        // prefetch already pulled in. Pool picks need no offset draw.
        out.reserve(s);
        let mut ks = [0u32; DRAW_CHUNK];
        let mut offs = [0u32; DRAW_CHUNK];
        let mut done = 0usize;
        while done < s {
            let c = (s - done).min(DRAW_CHUNK);
            alias.sample_fill(rng, &mut ks[..c]);
            for (&k, slot) in ks[..c].iter().zip(&mut offs) {
                if (k as usize) < n_rec {
                    let run = self.runs[k as usize];
                    let offset = rand::Rng::random_range(&mut *rng, 0..run.len());
                    prefetch_read(&run[offset]);
                    *slot = offset as u32;
                }
            }
            for (&k, &offset) in ks[..c].iter().zip(offs.iter()) {
                let k = k as usize;
                if k < n_rec {
                    out.push(self.runs[k][offset as usize].id);
                } else {
                    out.push(self.pool_matches[k - n_rec]);
                }
            }
            done += c;
        }
    }
}

impl<E: Endpoint> Ait<E> {
    /// Draws `min(s, |q ∩ X|)` *distinct* intervals uniformly at random —
    /// sampling without replacement (a convenience beyond the paper's
    /// Problem 1, which samples with replacement).
    ///
    /// For `s` well below `|q ∩ X|` this rejects duplicates in
    /// `O(log² n + s)` expected; once `s` approaches the result size it
    /// switches to enumerating `q ∩ X` and taking a partial
    /// Fisher–Yates shuffle, so the worst case is `O(log² n + |q ∩ X|)`.
    pub fn sample_distinct<R: rand::RngCore + ?Sized>(
        &self,
        q: Interval<E>,
        s: usize,
        rng: &mut R,
    ) -> Vec<ItemId> {
        let prepared = self.prepare(q);
        let total = prepared.candidate_count();
        let want = s.min(total);
        if want == 0 {
            return Vec::new();
        }
        // Rejection is cheap while the hit rate stays high; the 2×
        // threshold keeps the expected number of redraws below 2 per
        // accepted sample.
        if want * 2 <= total {
            let mut seen = std::collections::HashSet::with_capacity(want * 2);
            let mut out = Vec::with_capacity(want);
            let mut scratch = Vec::with_capacity(1);
            while out.len() < want {
                scratch.clear();
                prepared.sample_into(rng, 1, &mut scratch);
                let id = scratch[0];
                if seen.insert(id) {
                    out.push(id);
                }
            }
            out
        } else {
            let mut all = self.range_search(q);
            // Partial Fisher–Yates: the first `want` positions become a
            // uniform random `want`-subset in random order.
            for i in 0..want {
                let j = rand::Rng::random_range(&mut *rng, i..all.len());
                all.swap(i, j);
            }
            all.truncate(want);
            all
        }
    }
}

impl<E: Endpoint> RangeSampler<E> for Ait<E> {
    type Prepared<'a> = AitPrepared<'a, E>;

    fn prepare(&self, q: Interval<E>) -> AitPrepared<'_, E> {
        let mut records = Vec::new();
        let mut pool_matches = Vec::new();
        self.collect_records(q, &mut records, &mut pool_matches);
        let runs = records
            .iter()
            .map(|rec| {
                let list = self.nodes[rec.node as usize].list(rec.kind);
                &list[rec.start as usize..=rec.end as usize]
            })
            .collect();
        AitPrepared {
            records,
            pool_matches,
            runs,
        }
    }
}

impl<E: Endpoint> irs_core::StabbingQuery<E> for Ait<E> {
    /// Stabbing as a degenerate range query (`q.lo = q.hi = p`), answered
    /// in `O(log² n + K)` — the interval tree's native `O(log n + K)`
    /// operator, with the extra log factor from the per-node binary
    /// searches.
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        self.range_search_into(Interval::point(p), out);
    }
}

impl<E: Endpoint> MemoryFootprint for Ait<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<AitNode<E>>();
        for node in &self.nodes {
            bytes += vec_bytes(&node.l_lo)
                + vec_bytes(&node.l_hi)
                + vec_bytes(&node.al_lo)
                + vec_bytes(&node.al_hi);
        }
        bytes += self.hot.capacity() * std::mem::size_of::<AitHot<E>>();
        for hot in &self.hot {
            bytes += hot.heap_bytes();
        }
        bytes + vec_bytes(&self.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    fn paper_fixture() -> Vec<Interval<i64>> {
        // Mirrors the flavor of Fig. 2: a mix of nested, disjoint, and
        // chained intervals.
        vec![
            iv(40, 60), // x1: stabs the root region
            iv(5, 15),  // x2
            iv(55, 85), // x3
            iv(18, 28), // x4
            iv(62, 78), // x5
            iv(35, 47), // x6
            iv(88, 95), // x7
            iv(1, 3),   // x8
            iv(30, 32), // x9
            iv(50, 52), // x10
            iv(97, 99), // x11
        ]
    }

    #[test]
    fn empty_ait() {
        let ait = Ait::<i64>::new(&[]);
        assert!(ait.is_empty());
        assert_eq!(ait.height(), 0);
        assert_eq!(ait.range_count(iv(0, 100)), 0);
        assert!(ait.range_search(iv(0, 100)).is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ait.sample(iv(0, 100), 10, &mut rng).is_empty());
        ait.validate().unwrap();
    }

    #[test]
    fn fixture_search_and_count_match_oracle() {
        let data = paper_fixture();
        let ait = Ait::new(&data);
        ait.validate().unwrap();
        let bf = BruteForce::new(&data);
        for q in [
            iv(45, 58),
            iv(0, 100),
            iv(16, 17),
            iv(3, 5),
            iv(85, 88),
            iv(99, 120),
            iv(-10, 0),
            iv(47, 47),
        ] {
            assert_eq!(
                sorted(ait.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
            assert_eq!(ait.range_count(q), bf.range_count(q), "count {q:?}");
        }
    }

    #[test]
    fn case3_triggers_at_most_one_fork() {
        // A query covering everything must still produce only O(log n)
        // records: one per path node plus at most two AL records.
        let data: Vec<_> = (0..1024).map(|i| iv(i * 10, i * 10 + 5)).collect();
        let ait = Ait::new(&data);
        let prepared = ait.prepare(iv(-100, 20_000));
        let height = ait.height();
        assert!(
            prepared.records().len() <= height + 2,
            "{} records for height {height}",
            prepared.records().len()
        );
        // All 1024 intervals accounted for.
        assert_eq!(prepared.candidate_count(), 1024);
    }

    #[test]
    fn records_partition_result_set() {
        let data = paper_fixture();
        let ait = Ait::new(&data);
        for q in [iv(45, 58), iv(0, 100), iv(20, 70), iv(50, 50)] {
            let ids = ait.range_search(q);
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "records overlap for {q:?}");
        }
    }

    #[test]
    fn sampling_is_uniform_chi_square() {
        let data: Vec<_> = (0..60).map(|i| iv(i, i + 30)).collect();
        let ait = Ait::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(25, 40);
        let support = sorted(bf.range_search(q));
        assert!(!support.is_empty());
        let mut rng = StdRng::seed_from_u64(77);
        let draws = 200_000usize;
        let mut counts = vec![0u64; support.len()];
        let samples = ait.sample(q, draws, &mut rng);
        assert_eq!(samples.len(), draws);
        for id in samples {
            let pos = irs_sampling::stats::expect_in_support(&support, &id);
            counts[pos] += 1;
        }
        assert!(
            irs_sampling::stats::chi_square_uniformity_ok(&counts, draws as u64),
            "AIT sampling not uniform: {counts:?}"
        );
    }

    #[test]
    fn stabbing_style_queries_work() {
        let data = paper_fixture();
        let ait = Ait::new(&data);
        let bf = BruteForce::new(&data);
        for p in [-5, 1, 15, 40, 50, 60, 99, 150] {
            let q = iv(p, p);
            assert_eq!(
                sorted(ait.range_search(q)),
                sorted(bf.range_search(q)),
                "stab {p}"
            );
        }
    }

    #[test]
    fn identical_intervals() {
        let data = vec![iv(10, 20); 33];
        let ait = Ait::new(&data);
        ait.validate().unwrap();
        assert_eq!(ait.range_count(iv(15, 15)), 33);
        assert_eq!(ait.range_count(iv(21, 30)), 0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = ait.sample(iv(0, 100), 100, &mut rng);
        assert_eq!(samples.len(), 100);
    }

    #[test]
    fn footprint_superlinear_in_n() {
        let small: Vec<_> = (0..1_000).map(|i| iv(i, i + 2)).collect();
        let big: Vec<_> = (0..10_000).map(|i| iv(i, i + 2)).collect();
        let fs = Ait::new(&small).heap_bytes();
        let fb = Ait::new(&big).heap_bytes();
        // AL lists replicate each interval once per level: expect clearly
        // more than 10x growth for 10x data.
        assert!(fb > fs * 10, "footprint {fs} -> {fb} not superlinear");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_search_count_match_oracle(
            raw in prop::collection::vec((0i64..1000, 0i64..120), 1..250),
            queries in prop::collection::vec((-50i64..1200, 0i64..300), 16),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let ait = Ait::new(&data);
            ait.validate().unwrap();
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(ait.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(ait.range_count(q), bf.range_count(q));
            }
        }

        #[test]
        fn prop_records_are_within_log_bound(
            raw in prop::collection::vec((0i64..5000, 0i64..500), 2..400),
            q_lo in 0i64..5000,
            q_len in 0i64..2000,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let ait = Ait::new(&data);
            let prepared = ait.prepare(iv(q_lo, q_lo + q_len));
            // ≤ height records on the path + 2 AL records at the fork.
            prop_assert!(prepared.records().len() <= ait.height() + 2);
        }
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use irs_core::{BruteForce, RangeSearch};
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    #[test]
    fn distinct_samples_have_no_duplicates() {
        let data: Vec<_> = (0..500).map(|i| iv(i, i + 60)).collect();
        let ait = Ait::new(&data);
        let mut rng = StdRng::seed_from_u64(11);
        let q = iv(200, 260);
        for s in [1, 10, 50, 100] {
            let out = ait.sample_distinct(q, s, &mut rng);
            assert_eq!(out.len(), s);
            let mut dedup = out.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), s, "duplicates at s = {s}");
        }
    }

    #[test]
    fn distinct_caps_at_result_size() {
        let data: Vec<_> = (0..30).map(|i| iv(i, i + 5)).collect();
        let ait = Ait::new(&data);
        let bf = BruteForce::new(&data);
        let mut rng = StdRng::seed_from_u64(12);
        let q = iv(10, 12);
        let support = {
            let mut v = bf.range_search(q);
            v.sort_unstable();
            v
        };
        // Ask for far more than available: get exactly the result set.
        let mut out = ait.sample_distinct(q, 1000, &mut rng);
        out.sort_unstable();
        assert_eq!(out, support);
        // Empty query → empty sample.
        assert!(ait.sample_distinct(iv(-100, -50), 5, &mut rng).is_empty());
    }

    #[test]
    fn distinct_subset_is_uniform_over_candidates() {
        // Every candidate should be selected with probability want/total;
        // check the marginal inclusion frequencies.
        let data: Vec<_> = (0..40).map(|i| iv(0, 100 + i)).collect();
        let ait = Ait::new(&data);
        let mut rng = StdRng::seed_from_u64(13);
        let q = iv(50, 60);
        let trials = 20_000;
        let want = 10; // of 40 → inclusion probability 0.25
        let mut counts = vec![0u64; 40];
        for _ in 0..trials {
            for id in ait.sample_distinct(q, want, &mut rng) {
                counts[id as usize] += 1;
            }
        }
        let expected = trials as f64 * want as f64 / 40.0;
        for (id, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "id {id}: {c} vs expected {expected}");
        }
    }
}
