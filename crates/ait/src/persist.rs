//! On-disk codecs for the AIT family ([`Ait`], [`AitV`], [`Awit`],
//! [`DynamicAwit`]).
//!
//! Each structure serializes its *built* state — node arenas, sorted
//! lists, cumulative-weight arrays, and the mutable bookkeeping
//! ([`Ait`]'s insertion pool, [`DynamicAwit`]'s pool/tombstone layer and
//! id allocator) — so a decoded index is byte-equivalent to the saved
//! one: identical record sets, identical alias tables, identical draws
//! from an identical RNG stream, and stable ids that survive the
//! restart. The exact layouts are specified in `DESIGN.md`, "On-disk
//! snapshot format"; changing any of them requires a
//! [`irs_core::persist::FORMAT_VERSION`] bump.
//!
//! Decoding trusts nothing: framing and CRC are checked by the caller
//! ([`irs_core::persist::read_section`]), and the impls here re-validate
//! the structural invariants that keep queries panic-free (child
//! indexes in range, tombstones resident, aligned list/prefix lengths).

use crate::ait::{Ait, AitNode};
use crate::aitv::AitV;
use crate::awit::{Awit, AwitNode};
use crate::build::Key;
use crate::dynamic_awit::DynamicAwit;
use irs_core::persist::{check_arena_link as check_link, Codec, PersistError, Reader};
use irs_core::{Endpoint, Interval, ItemId};

/// Whether every id stored in the tree's four lists (and, for the AIT,
/// its pool) is below `bound` — used where a structure's ids index into
/// a sibling table, so a corrupt id would panic at query time. All four
/// lists are scanned: records can be served from any of them.
fn ait_ids_below<E: Endpoint>(ait: &Ait<E>, bound: usize) -> bool {
    let ok = |k: &Key<E>| (k.id as usize) < bound;
    ait.nodes.iter().all(|n| {
        n.l_lo.iter().all(ok)
            && n.l_hi.iter().all(ok)
            && n.al_lo.iter().all(ok)
            && n.al_hi.iter().all(ok)
    }) && ait.pool.iter().all(|&(_, id)| (id as usize) < bound)
}

/// [`ait_ids_below`] for the AWIT's node lists.
fn awit_ids_below<E: Endpoint>(awit: &Awit<E>, bound: usize) -> bool {
    let ok = |k: &Key<E>| (k.id as usize) < bound;
    awit.nodes.iter().all(|n| {
        n.l_lo.iter().all(ok)
            && n.l_hi.iter().all(ok)
            && n.al_lo.iter().all(ok)
            && n.al_hi.iter().all(ok)
    })
}

impl<E: Endpoint + Codec> Codec for Key<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.key.encode_into(out);
        self.id.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Key {
            key: E::decode(r)?,
            id: ItemId::decode(r)?,
        })
    }
}

impl<E: Endpoint + Codec> Codec for AitNode<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.center.encode_into(out);
        self.l_lo.encode_into(out);
        self.l_hi.encode_into(out);
        self.al_lo.encode_into(out);
        self.al_hi.encode_into(out);
        self.left.encode_into(out);
        self.right.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let node = AitNode {
            center: E::decode(r)?,
            l_lo: Vec::decode(r)?,
            l_hi: Vec::decode(r)?,
            al_lo: Vec::decode(r)?,
            al_hi: Vec::decode(r)?,
            left: u32::decode(r)?,
            right: u32::decode(r)?,
        };
        if node.l_lo.len() != node.l_hi.len() || node.al_lo.len() != node.al_hi.len() {
            return Err(PersistError::Corrupt {
                what: "AIT node: lo/hi list lengths disagree",
            });
        }
        Ok(node)
    }
}

impl<E: Endpoint + Codec> Codec for Ait<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.nodes.encode_into(out);
        self.root.encode_into(out);
        self.len.encode_into(out);
        self.height.encode_into(out);
        self.next_id.encode_into(out);
        self.pool.encode_into(out);
        self.pool_capacity.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let nodes: Vec<AitNode<E>> = Vec::decode(r)?;
        let root = u32::decode(r)?;
        check_link(root, nodes.len(), "AIT root out of range")?;
        for node in &nodes {
            check_link(node.left, nodes.len(), "AIT child link out of range")?;
            check_link(node.right, nodes.len(), "AIT child link out of range")?;
        }
        let mut ait = Ait {
            nodes,
            root,
            len: usize::decode(r)?,
            height: usize::decode(r)?,
            next_id: ItemId::decode(r)?,
            pool: Vec::decode(r)?,
            pool_capacity: usize::decode(r)?,
            hot: Vec::new(),
        };
        // Hot-path layouts are derived in memory on decode; the snapshot
        // stays layout-independent.
        ait.finalize();
        Ok(ait)
    }
}

impl<E: Endpoint + Codec> Codec for AitV<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.virtual_ait.encode_into(out);
        self.members.encode_into(out);
        self.data.encode_into(out);
        self.bucket_size.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let virtual_ait = Ait::decode(r)?;
        let members: Vec<ItemId> = Vec::decode(r)?;
        let data: Vec<Interval<E>> = Vec::decode(r)?;
        let bucket_size = usize::decode(r)?;
        if bucket_size == 0 {
            return Err(PersistError::Corrupt {
                what: "AIT-V bucket size is zero",
            });
        }
        if members.len() != data.len() || members.iter().any(|&id| id as usize >= data.len()) {
            return Err(PersistError::Corrupt {
                what: "AIT-V member permutation does not match its dataset",
            });
        }
        // Virtual-AIT ids are bucket indices into `members`; sampling
        // slices `members[bucket·size ..]`, so every id must name a
        // real bucket or a draw would panic at query time.
        if !ait_ids_below(&virtual_ait, members.len().div_ceil(bucket_size)) {
            return Err(PersistError::Corrupt {
                what: "AIT-V virtual interval names a bucket out of range",
            });
        }
        Ok(AitV {
            virtual_ait,
            members,
            data,
            bucket_size,
        })
    }
}

impl<E: Endpoint + Codec> Codec for AwitNode<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.center.encode_into(out);
        self.l_lo.encode_into(out);
        self.l_hi.encode_into(out);
        self.al_lo.encode_into(out);
        self.al_hi.encode_into(out);
        self.w_l_lo.encode_into(out);
        self.w_l_hi.encode_into(out);
        self.w_al_lo.encode_into(out);
        self.w_al_hi.encode_into(out);
        self.left.encode_into(out);
        self.right.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let node = AwitNode {
            center: E::decode(r)?,
            l_lo: Vec::decode(r)?,
            l_hi: Vec::decode(r)?,
            al_lo: Vec::decode(r)?,
            al_hi: Vec::decode(r)?,
            w_l_lo: Vec::decode(r)?,
            w_l_hi: Vec::decode(r)?,
            w_al_lo: Vec::decode(r)?,
            w_al_hi: Vec::decode(r)?,
            left: u32::decode(r)?,
            right: u32::decode(r)?,
        };
        if node.l_lo.len() != node.w_l_lo.len()
            || node.l_hi.len() != node.w_l_hi.len()
            || node.al_lo.len() != node.w_al_lo.len()
            || node.al_hi.len() != node.w_al_hi.len()
        {
            return Err(PersistError::Corrupt {
                what: "AWIT node: list and prefix-array lengths disagree",
            });
        }
        Ok(node)
    }
}

impl<E: Endpoint + Codec> Codec for Awit<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.nodes.encode_into(out);
        self.root.encode_into(out);
        self.len.encode_into(out);
        self.height.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let nodes: Vec<AwitNode<E>> = Vec::decode(r)?;
        let root = u32::decode(r)?;
        check_link(root, nodes.len(), "AWIT root out of range")?;
        for node in &nodes {
            check_link(node.left, nodes.len(), "AWIT child link out of range")?;
            check_link(node.right, nodes.len(), "AWIT child link out of range")?;
        }
        let mut awit = Awit {
            nodes,
            root,
            len: usize::decode(r)?,
            height: usize::decode(r)?,
            hot: Vec::new(),
        };
        // Hot-path layouts are derived in memory on decode; the snapshot
        // stays layout-independent.
        awit.finalize();
        Ok(awit)
    }
}

impl<E: Endpoint + Codec> Codec for DynamicAwit<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.awit.encode_into(out);
        self.slot_ids.encode_into(out);
        // HashMaps iterate in arbitrary order; snapshots must be
        // deterministic bytes, so both maps are written sorted by id.
        let mut resident: Vec<(ItemId, (Interval<E>, f64))> =
            self.resident.iter().map(|(&id, &v)| (id, v)).collect();
        resident.sort_unstable_by_key(|&(id, _)| id);
        resident.encode_into(out);
        self.pool.encode_into(out);
        let mut tombstones: Vec<(ItemId, Interval<E>)> =
            self.tombstones.iter().map(|(&id, &iv)| (id, iv)).collect();
        tombstones.sort_unstable_by_key(|&(id, _)| id);
        tombstones.encode_into(out);
        self.next_id.encode_into(out);
        self.update_capacity.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let awit = Awit::decode(r)?;
        let slot_ids: Vec<ItemId> = Vec::decode(r)?;
        let resident_vec: Vec<(ItemId, (Interval<E>, f64))> = Vec::decode(r)?;
        let pool: Vec<(Interval<E>, ItemId, f64)> = Vec::decode(r)?;
        let tombstones_vec: Vec<(ItemId, Interval<E>)> = Vec::decode(r)?;
        let next_id = ItemId::decode(r)?;
        let update_capacity = usize::decode(r)?;

        if slot_ids.len() != awit.len() || slot_ids.len() != resident_vec.len() {
            return Err(PersistError::Corrupt {
                what: "dynamic AWIT: slot table does not match its resident set",
            });
        }
        // AWIT list ids are positions into `slot_ids`; a draw resolves
        // `slot_ids[pos]`, so every stored position must be in range.
        if !awit_ids_below(&awit, slot_ids.len()) {
            return Err(PersistError::Corrupt {
                what: "dynamic AWIT: slot position out of range",
            });
        }
        let resident: std::collections::HashMap<_, _> = resident_vec.into_iter().collect();
        let tombstones: std::collections::HashMap<_, _> = tombstones_vec.into_iter().collect();
        // Sampling rejects tombstoned draws by looking the id up in
        // `resident`; a tombstone outside it would panic at query time.
        if !tombstones.keys().all(|id| resident.contains_key(id)) {
            return Err(PersistError::Corrupt {
                what: "dynamic AWIT: tombstoned id is not resident",
            });
        }
        if !slot_ids.iter().all(|id| resident.contains_key(id)) {
            return Err(PersistError::Corrupt {
                what: "dynamic AWIT: slot id is not resident",
            });
        }
        Ok(DynamicAwit {
            awit,
            slot_ids,
            resident,
            pool,
            tombstones,
            next_id,
            update_capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::{RangeSampler, RangeSearch, WeightedRangeSampler};
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn roundtrip<T: Codec>(value: &T) -> T {
        let mut buf = Vec::new();
        value.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let out = T::decode(&mut r).expect("decode");
        assert!(r.is_empty(), "trailing bytes after decode");
        out
    }

    #[test]
    fn ait_roundtrip_replays_draws_and_keeps_pool() {
        let data: Vec<_> = (0..300).map(|i| iv(i, i + 40)).collect();
        let mut ait = Ait::new(&data);
        // Mutate so the tree shape differs from a fresh build and the
        // pool is non-empty — the codec must carry the *current* state.
        for i in 0..10 {
            ait.insert_buffered(iv(500 + i, 510 + i));
        }
        ait.delete(iv(0, 40), 0);
        let restored = roundtrip(&ait);
        restored.validate().unwrap();
        let q = iv(100, 160);
        assert_eq!(ait.range_search(q), restored.range_search(q));
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        assert_eq!(
            ait.sample(q, 64, &mut rng_a),
            restored.sample(q, 64, &mut rng_b)
        );
    }

    #[test]
    fn aitv_and_awit_roundtrip() {
        let data: Vec<_> = (0..200).map(|i| iv(i % 90, i % 90 + 25)).collect();
        let aitv = AitV::new(&data);
        let restored = roundtrip(&aitv);
        let q = iv(30, 60);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        assert_eq!(
            aitv.sample(q, 32, &mut rng_a),
            restored.sample(q, 32, &mut rng_b)
        );

        let weights: Vec<f64> = (0..200).map(|i| 1.0 + (i % 7) as f64).collect();
        let awit = Awit::new(&data, &weights);
        let restored = roundtrip(&awit);
        let mut rng_a = StdRng::seed_from_u64(4);
        let mut rng_b = StdRng::seed_from_u64(4);
        assert_eq!(
            awit.sample_weighted(q, 32, &mut rng_a),
            restored.sample_weighted(q, 32, &mut rng_b)
        );
        assert_eq!(awit.range_weight(q), restored.range_weight(q));
    }

    #[test]
    fn dynamic_awit_roundtrip_preserves_ids_pool_and_tombstones() {
        let data: Vec<_> = (0..80).map(|i| iv(i, i + 15)).collect();
        let weights: Vec<f64> = (0..80).map(|i| 1.0 + (i % 4) as f64).collect();
        let mut idx = DynamicAwit::new(&data, &weights);
        assert!(idx.delete_by_id(5));
        assert!(idx.delete_by_id(40));
        let pooled = idx.insert(iv(200, 220), 9.0);
        let restored = roundtrip(&idx);
        assert_eq!(restored.len(), idx.len());
        assert_eq!(restored.pool_len(), idx.pool_len());
        assert_eq!(restored.tombstone_len(), idx.tombstone_len());
        // Stable ids survive: the pooled id resolves, the tombstoned
        // one stays dead, and the allocator does not reissue ids.
        assert_eq!(restored.get(pooled), Some((iv(200, 220), 9.0)));
        assert_eq!(restored.get(5), None);
        let mut restored = restored;
        let fresh = restored.insert(iv(300, 310), 1.0);
        assert!(fresh > pooled, "id allocator must not reissue {fresh}");
        let q = iv(10, 50);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        assert_eq!(idx.sample_weighted(q, 48, &mut rng_a), {
            // Re-decode a pristine copy: the insert above changed state.
            let copy = roundtrip(&idx);
            copy.sample_weighted(q, 48, &mut rng_b)
        });
    }

    #[test]
    fn corrupt_links_are_refused() {
        let ait = Ait::new(&(0..50).map(|i| iv(i, i + 5)).collect::<Vec<_>>());
        let mut buf = Vec::new();
        ait.encode_into(&mut buf);
        // The root index is encoded right after the node vector; rather
        // than compute its offset, decode a tree whose root is forged.
        let mut forged = Vec::new();
        Vec::<AitNode<i64>>::new().encode_into(&mut forged); // zero nodes
        7u32.encode_into(&mut forged); // root = 7 into an empty arena
        0usize.encode_into(&mut forged);
        0usize.encode_into(&mut forged);
        0u32.encode_into(&mut forged);
        Vec::<(Interval<i64>, ItemId)>::new().encode_into(&mut forged);
        16usize.encode_into(&mut forged);
        let mut r = Reader::new(&forged);
        assert_eq!(
            Ait::<i64>::decode(&mut r).unwrap_err(),
            PersistError::Corrupt {
                what: "AIT root out of range"
            }
        );
    }
}
