//! `DynamicAwit` — an *extension beyond the paper*: weighted IRS with
//! updates.
//!
//! §IV of the paper leaves dynamic weighted intervals as future work,
//! because a single insertion shifts entire cumulative-weight arrays. This
//! module closes that gap with the standard amortization toolkit, while
//! keeping the sampling distribution *exact*:
//!
//! - **Insertions** go to a weighted pool. Queries scan the pool linearly;
//!   each matching pool entry joins the per-query alias with its own
//!   weight, so probabilities stay exactly `w(x)/Σ w` over live intervals.
//! - **Deletions** become tombstones. Draws landing on a tombstoned
//!   interval are rejected and retried — rejection sampling conditioned on
//!   acceptance is exactly the weight-proportional distribution over the
//!   *live* result set. A per-query attempt budget falls back to exact
//!   enumeration, so tombstone concentrations cannot stall a query.
//! - When the pool or tombstone set outgrows `⌈log₂ n⌉²`, the underlying
//!   [`Awit`] is rebuilt, keeping updates amortized `O(n/log n)` and the
//!   query-time overhead `O(log² n)`.

use crate::awit::{Awit, AwitPrepared};
use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSearch, WeightedRangeSampler,
};
use irs_sampling::AliasTable;
use std::collections::HashMap;

/// Weighted IRS index with insert/delete support (extension of §IV; see
/// module docs). Sampling stays exactly weight-proportional over the live
/// intervals.
///
/// ```
/// use irs_ait::DynamicAwit;
/// use irs_core::{Interval, WeightedRangeSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data: Vec<_> = (0..100i64).map(|i| Interval::new(i, i + 10)).collect();
/// let weights: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
/// let mut idx = DynamicAwit::new(&data, &weights);
/// let heavy = idx.insert(Interval::new(50, 55), 1000.0);
/// assert!(idx.delete(Interval::new(0, 10), 0));
/// let mut rng = StdRng::seed_from_u64(1);
/// let s = idx.sample_weighted(Interval::new(48, 58), 100, &mut rng);
/// assert!(s.iter().filter(|&&id| id == heavy).count() > 50);
/// ```
#[derive(Debug)]
pub struct DynamicAwit<E> {
    pub(crate) awit: Awit<E>,
    /// AWIT position → public id (the AWIT is always built over a dense
    /// snapshot; ids survive rebuilds through this table).
    pub(crate) slot_ids: Vec<ItemId>,
    /// Live-or-tombstoned intervals resident in the AWIT, by public id.
    pub(crate) resident: HashMap<ItemId, (Interval<E>, f64)>,
    /// Buffered insertions not yet merged into the AWIT.
    pub(crate) pool: Vec<(Interval<E>, ItemId, f64)>,
    /// Public ids deleted logically but still physically in the AWIT.
    pub(crate) tombstones: HashMap<ItemId, Interval<E>>,
    pub(crate) next_id: ItemId,
    pub(crate) update_capacity: usize,
}

impl<E: Endpoint> DynamicAwit<E> {
    /// Builds from an initial weighted dataset (ids `0..n`, like
    /// [`Awit`]).
    pub fn new(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        let resident = data
            .iter()
            .zip(weights)
            .enumerate()
            .map(|(i, (&iv, &w))| (i as ItemId, (iv, w)))
            .collect();
        DynamicAwit {
            awit: Awit::new(data, weights),
            slot_ids: (0..data.len() as ItemId).collect(),
            resident,
            pool: Vec::new(),
            tombstones: HashMap::new(),
            next_id: data.len() as ItemId,
            update_capacity: Self::capacity_for(data.len()),
        }
    }

    fn capacity_for(n: usize) -> usize {
        let lg = (n.max(2) as f64).log2().ceil() as usize;
        (lg * lg).max(16)
    }

    /// Number of live intervals.
    pub fn len(&self) -> usize {
        self.resident.len() + self.pool.len() - self.tombstones.len()
    }

    /// Whether no intervals are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intervals waiting in the insertion pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Logically deleted intervals still resident in the AWIT.
    pub fn tombstone_len(&self) -> usize {
        self.tombstones.len()
    }

    /// Inserts a weighted interval, returning its id. Amortized
    /// `O(n/log n)`; worst case one rebuild.
    pub fn insert(&mut self, iv: Interval<E>, weight: f64) -> ItemId {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weights must be positive, got {weight}"
        );
        let id = self.next_id;
        self.next_id = self.next_id.checked_add(1).expect("id space exhausted");
        self.pool.push((iv, id, weight));
        if self.pool.len() >= self.update_capacity {
            self.rebuild();
        }
        id
    }

    /// The live interval and weight behind `id`, if any. Pool entries,
    /// resident entries, and tombstoned ids (which report `None`) are
    /// all resolved, so `get` is the id-validity oracle for callers that
    /// track intervals by id alone (the engine's delete-by-id path).
    pub fn get(&self, id: ItemId) -> Option<(Interval<E>, f64)> {
        if let Some(&(iv, _, w)) = self.pool.iter().find(|&&(_, pid, _)| pid == id) {
            return Some((iv, w));
        }
        if self.tombstones.contains_key(&id) {
            return None;
        }
        self.resident.get(&id).copied()
    }

    /// Deletes the live interval behind `id`, returning whether it was
    /// live — [`DynamicAwit::delete`] without the caller having to carry
    /// the interval around.
    pub fn delete_by_id(&mut self, id: ItemId) -> bool {
        match self.get(id) {
            Some((iv, _)) => self.delete(iv, id),
            None => false,
        }
    }

    /// Deletes `(iv, id)`, returning whether it was live.
    pub fn delete(&mut self, iv: Interval<E>, id: ItemId) -> bool {
        if let Some(pos) = self
            .pool
            .iter()
            .position(|&(piv, pid, _)| pid == id && piv == iv)
        {
            self.pool.swap_remove(pos);
            return true;
        }
        if self.tombstones.contains_key(&id) {
            return false;
        }
        match self.resident.get(&id) {
            Some(&(riv, _)) if riv == iv => {
                self.tombstones.insert(id, iv);
                if self.tombstones.len() >= self.update_capacity {
                    self.rebuild();
                }
                true
            }
            _ => false,
        }
    }

    /// Folds the pool in and drops tombstones by rebuilding the AWIT.
    pub fn rebuild(&mut self) {
        for (id, _) in self.tombstones.drain() {
            self.resident.remove(&id);
        }
        for &(iv, id, w) in &self.pool {
            self.resident.insert(id, (iv, w));
        }
        self.pool.clear();
        let mut ids: Vec<ItemId> = self.resident.keys().copied().collect();
        ids.sort_unstable();
        let data: Vec<Interval<E>> = ids.iter().map(|id| self.resident[id].0).collect();
        let weights: Vec<f64> = ids.iter().map(|id| self.resident[id].1).collect();
        self.awit = Awit::new(&data, &weights);
        self.slot_ids = ids;
        self.update_capacity = Self::capacity_for(self.resident.len().max(1));
    }

    /// Sum of live weights overlapping `q`: `O(log² n)` plus the bounded
    /// pool/tombstone scans.
    pub fn range_weight(&self, q: Interval<E>) -> f64 {
        let mut w = self.awit.range_weight(q);
        for (id, iv) in &self.tombstones {
            if iv.overlaps(&q) {
                w -= self.resident[id].1;
            }
        }
        for &(iv, _, pw) in &self.pool {
            if iv.overlaps(&q) {
                w += pw;
            }
        }
        w.max(0.0)
    }

    fn tombstoned_in(&self, q: Interval<E>) -> usize {
        self.tombstones
            .values()
            .filter(|iv| iv.overlaps(&q))
            .count()
    }
}

impl<E: Endpoint> RangeSearch<E> for DynamicAwit<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        for pos in self.awit.range_search(q) {
            let id = self.slot_ids[pos as usize];
            if !self.tombstones.contains_key(&id) {
                out.push(id);
            }
        }
        for &(iv, id, _) in &self.pool {
            if iv.overlaps(&q) {
                out.push(id);
            }
        }
    }
}

impl<E: Endpoint> RangeCount<E> for DynamicAwit<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        let pool = self
            .pool
            .iter()
            .filter(|(iv, _, _)| iv.overlaps(&q))
            .count();
        self.awit.range_count(q) - self.tombstoned_in(q) + pool
    }
}

/// Phase-2 handle: the AWIT records plus the matching pool entries and the
/// tombstone view needed for rejection.
pub struct DynamicAwitPrepared<'a, E> {
    parent: &'a DynamicAwit<E>,
    inner: AwitPrepared<'a, E>,
    /// `(public id, weight)` of pool entries overlapping the query.
    pool_matches: Vec<(ItemId, f64)>,
    q: Interval<E>,
}

impl<E: Endpoint> DynamicAwitPrepared<'_, E> {
    /// Exact live candidates with weights — the enumeration fallback.
    fn enumerate_live(&self) -> (Vec<ItemId>, Vec<f64>) {
        let mut ids = Vec::new();
        let mut ws = Vec::new();
        for pos in self.parent.awit.range_search(self.q) {
            let id = self.parent.slot_ids[pos as usize];
            if !self.parent.tombstones.contains_key(&id) {
                ids.push(id);
                ws.push(self.parent.resident[&id].1);
            }
        }
        for &(id, w) in &self.pool_matches {
            ids.push(id);
            ws.push(w);
        }
        (ids, ws)
    }
}

impl<E: Endpoint> PreparedSampler for DynamicAwitPrepared<'_, E> {
    fn candidate_count(&self) -> usize {
        self.inner.candidate_count() - self.parent.tombstoned_in(self.q) + self.pool_matches.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        let n_rec = self.inner.records.len();
        if n_rec + self.pool_matches.len() == 0 {
            return;
        }
        // Alias over AWIT records (prefix-array weights, may include
        // tombstoned mass — rejected below) and individual pool matches.
        let mut weights = self.inner.record_weights.clone();
        weights.extend(self.pool_matches.iter().map(|&(_, w)| w));
        let alias = AliasTable::new(&weights);

        let mut produced = 0usize;
        let mut budget: u64 = 256 + 64 * s as u64;
        while produced < s {
            if budget == 0 {
                // Tombstones dominate this query's mass: enumerate exactly.
                let (ids, ws) = self.enumerate_live();
                if ids.is_empty() {
                    return;
                }
                let exact = AliasTable::new(&ws);
                while produced < s {
                    out.push(ids[exact.sample(rng)]);
                    produced += 1;
                }
                break;
            }
            budget -= 1;
            let k = alias.sample(rng);
            if k < n_rec {
                let pos = self.inner.sample_record(k, rng);
                let id = self.parent.slot_ids[pos as usize];
                if self.parent.tombstones.contains_key(&id) {
                    continue; // rejected: conditional law stays exact
                }
                out.push(id);
            } else {
                out.push(self.pool_matches[k - n_rec].0);
            }
            produced += 1;
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for DynamicAwit<E> {
    type Prepared<'a> = DynamicAwitPrepared<'a, E>;

    fn prepare_weighted(&self, q: Interval<E>) -> DynamicAwitPrepared<'_, E> {
        let inner = self.awit.prepare_weighted(q);
        let pool_matches = self
            .pool
            .iter()
            .filter(|(iv, _, _)| iv.overlaps(&q))
            .map(|&(_, id, w)| (id, w))
            .collect();
        DynamicAwitPrepared {
            parent: self,
            inner,
            pool_matches,
            q,
        }
    }
}

impl<E: Endpoint> MemoryFootprint for DynamicAwit<E> {
    fn heap_bytes(&self) -> usize {
        self.awit.heap_bytes()
            + vec_bytes(&self.slot_ids)
            + vec_bytes(&self.pool)
            + self.resident.capacity() * (std::mem::size_of::<(ItemId, (Interval<E>, f64))>() + 8)
            + self.tombstones.capacity() * (std::mem::size_of::<(ItemId, Interval<E>)>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_sampling::stats::chi_square_ok;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_then_query() {
        let mut idx = DynamicAwit::<i64>::new(&[], &[]);
        let a = idx.insert(iv(0, 10), 1.0);
        let b = idx.insert(iv(5, 15), 2.0);
        assert_eq!(idx.len(), 2);
        assert_eq!(sorted(idx.range_search(iv(7, 8))), vec![a, b]);
        assert_eq!(idx.range_count(iv(12, 20)), 1);
        assert!((idx.range_weight(iv(7, 8)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn delete_resident_and_pooled() {
        let data: Vec<_> = (0..50).map(|i| iv(i, i + 5)).collect();
        let weights = vec![1.0; 50];
        let mut idx = DynamicAwit::new(&data, &weights);
        // Resident delete → tombstone.
        assert!(idx.delete(iv(0, 5), 0));
        assert!(!idx.delete(iv(0, 5), 0), "double delete must fail");
        assert_eq!(idx.tombstone_len(), 1);
        // Pool delete → removed outright.
        let p = idx.insert(iv(100, 105), 3.0);
        assert!(idx.delete(iv(100, 105), p));
        assert_eq!(idx.pool_len(), 0);
        assert_eq!(idx.len(), 49);
        assert!(!idx.range_search(iv(0, 3)).contains(&0));
    }

    #[test]
    fn get_and_delete_by_id_cover_pool_resident_and_tombstones() {
        let data: Vec<_> = (0..20).map(|i| iv(i, i + 4)).collect();
        let mut idx = DynamicAwit::new(&data, &[2.0; 20]);
        // Resident lookup.
        assert_eq!(idx.get(3), Some((iv(3, 7), 2.0)));
        // Pool lookup.
        let p = idx.insert(iv(100, 104), 5.0);
        assert_eq!(idx.get(p), Some((iv(100, 104), 5.0)));
        // Unknown id.
        assert_eq!(idx.get(999), None);
        // Delete by id (resident → tombstone) hides the id.
        assert!(idx.delete_by_id(3));
        assert_eq!(idx.get(3), None);
        assert!(!idx.delete_by_id(3), "double delete must fail");
        // Delete by id from the pool.
        assert!(idx.delete_by_id(p));
        assert_eq!(idx.get(p), None);
        assert_eq!(idx.len(), 19);
    }

    #[test]
    fn rebuild_triggers_and_preserves_answers() {
        let data: Vec<_> = (0..200).map(|i| iv(i, i + 20)).collect();
        let weights: Vec<f64> = (0..200).map(|i| 1.0 + (i % 9) as f64).collect();
        let mut idx = DynamicAwit::new(&data, &weights);
        let cap = idx.update_capacity;
        for i in 0..cap {
            idx.insert(iv(i as i64, i as i64 + 10), 2.0);
        }
        assert_eq!(
            idx.pool_len(),
            0,
            "pool must have been folded in by a rebuild"
        );
        // Shadow check against brute force.
        let mut shadow: Vec<(Interval<i64>, ItemId, f64)> = data
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i as ItemId, weights[i]))
            .collect();
        for i in 0..cap {
            shadow.push((iv(i as i64, i as i64 + 10), (200 + i) as ItemId, 2.0));
        }
        for q in [iv(0, 250), iv(40, 60), iv(199, 240)] {
            let expect: Vec<ItemId> = sorted(
                shadow
                    .iter()
                    .filter(|(x, _, _)| x.overlaps(&q))
                    .map(|&(_, id, _)| id)
                    .collect(),
            );
            assert_eq!(sorted(idx.range_search(q)), expect, "query {q:?}");
            let expect_w: f64 = shadow
                .iter()
                .filter(|(x, _, _)| x.overlaps(&q))
                .map(|&(_, _, w)| w)
                .sum();
            assert!((idx.range_weight(q) - expect_w).abs() < 1e-6 * expect_w.max(1.0));
        }
    }

    #[test]
    fn sampling_is_weight_proportional_with_tombstones_and_pool() {
        let data: Vec<_> = (0..60).map(|i| iv(i, i + 30)).collect();
        let weights: Vec<f64> = (0..60).map(|i| 1.0 + (i % 6) as f64).collect();
        let mut idx = DynamicAwit::new(&data, &weights);
        // Tombstone a third of the result set, pool a few new entries.
        for id in (0..30u32).step_by(3) {
            assert!(idx.delete(data[id as usize], id));
        }
        let mut live: Vec<(ItemId, f64)> = (0..60u32)
            .filter(|id| id % 3 != 0 || *id >= 30)
            .map(|id| (id, weights[id as usize]))
            .collect();
        for k in 0..5 {
            let w = 4.0 + k as f64;
            let id = idx.insert(iv(10 + k, 45 + k), w);
            live.push((id, w));
        }

        let q = iv(25, 35);
        let support: Vec<(ItemId, f64)> = live
            .iter()
            .copied()
            .filter(|&(id, _)| {
                let x = if id < 60 {
                    data[id as usize]
                } else {
                    iv(10 + (id as i64 - 60), 45 + (id as i64 - 60))
                };
                x.overlaps(&q)
            })
            .collect();
        let total: f64 = support.iter().map(|&(_, w)| w).sum();
        let ids: Vec<ItemId> = support.iter().map(|&(id, _)| id).collect();
        let expected: Vec<f64> = support.iter().map(|&(_, w)| w / total).collect();

        let mut rng = StdRng::seed_from_u64(7);
        let draws = 200_000usize;
        let mut counts = vec![0u64; ids.len()];
        for id in idx.sample_weighted(q, draws, &mut rng) {
            let pos = ids
                .iter()
                .position(|&x| x == id)
                .unwrap_or_else(|| panic!("sample {id} outside live q ∩ X"));
            counts[pos] += 1;
        }
        assert!(
            chi_square_ok(&counts, &expected, draws as u64),
            "dynamic weighted sampling deviates from w/Σw"
        );
    }

    #[test]
    fn all_tombstoned_query_yields_nothing() {
        let data: Vec<_> = (0..20).map(|i| iv(i, i + 1)).collect();
        let weights = vec![1.0; 20];
        let mut idx = DynamicAwit::new(&data, &weights);
        // Delete everything overlapping [0, 10] (intervals 0..=10).
        for id in 0..=10u32 {
            assert!(idx.delete(data[id as usize], id));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let samples = idx.sample_weighted(iv(0, 9), 50, &mut rng);
        assert!(
            samples.is_empty(),
            "tombstoned mass must not be sampled: {samples:?}"
        );
        assert_eq!(idx.range_count(iv(0, 9)), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_update_stream_matches_shadow(
            base in prop::collection::vec((0i64..300, 0i64..60, 1u32..50), 1..60),
            ops in prop::collection::vec((0i64..350, 0i64..80, 1u32..50, 0u8..4), 1..80),
        ) {
            let data: Vec<_> = base.iter().map(|&(lo, len, _)| iv(lo, lo + len)).collect();
            let weights: Vec<f64> = base.iter().map(|&(_, _, w)| w as f64).collect();
            let mut idx = DynamicAwit::new(&data, &weights);
            let mut shadow: Vec<(Interval<i64>, ItemId, f64)> = data
                .iter()
                .enumerate()
                .map(|(i, &x)| (x, i as ItemId, weights[i]))
                .collect();
            let mut rng = StdRng::seed_from_u64(99);
            for &(lo, len, w, op) in &ops {
                match op {
                    0 | 1 => {
                        let x = iv(lo, lo + len);
                        let id = idx.insert(x, w as f64);
                        shadow.push((x, id, w as f64));
                    }
                    2 if !shadow.is_empty() => {
                        let k = rng.random_range(0..shadow.len());
                        let (x, id, _) = shadow.swap_remove(k);
                        prop_assert!(idx.delete(x, id));
                    }
                    _ => {
                        let q = iv(lo, lo + len);
                        let expect: Vec<ItemId> = {
                            let mut v: Vec<_> = shadow
                                .iter()
                                .filter(|(x, _, _)| x.overlaps(&q))
                                .map(|&(_, id, _)| id)
                                .collect();
                            v.sort_unstable();
                            v
                        };
                        prop_assert_eq!(sorted(idx.range_search(q)), expect.clone());
                        prop_assert_eq!(idx.range_count(q), expect.len());
                        let expect_w: f64 = shadow
                            .iter()
                            .filter(|(x, _, _)| x.overlaps(&q))
                            .map(|&(_, _, w)| w)
                            .sum();
                        prop_assert!((idx.range_weight(q) - expect_w).abs()
                            < 1e-6 * expect_w.max(1.0));
                        // Samples must come from the live result set.
                        let samples = idx.sample_weighted(q, 16, &mut rng);
                        if expect.is_empty() {
                            prop_assert!(samples.is_empty());
                        } else {
                            for id in samples {
                                prop_assert!(expect.binary_search(&id).is_ok());
                            }
                        }
                    }
                }
            }
            prop_assert_eq!(idx.len(), shadow.len());
        }
    }
}
