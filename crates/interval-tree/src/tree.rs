//! The interval tree structure and its query algorithms.

use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSampler, RangeSearch, StabbingQuery, WeightedRangeSampler,
};
use irs_sampling::AliasTable;

/// An interval tagged with its id in the source dataset. Node lists store
/// these pairs so queries can report ids without an indirection.
#[derive(Clone, Copy, Debug)]
struct Entry<E> {
    iv: Interval<E>,
    id: ItemId,
}

/// Sentinel for "no child" (keeps `Node` compact versus `Option<u32>`).
const NIL: u32 = u32::MAX;

#[derive(Debug)]
struct Node<E> {
    /// Central point `c_i`: intervals in this node are stabbed by it.
    center: E,
    /// `Ll_i`: entries sorted ascending by left endpoint.
    by_lo: Vec<Entry<E>>,
    /// `Lr_i`: the same entries sorted ascending by right endpoint.
    by_hi: Vec<Entry<E>>,
    left: u32,
    right: u32,
}

/// Edelsbrunner's interval tree over a dataset of `n` intervals.
///
/// `O(n)` space, height `O(log n)` (centers are endpoint medians).
#[derive(Debug)]
pub struct IntervalTree<E> {
    nodes: Vec<Node<E>>,
    root: u32,
    len: usize,
    /// Per-interval weights (dataset order) for the weighted IRS baseline;
    /// empty when built unweighted.
    weights: Vec<f64>,
}

impl<E: Endpoint> IntervalTree<E> {
    /// Builds the tree for the unweighted problem.
    pub fn new(data: &[Interval<E>]) -> Self {
        Self::build(data, Vec::new())
    }

    /// Builds the tree for the weighted problem. `weights` must be positive
    /// and aligned with `data`.
    pub fn new_weighted(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        Self::build(data, weights.to_vec())
    }

    fn build(data: &[Interval<E>], weights: Vec<f64>) -> Self {
        let entries: Vec<Entry<E>> = data
            .iter()
            .enumerate()
            .map(|(i, &iv)| Entry {
                iv,
                id: i as ItemId,
            })
            .collect();
        let mut tree = IntervalTree {
            nodes: Vec::new(),
            root: NIL,
            len: data.len(),
            weights,
        };
        tree.root = tree.build_node(entries);
        tree
    }

    /// Recursively builds the subtree over `items`, returning its node
    /// index (or `NIL` when `items` is empty). Recursion depth is the tree
    /// height, `O(log n)` thanks to the median split.
    fn build_node(&mut self, items: Vec<Entry<E>>) -> u32 {
        if items.is_empty() {
            return NIL;
        }
        // Central point: median over all left and right endpoints, which
        // guarantees each side receives at most half of the endpoints and
        // therefore geometric shrinkage of subtree sizes.
        let mut endpoints: Vec<E> = Vec::with_capacity(items.len() * 2);
        for e in &items {
            endpoints.push(e.iv.lo);
            endpoints.push(e.iv.hi);
        }
        let mid = endpoints.len() / 2;
        let (_, &mut center, _) = endpoints.select_nth_unstable(mid);

        let mut here: Vec<Entry<E>> = Vec::new();
        let mut left_items: Vec<Entry<E>> = Vec::new();
        let mut right_items: Vec<Entry<E>> = Vec::new();
        for e in items {
            if e.iv.hi < center {
                left_items.push(e);
            } else if e.iv.lo > center {
                right_items.push(e);
            } else {
                here.push(e);
            }
        }
        debug_assert!(
            !here.is_empty(),
            "median endpoint must stab at least one interval"
        );

        let mut by_lo = here;
        let mut by_hi = by_lo.clone();
        by_lo.sort_unstable_by_key(|a| a.iv.lo);
        by_hi.sort_unstable_by_key(|a| a.iv.hi);

        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            center,
            by_lo,
            by_hi,
            left: NIL,
            right: NIL,
        });
        let left = self.build_node(left_items);
        let right = self.build_node(right_items);
        let node = &mut self.nodes[idx as usize];
        node.left = left;
        node.right = right;
        idx
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree indexes no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the index carries per-interval weights (built with
    /// [`IntervalTree::new_weighted`], or decoded from a weighted
    /// snapshot). Empty indexes report `false` either way.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Height of the tree (0 for an empty tree).
    pub fn height(&self) -> usize {
        fn depth<E>(nodes: &[Node<E>], at: u32) -> usize {
            if at == NIL {
                0
            } else {
                let n = &nodes[at as usize];
                1 + depth(nodes, n.left).max(depth(nodes, n.right))
            }
        }
        depth(&self.nodes, self.root)
    }

    /// Walks the tree for a range query, invoking `emit` for every
    /// overlapping entry. This is the shared engine of search and count.
    fn for_each_overlap(&self, q: Interval<E>, mut emit: impl FnMut(&Entry<E>)) {
        let mut at = self.root;
        while at != NIL {
            let node = &self.nodes[at as usize];
            if q.hi < node.center {
                // Case 1: q left of center. Entries with lo ≤ q.hi overlap
                // (their hi ≥ center > q.hi ≥ lo).
                let cut = node.by_lo.partition_point(|e| e.iv.lo <= q.hi);
                for e in &node.by_lo[..cut] {
                    emit(e);
                }
                at = node.left;
            } else if node.center < q.lo {
                // Case 2: q right of center. Entries with hi ≥ q.lo overlap.
                let cut = node.by_hi.partition_point(|e| e.iv.hi < q.lo);
                for e in &node.by_hi[cut..] {
                    emit(e);
                }
                at = node.right;
            } else {
                // Case 3: q stabs the center — everything here overlaps,
                // and (unlike the AIT) *both* subtrees must be visited.
                for e in &node.by_lo {
                    emit(e);
                }
                self.descend_both(node.left, q, &mut emit);
                at = node.right;
            }
        }
    }

    /// Recursive arm used once a case-3 node forks the traversal.
    fn descend_both(&self, at: u32, q: Interval<E>, emit: &mut impl FnMut(&Entry<E>)) {
        if at == NIL {
            return;
        }
        let node = &self.nodes[at as usize];
        if q.hi < node.center {
            let cut = node.by_lo.partition_point(|e| e.iv.lo <= q.hi);
            for e in &node.by_lo[..cut] {
                emit(e);
            }
            self.descend_both(node.left, q, emit);
        } else if node.center < q.lo {
            let cut = node.by_hi.partition_point(|e| e.iv.hi < q.lo);
            for e in &node.by_hi[cut..] {
                emit(e);
            }
            self.descend_both(node.right, q, emit);
        } else {
            for e in &node.by_lo {
                emit(e);
            }
            self.descend_both(node.left, q, emit);
            self.descend_both(node.right, q, emit);
        }
    }
}

impl<E: Endpoint> RangeSearch<E> for IntervalTree<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.for_each_overlap(q, |e| out.push(e.id));
    }
}

impl<E: Endpoint> RangeCount<E> for IntervalTree<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        // Same traversal but per-node binary searches instead of scans, so
        // counting costs O(log n) per visited node.
        let mut count = 0usize;
        let mut stack = vec![self.root];
        while let Some(at) = stack.pop() {
            if at == NIL {
                continue;
            }
            let node = &self.nodes[at as usize];
            if q.hi < node.center {
                count += node.by_lo.partition_point(|e| e.iv.lo <= q.hi);
                stack.push(node.left);
            } else if node.center < q.lo {
                count += node.by_hi.len() - node.by_hi.partition_point(|e| e.iv.hi < q.lo);
                stack.push(node.right);
            } else {
                count += node.by_lo.len();
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        count
    }
}

impl<E: Endpoint> StabbingQuery<E> for IntervalTree<E> {
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        self.for_each_overlap(Interval::point(p), |e| out.push(e.id));
    }
}

/// Phase-2 handle of the interval-tree baseline: the materialized result
/// set, optionally with the weights needed to build a per-query alias.
pub struct IntervalTreePrepared<'a> {
    candidates: Vec<ItemId>,
    /// Dataset weights; `Some` selects the weighted sampling path, where
    /// alias construction is (deliberately) part of the sampling phase,
    /// matching how the paper attributes costs in Table IX.
    weights: Option<&'a [f64]>,
}

impl IntervalTreePrepared<'_> {
    /// Total result-set weight (1 per candidate on the uniform path):
    /// one pass over the already-materialized candidates, no re-search.
    pub fn total_weight(&self) -> f64 {
        irs_core::candidates_weight(&self.candidates, self.weights)
    }
}

impl PreparedSampler for IntervalTreePrepared<'_> {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.candidates.is_empty() {
            return;
        }
        match self.weights {
            None => {
                for _ in 0..s {
                    let k = rand::Rng::random_range(&mut *rng, 0..self.candidates.len());
                    out.push(self.candidates[k]);
                }
            }
            Some(weights) => {
                let ws: Vec<f64> = self
                    .candidates
                    .iter()
                    .map(|&id| weights[id as usize])
                    .collect();
                let alias = AliasTable::new(&ws);
                for _ in 0..s {
                    out.push(self.candidates[alias.sample(rng)]);
                }
            }
        }
    }
}

impl<E: Endpoint> RangeSampler<E> for IntervalTree<E> {
    type Prepared<'a> = IntervalTreePrepared<'a>;

    fn prepare(&self, q: Interval<E>) -> IntervalTreePrepared<'_> {
        IntervalTreePrepared {
            candidates: self.range_search(q),
            weights: None,
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for IntervalTree<E> {
    type Prepared<'a> = IntervalTreePrepared<'a>;

    fn prepare_weighted(&self, q: Interval<E>) -> IntervalTreePrepared<'_> {
        assert!(
            !self.weights.is_empty() || self.len == 0,
            "weighted sampling requires IntervalTree::new_weighted"
        );
        IntervalTreePrepared {
            candidates: self.range_search(q),
            weights: Some(&self.weights),
        }
    }
}

impl<E: Endpoint> MemoryFootprint for IntervalTree<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = self.nodes.capacity() * std::mem::size_of::<Node<E>>();
        for node in &self.nodes {
            bytes += vec_bytes(&node.by_lo) + vec_bytes(&node.by_hi);
        }
        bytes + vec_bytes(&self.weights)
    }
}

// ---------------------------------------------------------------------
// On-disk codec (see DESIGN.md, "On-disk snapshot format").

use irs_core::persist::{check_arena_link, Codec, PersistError, Reader};

impl<E: Endpoint + Codec> Codec for Entry<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.iv.encode_into(out);
        self.id.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Entry {
            iv: Interval::decode(r)?,
            id: ItemId::decode(r)?,
        })
    }
}

impl<E: Endpoint + Codec> Codec for Node<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.center.encode_into(out);
        self.by_lo.encode_into(out);
        self.by_hi.encode_into(out);
        self.left.encode_into(out);
        self.right.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let node = Node {
            center: E::decode(r)?,
            by_lo: Vec::decode(r)?,
            by_hi: Vec::decode(r)?,
            left: u32::decode(r)?,
            right: u32::decode(r)?,
        };
        if node.by_lo.len() != node.by_hi.len() {
            return Err(PersistError::Corrupt {
                what: "interval-tree node: Ll/Lr lengths disagree",
            });
        }
        Ok(node)
    }
}

impl<E: Endpoint + Codec> Codec for IntervalTree<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.nodes.encode_into(out);
        self.root.encode_into(out);
        self.len.encode_into(out);
        self.weights.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let nodes: Vec<Node<E>> = Vec::decode(r)?;
        let root = u32::decode(r)?;
        check_arena_link(root, nodes.len(), "interval-tree link out of range")?;
        for n in &nodes {
            check_arena_link(n.left, nodes.len(), "interval-tree link out of range")?;
            check_arena_link(n.right, nodes.len(), "interval-tree link out of range")?;
        }
        let len = usize::decode(r)?;
        let weights: Vec<f64> = Vec::decode(r)?;
        if !weights.is_empty() && weights.len() != len {
            return Err(PersistError::Corrupt {
                what: "interval-tree weights do not match the dataset length",
            });
        }
        // Weighted sampling indexes `weights[entry.id]`; bound the ids
        // here so a corrupt id cannot panic at query time.
        if nodes
            .iter()
            .flat_map(|n| n.by_lo.iter().chain(&n.by_hi))
            .any(|e| e.id as usize >= len)
        {
            return Err(PersistError::Corrupt {
                what: "interval-tree entry id out of range",
            });
        }
        Ok(IntervalTree {
            nodes,
            root,
            len,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_answers_everything_empty() {
        let t = IntervalTree::<i64>::new(&[]);
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.range_search(iv(0, 10)).is_empty());
        assert_eq!(t.range_count(iv(0, 10)), 0);
        assert!(t.stab(5).is_empty());
        let mut rng = StdRng::seed_from_u64(0);
        assert!(t.sample(iv(0, 10), 5, &mut rng).is_empty());
    }

    #[test]
    fn small_fixture_matches_oracle() {
        let data = vec![
            iv(0, 10),
            iv(5, 6),
            iv(11, 20),
            iv(-5, -1),
            iv(8, 30),
            iv(2, 2),
        ];
        let t = IntervalTree::new(&data);
        let bf = BruteForce::new(&data);
        for q in [
            iv(6, 9),
            iv(-100, 100),
            iv(40, 50),
            iv(10, 11),
            iv(2, 2),
            iv(-5, -5),
        ] {
            assert_eq!(
                sorted(t.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
            assert_eq!(t.range_count(q), bf.range_count(q), "count {q:?}");
        }
        for p in [-6, -5, 0, 2, 6, 10, 20, 31] {
            assert_eq!(sorted(t.stab(p)), sorted(bf.stab(p)), "stab {p}");
        }
    }

    #[test]
    fn duplicates_are_reported_individually() {
        let data = vec![iv(1, 5); 7];
        let t = IntervalTree::new(&data);
        assert_eq!(t.range_count(iv(3, 3)), 7);
        assert_eq!(sorted(t.range_search(iv(0, 9))), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn height_is_logarithmic() {
        let data: Vec<_> = (0..4096).map(|i| iv(i * 10, i * 10 + 5)).collect();
        let t = IntervalTree::new(&data);
        // 4096 disjoint intervals: height should be near log2(4096) = 12,
        // certainly far below n.
        assert!(t.height() <= 16, "height {} too large", t.height());
    }

    #[test]
    fn nested_intervals_pile_into_one_node() {
        // Every interval stabs the global median → single node, height 1.
        let data: Vec<_> = (0..64).map(|i| iv(-i, i)).collect();
        let t = IntervalTree::new(&data);
        assert_eq!(t.height(), 1);
        assert_eq!(t.range_count(iv(0, 0)), 64);
    }

    #[test]
    fn samples_are_supported_and_complete() {
        let data: Vec<_> = (0..100).map(|i| iv(i, i + 10)).collect();
        let t = IntervalTree::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(30, 50);
        let support = bf.range_search(q);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = t.sample(q, 5000, &mut rng);
        assert_eq!(samples.len(), 5000);
        for &id in &samples {
            assert!(support.contains(&id));
        }
        // With 5000 draws over ~31 candidates, all should be seen.
        let mut seen: Vec<_> = samples.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(sorted(seen), sorted(support));
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let data = vec![iv(0, 10), iv(0, 10), iv(0, 10)];
        let weights = vec![1.0, 1.0, 98.0];
        let t = IntervalTree::new_weighted(&data, &weights);
        let mut rng = StdRng::seed_from_u64(10);
        let samples = t.sample_weighted(iv(5, 5), 2000, &mut rng);
        let heavy = samples.iter().filter(|&&s| s == 2).count();
        assert!(heavy > 1800, "heavy item drawn {heavy}/2000");
    }

    #[test]
    fn footprint_counts_node_lists() {
        let data: Vec<_> = (0..1000).map(|i| iv(i, i + 3)).collect();
        let t = IntervalTree::new(&data);
        // Two sorted lists of 1000 entries of 24 bytes minimum.
        assert!(t.heap_bytes() >= 2 * 1000 * std::mem::size_of::<Entry<i64>>());
    }

    proptest! {
        #[test]
        fn prop_matches_oracle(
            raw in prop::collection::vec((0i64..2000, 0i64..200), 1..300),
            queries in prop::collection::vec((0i64..2200, 0i64..400), 20),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let t = IntervalTree::new(&data);
            let bf = BruteForce::new(&data);
            prop_assert!(t.height() <= 2 * (data.len() as f64).log2().ceil() as usize + 2);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(t.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(t.range_count(q), bf.range_count(q));
                prop_assert_eq!(sorted(t.stab(lo)), sorted(bf.stab(lo)));
            }
        }
    }
}
