//! Edelsbrunner's interval tree (§II-B of the paper) and the
//! search-then-sample IRS baseline built on it (§V, "Interval tree").
//!
//! Each node stores a central point `c` and the intervals stabbed by `c`
//! twice: sorted by left endpoint (`Ll`) and by right endpoint (`Lr`).
//! Intervals entirely left of `c` go to the left subtree, entirely right of
//! `c` to the right subtree. The tree supports:
//!
//! - stabbing queries in `O(log n + K)`,
//! - range search in `O(min(n, log n + K))` — the `O(n)` worst case when a
//!   query straddles many centers is exactly the drawback the paper's AIT
//!   removes,
//! - IRS by materializing `q ∩ X` and sampling from it (the baseline the
//!   paper compares against): `Ω(|q ∩ X|)` per query.
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n log n)` | median centers, sorted node lists |
//! | Stabbing | `O(log n + K)` | the structure's native operator (§II-B) |
//! | Range search | `O(min(n, log n + K))` | case-3 forks may visit both subtrees |
//! | Range count | `O(log n)` per visited node | binary searches instead of scans |
//! | IRS (either problem) | `Ω(\|q ∩ X\| + s)` | search-then-sample (§V baseline) |
//! | Space | `O(n)` | each interval stored at one node (twice) |
//!
//! Snapshots: [`IntervalTree`] implements [`irs_core::persist::Codec`],
//! storing the node arena and optional weights verbatim (see
//! `DESIGN.md`, "On-disk snapshot format").

#![deny(missing_docs)]

mod tree;

pub use tree::{IntervalTree, IntervalTreePrepared};
