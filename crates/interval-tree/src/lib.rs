//! Edelsbrunner's interval tree (§II-B of the paper) and the
//! search-then-sample IRS baseline built on it (§V, "Interval tree").
//!
//! Each node stores a central point `c` and the intervals stabbed by `c`
//! twice: sorted by left endpoint (`Ll`) and by right endpoint (`Lr`).
//! Intervals entirely left of `c` go to the left subtree, entirely right of
//! `c` to the right subtree. The tree supports:
//!
//! - stabbing queries in `O(log n + K)`,
//! - range search in `O(min(n, log n + K))` — the `O(n)` worst case when a
//!   query straddles many centers is exactly the drawback the paper's AIT
//!   removes,
//! - IRS by materializing `q ∩ X` and sampling from it (the baseline the
//!   paper compares against): `Ω(|q ∩ X|)` per query.

mod tree;

pub use tree::{IntervalTree, IntervalTreePrepared};
