//! The **period index** (Behrend et al., SSTD 2019 — "Period index: a
//! learned 2D hash index for range and duration queries"), the remaining
//! range-search baseline from the paper's related work (§VI).
//!
//! # Structure (the non-learned variant)
//!
//! The domain is cut into fixed-width *position buckets*. Every bucket
//! is subdivided into *duration levels*: level `d` of a bucket holds the
//! intervals starting in that bucket whose length falls in the level's
//! duration class (exponentially growing classes, so long outliers do
//! not blow up short-interval levels). A range query visits:
//!
//! - the buckets strictly inside `[q.lo, q.hi]` (everything starting
//!   there overlaps, except tail positions beyond `q.hi` in the last
//!   bucket), and
//! - buckets *before* `q.lo`, where only intervals long enough to reach
//!   `q.lo` can match — the duration levels let the scan skip entire
//!   classes whose maximal duration cannot bridge the gap.
//!
//! Range search remains `Ω(|q ∩ X|)` like all search-based baselines,
//! and its efficiency degrades with long-interval skew, which is exactly
//! what the HINT papers measured it against (the paper's related work,
//! §VI, cites it among the non-sampling competitors).
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n + buckets · levels)` | one placement per interval |
//! | Range search | `Ω(\|q ∩ X\|)` | duration levels skip unreachable classes |
//! | Range count | `Ω(\|q ∩ X\|)` | search-based |
//! | IRS | `Ω(\|q ∩ X\| + s)` | search-then-sample |
//! | Space | `O(n + buckets · levels)` | leveled start-bucket lists |

#![deny(missing_docs)]

use irs_core::{
    vec_bytes, GridEndpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSampler, RangeSearch, StabbingQuery,
};

/// One duration level of a bucket: intervals with lengths in
/// `[2^level, 2^(level+1))` grid units, sorted by right endpoint so the
/// reach-check in earlier buckets is a suffix scan.
#[derive(Clone, Debug)]
struct Level<E> {
    /// `(hi, lo, id)` sorted by `hi` ascending.
    entries: Vec<(E, E, ItemId)>,
}

impl<E> Default for Level<E> {
    fn default() -> Self {
        Level {
            entries: Vec::new(),
        }
    }
}

/// One position bucket: duration-leveled lists of the intervals that
/// *start* inside it.
#[derive(Clone, Debug)]
struct Bucket<E> {
    levels: Vec<Level<E>>,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket { levels: Vec::new() }
    }
}

/// Default number of position buckets.
pub const DEFAULT_BUCKETS: usize = 1024;

/// The period index.
///
/// ```
/// use irs_period_index::PeriodIndex;
/// use irs_core::{Interval, RangeSearch, RangeCount};
///
/// let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let pi = PeriodIndex::new(&data);
/// assert_eq!(pi.range_count(Interval::new(200, 240)), 91);
/// ```
#[derive(Debug)]
pub struct PeriodIndex<E> {
    buckets: Vec<Bucket<E>>,
    /// `(min lo, max hi)`; `None` when empty.
    domain: Option<(E, E)>,
    /// Grid width of one bucket (domain units per bucket, ≥ 1).
    bucket_width: u64,
    /// Longest indexed duration in grid units (bounds the backward walk).
    max_duration: u64,
    len: usize,
}

impl<E: GridEndpoint> PeriodIndex<E> {
    /// Builds with [`DEFAULT_BUCKETS`] position buckets.
    pub fn new(data: &[Interval<E>]) -> Self {
        Self::with_buckets(data, DEFAULT_BUCKETS)
    }

    /// Builds with an explicit bucket count.
    pub fn with_buckets(data: &[Interval<E>], bucket_count: usize) -> Self {
        assert!(bucket_count >= 1, "need at least one bucket");
        let domain = irs_core::domain_bounds(data);
        let (bucket_width, mut buckets) = match domain {
            Some((lo, hi)) => {
                let extent = hi.grid_offset(lo).saturating_add(1);
                let width = extent.div_ceil(bucket_count as u64).max(1);
                let count = extent.div_ceil(width) as usize;
                (width, vec![Bucket::default(); count.max(1)])
            }
            None => (1, Vec::new()),
        };
        let mut max_duration = 0u64;
        if let Some((dmin, _)) = domain {
            for (i, iv) in data.iter().enumerate() {
                let b = (iv.lo.grid_offset(dmin) / bucket_width) as usize;
                let dur = iv.hi.grid_offset(iv.lo);
                max_duration = max_duration.max(dur);
                let level = duration_level(dur);
                let bucket = &mut buckets[b];
                if bucket.levels.len() <= level {
                    bucket.levels.resize_with(level + 1, Level::default);
                }
                bucket.levels[level]
                    .entries
                    .push((iv.hi, iv.lo, i as ItemId));
            }
            for bucket in &mut buckets {
                for level in &mut bucket.levels {
                    level.entries.sort_unstable();
                }
            }
        }
        PeriodIndex {
            buckets,
            domain,
            bucket_width,
            max_duration,
            len: data.len(),
        }
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of position buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, v: E) -> usize {
        let (dmin, _) = self.domain.expect("bucket_of on empty index");
        (v.grid_offset(dmin) / self.bucket_width) as usize
    }

    /// Calls `emit` for every interval overlapping `q`, exactly once
    /// (each interval lives in exactly one bucket/level slot).
    fn for_each_overlap(&self, q: Interval<E>, mut emit: impl FnMut(ItemId)) {
        let Some((dmin, dmax)) = self.domain else {
            return;
        };
        if q.hi < dmin || dmax < q.lo {
            return;
        }
        let qlo = if q.lo < dmin { dmin } else { q.lo };
        let qhi = if q.hi > dmax { dmax } else { q.hi };
        let first = self.bucket_of(qlo);
        let last = self.bucket_of(qhi);

        // Buckets inside the query: everything starting at ≤ q.hi
        // overlaps (their start is ≥ bucket start ≥ q.lo). Only the last
        // bucket needs the lo ≤ q.hi comparison.
        for b in first..=last {
            let needs_lo_check = b == last;
            for level in &self.buckets[b].levels {
                for &(hi, lo, id) in &level.entries {
                    // In the first bucket an interval may start (and even
                    // end) before q.lo.
                    if b == first && hi < q.lo {
                        continue;
                    }
                    if b == first && lo < qlo {
                        // Starts before the query within the same bucket:
                        // reached q.lo, overlap confirmed by hi ≥ q.lo.
                        emit(id);
                        continue;
                    }
                    if !needs_lo_check || lo <= q.hi {
                        emit(id);
                    }
                }
            }
        }

        // Earlier buckets: every interval there starts before q.lo, so it
        // matches iff it reaches q.lo (`hi ≥ q.lo`) — a suffix of each
        // hi-sorted level. The backward walk stops once even the longest
        // indexed interval could no longer bridge the gap.
        let qlo_off = qlo.grid_offset(dmin);
        for b in (0..first).rev() {
            let bucket_end_off = ((b as u64 + 1) * self.bucket_width).saturating_sub(1);
            let gap = qlo_off.saturating_sub(bucket_end_off);
            if gap > self.max_duration {
                break;
            }
            for level in &self.buckets[b].levels {
                let from = level.entries.partition_point(|&(hi, _, _)| hi < qlo);
                for &(_, _, id) in &level.entries[from..] {
                    emit(id);
                }
            }
        }
    }
}

/// Exponential duration classes: level = floor(log2(duration + 1)).
fn duration_level(dur: u64) -> usize {
    (64 - (dur + 1).leading_zeros() - 1) as usize
}

impl<E: GridEndpoint> RangeSearch<E> for PeriodIndex<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.for_each_overlap(q, |id| out.push(id));
    }
}

impl<E: GridEndpoint> RangeCount<E> for PeriodIndex<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        let mut count = 0;
        self.for_each_overlap(q, |_| count += 1);
        count
    }
}

impl<E: GridEndpoint> StabbingQuery<E> for PeriodIndex<E> {
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        self.for_each_overlap(Interval::point(p), |id| out.push(id));
    }
}

/// Phase-2 handle: materialized candidates (search-then-sample baseline).
pub struct PeriodPrepared {
    candidates: Vec<ItemId>,
}

impl PreparedSampler for PeriodPrepared {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.candidates.is_empty() {
            return;
        }
        for _ in 0..s {
            let k = rand::Rng::random_range(&mut *rng, 0..self.candidates.len());
            out.push(self.candidates[k]);
        }
    }
}

impl<E: GridEndpoint> RangeSampler<E> for PeriodIndex<E> {
    type Prepared<'a> = PeriodPrepared;

    fn prepare(&self, q: Interval<E>) -> PeriodPrepared {
        PeriodPrepared {
            candidates: self.range_search(q),
        }
    }
}

impl<E: GridEndpoint> MemoryFootprint for PeriodIndex<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = vec_bytes(&self.buckets);
        for b in &self.buckets {
            bytes += vec_bytes(&b.levels);
            for l in &b.levels {
                bytes += vec_bytes(&l.entries);
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let pi = PeriodIndex::<i64>::new(&[]);
        assert!(pi.is_empty());
        assert!(pi.range_search(iv(0, 10)).is_empty());
        assert_eq!(pi.range_count(iv(0, 10)), 0);
    }

    #[test]
    fn duration_levels_are_log_classes() {
        assert_eq!(duration_level(0), 0);
        assert_eq!(duration_level(1), 1);
        assert_eq!(duration_level(2), 1);
        assert_eq!(duration_level(3), 2);
        assert_eq!(duration_level(7), 3);
        assert_eq!(duration_level(u64::MAX - 1), 63);
    }

    #[test]
    fn matches_oracle_across_bucket_counts() {
        let data: Vec<_> = (0..400)
            .map(|i| iv((i * 13) % 350, (i * 13) % 350 + 1 + (i % 60)))
            .collect();
        let bf = BruteForce::new(&data);
        for buckets in [1, 2, 16, 128, 4096] {
            let pi = PeriodIndex::with_buckets(&data, buckets);
            for q in [
                iv(0, 450),
                iv(100, 120),
                iv(349, 360),
                iv(-20, -1),
                iv(170, 170),
            ] {
                assert_eq!(
                    sorted(pi.range_search(q)),
                    sorted(bf.range_search(q)),
                    "buckets {buckets} query {q:?}"
                );
                assert_eq!(pi.range_count(q), bf.range_count(q), "buckets {buckets}");
            }
            for p in [0, 170, 349, 400] {
                assert_eq!(
                    sorted(pi.stab(p)),
                    sorted(bf.stab(p)),
                    "buckets {buckets} stab {p}"
                );
            }
        }
    }

    #[test]
    fn long_intervals_found_from_early_buckets() {
        // One very long interval starting at 0 must be found by a query
        // deep into the domain, across many buckets.
        let mut data = vec![iv(0, 100_000)];
        data.extend((0..100).map(|i| iv(i * 1000, i * 1000 + 10)));
        let pi = PeriodIndex::with_buckets(&data, 256);
        let hits = pi.range_search(iv(99_500, 99_600));
        assert!(hits.contains(&0), "long interval missed: {hits:?}");
    }

    #[test]
    fn negative_domain() {
        let data: Vec<_> = (-300..-200).map(|i| iv(i, i + 25)).collect();
        let pi = PeriodIndex::new(&data);
        let bf = BruteForce::new(&data);
        for q in [iv(-400, -100), iv(-250, -240), iv(-199, -150)] {
            assert_eq!(
                sorted(pi.range_search(q)),
                sorted(bf.range_search(q)),
                "{q:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_oracle(
            raw in prop::collection::vec((-500i64..500, 0i64..400), 1..250),
            queries in prop::collection::vec((-600i64..600, 0i64..500), 12),
            buckets in 1usize..300,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let pi = PeriodIndex::with_buckets(&data, buckets);
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(pi.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(pi.range_count(q), bf.range_count(q));
            }
        }
    }
}
