//! The HINTm index structure, assignment, and query evaluation.

use irs_core::{
    vec_bytes, Endpoint, GridEndpoint, Interval, ItemId, MemoryFootprint, PreparedSampler,
    RangeCount, RangeSampler, RangeSearch, WeightedRangeSampler,
};
use irs_sampling::AliasTable;

/// A stored interval: both endpoints plus the dataset id (first/last
/// partitions compare real endpoints, so both are kept inline).
#[derive(Clone, Copy, Debug)]
struct HEntry<E> {
    iv: Interval<E>,
    id: ItemId,
}

/// One partition's four sublists.
#[derive(Clone, Debug)]
struct Partition<E> {
    /// Originals whose last cell lies inside this partition.
    o_in: Vec<HEntry<E>>,
    /// Originals extending past this partition.
    o_aft: Vec<HEntry<E>>,
    /// Replicas whose last cell lies inside this partition.
    r_in: Vec<HEntry<E>>,
    /// Replicas extending past this partition.
    r_aft: Vec<HEntry<E>>,
}

impl<E> Partition<E> {
    const EMPTY: fn() -> Partition<E> = || Partition {
        o_in: Vec::new(),
        o_aft: Vec::new(),
        r_in: Vec::new(),
        r_aft: Vec::new(),
    };
}

/// The HINTm hierarchical interval index.
///
/// ```
/// use irs_hint::HintM;
/// use irs_core::{Interval, RangeSearch, RangeCount};
///
/// let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let hint = HintM::new(&data);
/// let q = Interval::new(200, 240);
/// assert_eq!(hint.range_count(q), 91);
/// assert_eq!(hint.range_search(q).len(), 91);
/// ```
#[derive(Debug)]
pub struct HintM<E> {
    /// Levels 0..=m; `levels[l]` holds `2^l` partitions.
    levels: Vec<Vec<Partition<E>>>,
    m: u32,
    /// `(min lo, max hi)` of the dataset; `None` when empty.
    domain: Option<(E, E)>,
    /// Bits a grid offset is shifted right by to obtain its bottom-level
    /// cell (comparison-free cell computation).
    shift: u32,
    len: usize,
    /// Optional per-interval weights (dataset order) for the weighted IRS
    /// baseline.
    weights: Vec<f64>,
}

impl<E: GridEndpoint> HintM<E> {
    /// Builds with an adaptively chosen number of levels
    /// (`m ≈ log₂ n − 6`, clamped to `[4, 16]` — partitions then average
    /// tens of intervals, mirroring the SIGMOD'22 tuning).
    pub fn new(data: &[Interval<E>]) -> Self {
        Self::with_levels(data, Self::default_m(data.len()))
    }

    /// Builds the weighted variant (see [`HintM::new`] for `m`).
    pub fn new_weighted(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        let mut hint = Self::with_levels(data, Self::default_m(data.len()));
        hint.weights = weights.to_vec();
        hint
    }

    fn default_m(n: usize) -> u32 {
        let lg = (n.max(2) as f64).log2().ceil() as i64;
        (lg - 6).clamp(4, 16) as u32
    }

    /// Builds with an explicit hierarchy depth `m` (levels `0..=m`,
    /// `2^m` bottom partitions).
    pub fn with_levels(data: &[Interval<E>], m: u32) -> Self {
        assert!(
            (1..=24).contains(&m),
            "m = {m} outside the supported 1..=24"
        );
        let domain = irs_core::domain_bounds(data);
        let mut levels: Vec<Vec<Partition<E>>> = (0..=m)
            .map(|l| (0..1u64 << l).map(|_| Partition::EMPTY()).collect())
            .collect();
        let shift = match domain {
            Some((lo, hi)) => {
                let extent = hi.grid_offset(lo);
                let bits = 64 - extent.leading_zeros();
                bits.saturating_sub(m)
            }
            None => 0,
        };
        let mut hint = HintM {
            levels,
            m,
            domain,
            shift,
            len: data.len(),
            weights: Vec::new(),
        };
        for (i, &iv) in data.iter().enumerate() {
            hint.assign(HEntry {
                iv,
                id: i as ItemId,
            });
        }
        // Release over-allocation from incremental pushes: the index is
        // static after build, so shrink every sublist.
        levels = std::mem::take(&mut hint.levels);
        for level in &mut levels {
            for p in level.iter_mut() {
                p.o_in.shrink_to_fit();
                p.o_aft.shrink_to_fit();
                p.r_in.shrink_to_fit();
                p.r_aft.shrink_to_fit();
            }
        }
        hint.levels = levels;
        hint
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hierarchy depth (levels `0..=m`).
    pub fn num_levels(&self) -> u32 {
        self.m
    }

    /// Whether the index carries per-interval weights (built with
    /// [`HintM::new_weighted`], or decoded from a weighted snapshot).
    /// Empty indexes report `false` either way.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Bottom-level grid cell of `v` (must be within the domain).
    #[inline]
    fn cell(&self, v: E) -> u64 {
        let (lo, _) = self.domain.expect("cell() on empty index");
        v.grid_offset(lo) >> self.shift
    }

    /// Segment-tree style decomposition of the entry's cell span into at
    /// most two partitions per level; the leftmost piece (containing the
    /// start cell) becomes the original, all others replicas.
    fn assign(&mut self, entry: HEntry<E>) {
        let first_cell = self.cell(entry.iv.lo);
        let last_cell = self.cell(entry.iv.hi);
        // Collect pieces as (level, partition index).
        let mut pieces: Vec<(u32, u64)> = Vec::with_capacity(2 * self.m as usize);
        let mut a = first_cell;
        let mut b = last_cell;
        let mut l = self.m;
        loop {
            if a == b {
                pieces.push((l, a));
                break;
            }
            if a % 2 == 1 {
                pieces.push((l, a));
                a += 1;
            }
            if b.is_multiple_of(2) {
                pieces.push((l, b));
                if b == 0 {
                    break; // a == b == 0 was already handled; defensive
                }
                b -= 1;
            }
            if a > b {
                break;
            }
            a >>= 1;
            b >>= 1;
            l -= 1;
        }

        // The original is the piece whose cell range starts leftmost; it
        // is the unique piece containing `first_cell`.
        let piece_start = |&(l, f): &(u32, u64)| f << (self.m - l);
        let orig_idx = pieces
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| piece_start(p))
            .map(|(i, _)| i)
            .expect("at least one piece");

        for (i, &(l, f)) in pieces.iter().enumerate() {
            let piece_end = ((f + 1) << (self.m - l)) - 1;
            let ends_inside = last_cell <= piece_end;
            let p = &mut self.levels[l as usize][f as usize];
            match (i == orig_idx, ends_inside) {
                (true, true) => p.o_in.push(entry),
                (true, false) => p.o_aft.push(entry),
                (false, true) => p.r_in.push(entry),
                (false, false) => p.r_aft.push(entry),
            }
        }
    }

    /// Core query evaluation: calls `emit` exactly once for every interval
    /// overlapping `q`. Comparisons only occur in the first and last
    /// partition of each level.
    fn for_each_overlap(&self, q: Interval<E>, mut emit: impl FnMut(&HEntry<E>)) {
        let Some((dmin, dmax)) = self.domain else {
            return;
        };
        if q.hi < dmin || dmax < q.lo {
            return;
        }
        // Clamp the query to the domain: overlap semantics against indexed
        // intervals are unchanged, and cell computation stays in range.
        let qlo = if q.lo < dmin { dmin } else { q.lo };
        let qhi = if q.hi > dmax { dmax } else { q.hi };
        let first_cell = self.cell(qlo);
        let last_cell = self.cell(qhi);

        for l in 0..=self.m {
            let f = first_cell >> (self.m - l);
            let t = last_cell >> (self.m - l);
            let level = &self.levels[l as usize];
            // First partition: comparisons on the left boundary; replicas
            // are scanned here and only here.
            {
                let p = &level[f as usize];
                let same = f == t;
                for e in &p.o_in {
                    if e.iv.hi >= qlo && (!same || e.iv.lo <= qhi) {
                        emit(e);
                    }
                }
                for e in &p.o_aft {
                    // Ends after this partition ⇒ hi ≥ qlo automatically.
                    if !same || e.iv.lo <= qhi {
                        emit(e);
                    }
                }
                for e in &p.r_in {
                    // Replica ⇒ starts before this partition ⇒ lo < qlo.
                    if e.iv.hi >= qlo {
                        emit(e);
                    }
                }
                for e in &p.r_aft {
                    emit(e);
                }
            }
            // Middle partitions: comparison-free.
            for fi in (f + 1)..t {
                let p = &level[fi as usize];
                for e in &p.o_in {
                    emit(e);
                }
                for e in &p.o_aft {
                    emit(e);
                }
            }
            // Last partition (when distinct): right-boundary comparisons.
            if t > f {
                let p = &level[t as usize];
                for e in &p.o_in {
                    if e.iv.lo <= qhi {
                        emit(e);
                    }
                }
                for e in &p.o_aft {
                    if e.iv.lo <= qhi {
                        emit(e);
                    }
                }
            }
        }
    }
}

impl<E: GridEndpoint> irs_core::StabbingQuery<E> for HintM<E> {
    /// Stabbing as a degenerate range query (`q.lo = q.hi = p`).
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        self.for_each_overlap(Interval::point(p), |e| out.push(e.id));
    }
}

impl<E: GridEndpoint> RangeSearch<E> for HintM<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.for_each_overlap(q, |e| out.push(e.id));
    }
}

impl<E: GridEndpoint> RangeCount<E> for HintM<E> {
    /// Counting version: middle partitions contribute list lengths in
    /// `O(1)`; only first/last partitions scan.
    fn range_count(&self, q: Interval<E>) -> usize {
        let Some((dmin, dmax)) = self.domain else {
            return 0;
        };
        if q.hi < dmin || dmax < q.lo {
            return 0;
        }
        let qlo = if q.lo < dmin { dmin } else { q.lo };
        let qhi = if q.hi > dmax { dmax } else { q.hi };
        let first_cell = self.cell(qlo);
        let last_cell = self.cell(qhi);
        let mut count = 0usize;
        for l in 0..=self.m {
            let f = first_cell >> (self.m - l);
            let t = last_cell >> (self.m - l);
            let level = &self.levels[l as usize];
            {
                let p = &level[f as usize];
                let same = f == t;
                count += p
                    .o_in
                    .iter()
                    .filter(|e| e.iv.hi >= qlo && (!same || e.iv.lo <= qhi))
                    .count();
                if same {
                    count += p.o_aft.iter().filter(|e| e.iv.lo <= qhi).count();
                } else {
                    count += p.o_aft.len();
                }
                count += p.r_in.iter().filter(|e| e.iv.hi >= qlo).count();
                count += p.r_aft.len();
            }
            for fi in (f + 1)..t {
                let p = &level[fi as usize];
                count += p.o_in.len() + p.o_aft.len();
            }
            if t > f {
                let p = &level[t as usize];
                count += p.o_in.iter().filter(|e| e.iv.lo <= qhi).count();
                count += p.o_aft.iter().filter(|e| e.iv.lo <= qhi).count();
            }
        }
        count
    }
}

/// Phase-2 handle of the HINTm baseline: materialized candidates, with the
/// per-query alias built during the sampling phase (as the paper accounts
/// it in Tables VI/IX).
pub struct HintPrepared<'a> {
    candidates: Vec<ItemId>,
    weights: Option<&'a [f64]>,
}

impl HintPrepared<'_> {
    /// Total result-set weight (1 per candidate on the uniform path):
    /// one pass over the already-materialized candidates, no re-search.
    pub fn total_weight(&self) -> f64 {
        irs_core::candidates_weight(&self.candidates, self.weights)
    }
}

impl PreparedSampler for HintPrepared<'_> {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.candidates.is_empty() {
            return;
        }
        match self.weights {
            None => {
                for _ in 0..s {
                    let k = rand::Rng::random_range(&mut *rng, 0..self.candidates.len());
                    out.push(self.candidates[k]);
                }
            }
            Some(weights) => {
                let ws: Vec<f64> = self
                    .candidates
                    .iter()
                    .map(|&id| weights[id as usize])
                    .collect();
                let alias = AliasTable::new(&ws);
                for _ in 0..s {
                    out.push(self.candidates[alias.sample(rng)]);
                }
            }
        }
    }
}

impl<E: GridEndpoint> RangeSampler<E> for HintM<E> {
    type Prepared<'a> = HintPrepared<'a>;

    fn prepare(&self, q: Interval<E>) -> HintPrepared<'_> {
        HintPrepared {
            candidates: self.range_search(q),
            weights: None,
        }
    }
}

impl<E: GridEndpoint> WeightedRangeSampler<E> for HintM<E> {
    type Prepared<'a> = HintPrepared<'a>;

    fn prepare_weighted(&self, q: Interval<E>) -> HintPrepared<'_> {
        assert!(
            !self.weights.is_empty() || self.len == 0,
            "weighted sampling requires HintM::new_weighted"
        );
        HintPrepared {
            candidates: self.range_search(q),
            weights: Some(&self.weights),
        }
    }
}

impl<E: Endpoint> MemoryFootprint for HintM<E> {
    fn heap_bytes(&self) -> usize {
        let mut bytes = vec_bytes(&self.levels) + vec_bytes(&self.weights);
        for level in &self.levels {
            bytes += level.capacity() * std::mem::size_of::<Partition<E>>();
            for p in level {
                bytes += vec_bytes(&p.o_in)
                    + vec_bytes(&p.o_aft)
                    + vec_bytes(&p.r_in)
                    + vec_bytes(&p.r_aft);
            }
        }
        bytes
    }
}

// ---------------------------------------------------------------------
// On-disk codec (see DESIGN.md, "On-disk snapshot format").

use irs_core::persist::{Codec, PersistError, Reader};

impl<E: Endpoint + Codec> Codec for HEntry<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.iv.encode_into(out);
        self.id.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(HEntry {
            iv: Interval::decode(r)?,
            id: ItemId::decode(r)?,
        })
    }
}

impl<E: Endpoint + Codec> Codec for Partition<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.o_in.encode_into(out);
        self.o_aft.encode_into(out);
        self.r_in.encode_into(out);
        self.r_aft.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Partition {
            o_in: Vec::decode(r)?,
            o_aft: Vec::decode(r)?,
            r_in: Vec::decode(r)?,
            r_aft: Vec::decode(r)?,
        })
    }
}

impl<E: GridEndpoint> Codec for HintM<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.levels.encode_into(out);
        self.m.encode_into(out);
        self.domain.encode_into(out);
        self.shift.encode_into(out);
        self.len.encode_into(out);
        self.weights.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let levels: Vec<Vec<Partition<E>>> = Vec::decode(r)?;
        let m = u32::decode(r)?;
        // The query loops index `levels[l][cell >> ..]` without bounds
        // checks being recoverable; the hierarchy shape must hold.
        if !(1..=24).contains(&m)
            || levels.len() != m as usize + 1
            || levels
                .iter()
                .enumerate()
                .any(|(l, level)| level.len() != 1usize << l)
        {
            return Err(PersistError::Corrupt {
                what: "HINTm hierarchy shape does not match its depth",
            });
        }
        let domain: Option<(E, E)> = Option::decode(r)?;
        if let Some((lo, hi)) = domain {
            if lo > hi {
                return Err(PersistError::Corrupt {
                    what: "HINTm domain bounds out of order",
                });
            }
        }
        let shift = u32::decode(r)?;
        if shift >= 64 {
            return Err(PersistError::Corrupt {
                what: "HINTm grid shift out of range",
            });
        }
        let len = usize::decode(r)?;
        let weights: Vec<f64> = Vec::decode(r)?;
        if !weights.is_empty() && weights.len() != len {
            return Err(PersistError::Corrupt {
                what: "HINTm weights do not match the dataset length",
            });
        }
        // Sampling indexes `weights[entry.id]`; an out-of-range id
        // would panic at query time, long after the load succeeded.
        let id_ok = |e: &HEntry<E>| (e.id as usize) < len;
        if levels.iter().flatten().any(|p| {
            !(p.o_in.iter().all(id_ok)
                && p.o_aft.iter().all(id_ok)
                && p.r_in.iter().all(id_ok)
                && p.r_aft.iter().all(id_ok))
        }) {
            return Err(PersistError::Corrupt {
                what: "HINTm entry id out of range",
            });
        }
        Ok(HintM {
            levels,
            m,
            domain,
            shift,
            len,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let h = HintM::<i64>::new(&[]);
        assert!(h.is_empty());
        assert!(h.range_search(iv(0, 10)).is_empty());
        assert_eq!(h.range_count(iv(0, 10)), 0);
    }

    #[test]
    fn single_interval_domain_of_one_point() {
        let h = HintM::new(&[iv(5, 5)]);
        assert_eq!(h.range_search(iv(0, 10)), vec![0]);
        assert_eq!(h.range_search(iv(5, 5)), vec![0]);
        assert!(h.range_search(iv(6, 10)).is_empty());
        assert!(h.range_search(iv(-10, 4)).is_empty());
    }

    #[test]
    fn fixture_matches_oracle_across_m() {
        let data = vec![
            iv(0, 100),
            iv(10, 20),
            iv(15, 15),
            iv(50, 99),
            iv(98, 120),
            iv(121, 121),
            iv(-40, -30),
            iv(-35, 60),
        ];
        let bf = BruteForce::new(&data);
        for m in [1, 2, 3, 5, 8, 12] {
            let h = HintM::with_levels(&data, m);
            for q in [
                iv(-100, 200),
                iv(12, 18),
                iv(99, 100),
                iv(120, 130),
                iv(-36, -36),
                iv(61, 97),
                iv(200, 300),
                iv(-100, -41),
            ] {
                assert_eq!(
                    sorted(h.range_search(q)),
                    sorted(bf.range_search(q)),
                    "m={m} query {q:?}"
                );
                assert_eq!(h.range_count(q), bf.range_count(q), "m={m} count {q:?}");
            }
        }
    }

    #[test]
    fn no_duplicate_reports() {
        // Long intervals replicate across many partitions; each must be
        // reported exactly once.
        let data: Vec<_> = (0..100).map(|i| iv(i, i + 500)).collect();
        let h = HintM::with_levels(&data, 6);
        for q in [iv(0, 600), iv(250, 260), iv(90, 510)] {
            let ids = h.range_search(q);
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len(), "duplicates for {q:?}");
        }
    }

    #[test]
    fn query_clamping_outside_domain() {
        let data: Vec<_> = (100..200).map(|i| iv(i, i + 10)).collect();
        let h = HintM::new(&data);
        let bf = BruteForce::new(&data);
        for q in [
            iv(-1000, 1000),
            iv(0, 105),
            iv(205, 400),
            iv(-5, 99),
            iv(211, 300),
        ] {
            assert_eq!(
                sorted(h.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn negative_domain() {
        let data: Vec<_> = (-500..-400).map(|i| iv(i, i + 30)).collect();
        let h = HintM::new(&data);
        let bf = BruteForce::new(&data);
        for q in [iv(-600, -300), iv(-450, -440), iv(-380, -370)] {
            assert_eq!(
                sorted(h.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn sampling_supports_result_set() {
        let data: Vec<_> = (0..500).map(|i| iv(i, i + 25)).collect();
        let h = HintM::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(100, 150);
        let support = sorted(bf.range_search(q));
        let mut rng = StdRng::seed_from_u64(1);
        let samples = h.sample(q, 3000, &mut rng);
        assert_eq!(samples.len(), 3000);
        for id in samples {
            assert!(support.binary_search(&id).is_ok());
        }
    }

    #[test]
    fn weighted_sampling_prefers_heavy() {
        let data = vec![iv(0, 10); 4];
        let weights = vec![1.0, 1.0, 1.0, 97.0];
        let h = HintM::new_weighted(&data, &weights);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = h.sample_weighted(iv(3, 7), 2000, &mut rng);
        let heavy = samples.iter().filter(|&&id| id == 3).count();
        assert!(heavy > 1800, "heavy drawn {heavy}/2000");
    }

    #[test]
    fn footprint_is_linear_ish() {
        let data: Vec<_> = (0..50_000).map(|i| iv(i, i + 100)).collect();
        let h = HintM::new(&data);
        let bytes = h.heap_bytes();
        // Each interval is stored O(m) times worst case but O(1) average
        // here (short intervals): expect well under 100 bytes/interval.
        assert!(bytes < 50_000 * 160, "HINTm footprint {bytes} too large");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_oracle(
            raw in prop::collection::vec((-1000i64..1000, 0i64..700), 1..250),
            queries in prop::collection::vec((-1200i64..1200, 0i64..900), 12),
            m in 1u32..10,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let h = HintM::with_levels(&data, m);
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(h.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(h.range_count(q), bf.range_count(q));
            }
        }
    }
}
