//! HINTm — the Hierarchical INdex for inTervals of Christodoulou, Bouros,
//! and Mamoulis (SIGMOD 2022), reimplemented clean-room as the paper's
//! state-of-the-art *range search* baseline.
//!
//! # Structure
//!
//! The domain is snapped onto a grid of `2^m` cells; level `l ∈ [0, m]`
//! partitions the grid into `2^l` equal partitions. An interval is
//! decomposed segment-tree style into `O(m)` partitions that exactly cover
//! its cell span. The unique leftmost piece (the one containing the
//! interval's start cell) stores the interval as an **original**; all other
//! pieces store **replicas**. Each partition keeps four sublists by the
//! (original, ends inside / after this partition) distinction: `O_in`,
//! `O_aft`, `R_in`, `R_aft`.
//!
//! # Query
//!
//! For query `[q.lo, q.hi]`, each level scans the partitions spanning the
//! query's cell range. Endpoint comparisons are needed only in the first
//! and last partition of each level; middle partitions report all
//! originals comparison-free. Replicas are scanned only in the first
//! partition, which — because the decomposition pieces of an interval are
//! disjoint — guarantees every result is reported exactly once.
//!
//! Range search costs `Ω(|q ∩ X|)`: fast in practice, but inherently
//! output-sensitive, which is exactly the drawback the AIT's sampling
//! avoids (Table I of the paper).
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n · m)` worst case | segment-tree decomposition per interval |
//! | Range search | `Ω(\|q ∩ X\|)` | comparisons only in boundary partitions |
//! | Range count | `Ω(partitions)` | middle partitions count in `O(1)` |
//! | IRS (either problem) | `Ω(\|q ∩ X\| + s)` | search-then-sample (§V baseline) |
//! | Space | `O(n · m)` worst case, ~`O(n)` typical | replicas per level |
//!
//! Snapshots: [`HintM`] implements [`irs_core::persist::Codec`], storing
//! every partition's four sublists plus the grid geometry (see
//! `DESIGN.md`, "On-disk snapshot format").

#![deny(missing_docs)]

mod index;

pub use index::{HintM, HintPrepared};
