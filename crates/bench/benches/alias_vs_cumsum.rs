//! Ablation: Walker's alias method vs the cumulative-sum method vs naive
//! linear scan, for both build and draw — justifying §II-C's choices
//! (alias where many draws amortize the O(n) build; cumulative sum where
//! per-record prefix arrays already exist).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irs_sampling::{AliasTable, CumulativeSum};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn weights(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n).map(|_| rng.random_range(1.0..100.0)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("weighted_build");
    g.sample_size(20);
    for n in [64usize, 1024, 16_384] {
        let ws = weights(n);
        g.bench_with_input(BenchmarkId::new("alias", n), &ws, |b, ws| {
            b.iter(|| black_box(AliasTable::new(ws)))
        });
        g.bench_with_input(BenchmarkId::new("cumsum", n), &ws, |b, ws| {
            b.iter(|| black_box(CumulativeSum::new(ws)))
        });
    }
    g.finish();
}

fn bench_draw(c: &mut Criterion) {
    let mut g = c.benchmark_group("weighted_draw_1000");
    g.sample_size(20);
    for n in [64usize, 1024, 16_384] {
        let ws = weights(n);
        let alias = AliasTable::new(&ws);
        let cum = CumulativeSum::new(&ws);
        g.bench_with_input(BenchmarkId::new("alias_o1", n), &alias, |b, t| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc ^= t.sample(&mut rng);
                }
                black_box(acc)
            })
        });
        g.bench_with_input(BenchmarkId::new("cumsum_logn", n), &cum, |b, t| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc ^= t.sample(&mut rng);
                }
                black_box(acc)
            })
        });
        // Naive linear scan over raw weights per draw, the O(n) floor.
        g.bench_with_input(BenchmarkId::new("linear_scan", n), &ws, |b, ws| {
            let total: f64 = ws.iter().sum();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    let mut u = rng.random_range(0.0..total);
                    let mut pick = 0usize;
                    for (i, &w) in ws.iter().enumerate() {
                        if u < w {
                            pick = i;
                            break;
                        }
                        u -= w;
                    }
                    acc ^= pick;
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_draw);
criterion_main!(benches);
