//! Ablation: KDS leaf bucket size. Small leaves mean deeper trees and more
//! canonical pieces per query; large leaves mean longer boundary scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irs_core::{Interval64, RangeSampler};
use irs_datagen::{QueryWorkload, TAXI};
use irs_kds::Kds;
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_leaf_size(c: &mut Criterion) {
    let n = 100_000;
    let data = TAXI.generate(n, 42);
    let queries: Vec<Interval64> =
        QueryWorkload::new((0, TAXI.domain_size)).generate(32, 8.0, 7);

    let mut g = c.benchmark_group("kds_leaf_size");
    g.sample_size(15);
    for leaf in [2usize, 8, 16, 64, 256, 1024] {
        let kds = Kds::with_leaf_size(&data, leaf);
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(leaf), &kds, |b, kds| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    total += kds.sample(q, 1000, &mut rng).len();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_leaf_size);
criterion_main!(benches);
