//! Micro-benchmarks of the hot query paths: AIT record computation
//! (Algorithm 1 lines 1-21), the per-query alias build over `R`, the
//! per-sample draw, AWIT's weighted draw, and HINTm / interval-tree range
//! search for context.

use criterion::{criterion_group, criterion_main, Criterion};
use irs_ait::{Ait, Awit};
use irs_core::{
    Interval64, PreparedSampler, RangeCount, RangeSampler, RangeSearch, WeightedRangeSampler,
};
use irs_datagen::{uniform_weights, QueryWorkload, BOOK};
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_hot_paths(c: &mut Criterion) {
    let n = 200_000;
    let data = BOOK.generate(n, 42);
    let weights = uniform_weights(n, 43);
    let queries: Vec<Interval64> =
        QueryWorkload::new((0, BOOK.domain_size)).generate(64, 8.0, 7);

    let ait = Ait::new(&data);
    let awit = Awit::new(&data, &weights);
    let hint = HintM::new(&data);
    let itree = IntervalTree::new(&data);

    let mut g = c.benchmark_group("hot_paths");
    g.sample_size(20);

    g.bench_function("ait_collect_records", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += ait.prepare(q).candidate_count();
            }
            black_box(total)
        })
    });

    g.bench_function("ait_range_count", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += ait.range_count(q);
            }
            black_box(total)
        })
    });

    g.bench_function("ait_sample_1000", |b| {
        let prepared: Vec<_> = queries.iter().map(|&q| ait.prepare(q)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::with_capacity(1000);
        b.iter(|| {
            let mut total = 0usize;
            for p in &prepared {
                out.clear();
                p.sample_into(&mut rng, 1000, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });

    g.bench_function("awit_sample_1000_weighted", |b| {
        let prepared: Vec<_> = queries.iter().map(|&q| awit.prepare_weighted(q)).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::with_capacity(1000);
        b.iter(|| {
            let mut total = 0usize;
            for p in &prepared {
                out.clear();
                p.sample_into(&mut rng, 1000, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });

    g.bench_function("hint_range_search", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                out.clear();
                hint.range_search_into(q, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });

    g.bench_function("interval_tree_range_search", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                out.clear();
                itree.range_search_into(q, &mut out);
                total += out.len();
            }
            black_box(total)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_hot_paths);
criterion_main!(benches);
