//! Ablation: AIT-V bucket size around the paper's `⌈log₂ n⌉` choice.
//! Larger buckets shrink the virtual AIT (memory, candidate time) but
//! loosen virtual intervals, raising the rejection rate; smaller buckets
//! converge to a plain AIT with linear extra space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irs_ait::AitV;
use irs_core::{Interval64, RangeSampler};
use irs_datagen::{QueryWorkload, RENFE};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_bucket_size(c: &mut Criterion) {
    let n = 100_000;
    let data = RENFE.generate(n, 42);
    let queries: Vec<Interval64> =
        QueryWorkload::new((0, RENFE.domain_size)).generate(32, 8.0, 7);
    let log_n = (n as f64).log2().ceil() as usize; // = 17, the paper's pick

    let mut g = c.benchmark_group("aitv_bucket_size");
    g.sample_size(15);
    for bucket in [1usize, 4, log_n / 2, log_n, 2 * log_n, 8 * log_n] {
        let aitv = AitV::with_bucket_size(&data, bucket);
        g.throughput(Throughput::Elements(queries.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(bucket), &aitv, |b, aitv| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    total += aitv.sample(q, 1000, &mut rng).len();
                }
                black_box(total)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bucket_size);
criterion_main!(benches);
