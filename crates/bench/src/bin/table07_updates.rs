//! Table VII: amortized AIT update time. Builds on `n − k` intervals and
//! inserts the remaining `k` one-by-one / batched; deletion removes `k`
//! intervals from the full index. The paper uses k = 5,000.

use irs_ait::Ait;
use irs_bench::*;

fn main() {
    let cfg = BenchConfig::from_env();
    let k = 5_000.min(cfg.scale / 4);
    println!(
        "{}",
        cfg.banner("Table VII: amortized update time of AIT [millisec]")
    );
    println!("(k = {k} updates per measurement)");
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Insertion", vec![]),
        ("Batch insertion", vec![]),
        ("Deletion", vec![]),
    ];
    for ds in &sets {
        let (base, tail) = ds.data.split_at(ds.data.len() - k);

        // One-by-one insertion.
        let mut ait = Ait::new(base);
        let (dt, _) = time(|| {
            for &iv in tail {
                ait.insert(iv);
            }
        });
        rows[0]
            .1
            .push(format!("{:.3}", dt.as_secs_f64() * 1e3 / k as f64));
        drop(ait);

        // Batch insertion through the pool.
        let mut ait = Ait::new(base);
        let (dt, _) = time(|| {
            for &iv in tail {
                ait.insert_buffered(iv);
            }
            ait.flush_pool();
        });
        rows[1]
            .1
            .push(format!("{:.3}", dt.as_secs_f64() * 1e3 / k as f64));
        drop(ait);

        // Deletion from the full index.
        let mut ait = Ait::new(&ds.data);
        let first_victim = (ds.data.len() - k) as u32;
        let (dt, _) = time(|| {
            for (off, &iv) in tail.iter().enumerate() {
                assert!(ait.delete(iv, first_victim + off as u32));
            }
        });
        rows[2]
            .1
            .push(format!("{:.3}", dt.as_secs_f64() * 1e3 / k as f64));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
