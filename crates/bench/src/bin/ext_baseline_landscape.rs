//! Extension experiment: the full interval-structure landscape. Extends
//! Tables V/VI with the two remaining related-work baselines the paper
//! discusses but does not bench (timeline index, period index — both were
//! already shown inferior to HINTm in SIGMOD'22) plus the segment tree's
//! stabbing-only profile. One table: candidate time, sampling time, and
//! end-to-end IRS time per structure at the default workload.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;
use irs_period_index::PeriodIndex;
use irs_timeline::TimelineIndex;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Extension: full baseline landscape (candidate / sampling / total, microsec)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let queries = ds.queries(&cfg, 8.0);
        println!(
            "{}",
            row(
                "structure",
                &["candidate".into(), "sampling".into(), "total".into()]
            )
        );
        macro_rules! measure {
            ($name:expr, $idx:expr) => {{
                let idx = $idx;
                let candidate = avg_candidate_micros(&idx, &queries);
                let sampling = avg_sampling_micros(&idx, &queries, cfg.s, cfg.seed);
                let total = avg_total_micros(&idx, &queries, cfg.s, cfg.seed);
                let cells = vec![us(candidate), us(sampling), us(total)];
                println!("{}", row($name, &cells));
                JsonRow::new("baseline_landscape")
                    .str("dataset", ds.name())
                    .str("structure", $name)
                    .int("n", cfg.scale)
                    .int("s", cfg.s)
                    .num("candidate_us", candidate)
                    .num("sampling_us", sampling)
                    .num("total_us", total)
                    .emit();
            }};
        }
        measure!("Interval tree", IntervalTree::new(&ds.data));
        measure!("Timeline", TimelineIndex::new(&ds.data));
        measure!("Period index", PeriodIndex::new(&ds.data));
        measure!("HINTm", HintM::new(&ds.data));
        measure!("KDS", Kds::new(&ds.data));
        measure!("AIT", Ait::new(&ds.data));
        measure!("AIT-V", AitV::new(&ds.data));
    }
}
