//! Fig. 5: pre-processing time and memory of AIT and AIT-V as the dataset
//! size grows (20%..100% of n, log-scale series in the paper).

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_core::MemoryFootprint;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 5: AIT / AIT-V build time [sec] and memory [GB] vs n")
    );
    let sets = datasets(&cfg);

    println!("\n(a)+(b) pre-processing time [sec]");
    println!(
        "{}",
        row("size%", &["AIT".into(), "AIT-V".into(), "dataset".into()])
    );
    for ds in &sets {
        for pct in [20, 40, 60, 80, 100] {
            let n = ds.data.len() * pct / 100;
            let slice = &ds.data[..n];
            let (t_ait, ait) = time(|| Ait::new(slice));
            let (t_aitv, aitv) = time(|| AitV::new(slice));
            println!(
                "{}",
                row(
                    &format!("{pct}%"),
                    &[secs(t_ait), secs(t_aitv), ds.name().into()]
                )
            );
            std::hint::black_box((ait.len(), aitv.len()));
        }
    }

    println!("\n(c)+(d) memory usage [GB]");
    println!(
        "{}",
        row("size%", &["AIT".into(), "AIT-V".into(), "dataset".into()])
    );
    for ds in &sets {
        for pct in [20, 40, 60, 80, 100] {
            let n = ds.data.len() * pct / 100;
            let slice = &ds.data[..n];
            let ait = Ait::new(slice);
            let aitv = AitV::new(slice);
            println!(
                "{}",
                row(
                    &format!("{pct}%"),
                    &[
                        gb(ait.heap_bytes()),
                        gb(aitv.heap_bytes()),
                        ds.name().into()
                    ]
                )
            );
        }
    }
}
