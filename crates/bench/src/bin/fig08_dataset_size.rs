//! Fig. 8: total running time vs dataset size (non-weighted). The search
//! baselines scale with `n` (`|q ∩ X| = Ω(n)`); AIT and AIT-V are flat.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 8: running time [microsec] vs dataset size (non-weighted)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let queries = ds.queries(&cfg, 8.0);
        println!(
            "{}",
            row(
                "size%",
                &[
                    "Interval tree".into(),
                    "HINTm".into(),
                    "KDS".into(),
                    "AIT".into(),
                    "AIT-V".into()
                ]
            )
        );
        for pct in [20, 40, 60, 80, 100] {
            let n = ds.data.len() * pct / 100;
            let slice = &ds.data[..n];
            let itree = IntervalTree::new(slice);
            let hint = HintM::new(slice);
            let kds = Kds::new(slice);
            let ait = Ait::new(slice);
            let aitv = AitV::new(slice);
            let cells = vec![
                us(avg_total_micros(&itree, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&hint, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&kds, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&ait, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&aitv, &queries, cfg.s, cfg.seed)),
            ];
            println!("{}", row(&format!("{pct}%"), &cells));
        }
    }
}
