//! Extension experiment: engine throughput scaling. Measures
//! queries/sec of the sharded batch engine (`irs-engine`) for sample,
//! search, and count workloads across shard counts and batch sizes, on
//! one calibrated dataset. Emits one JSON row per (kind, shards, batch)
//! cell via the shared `JsonRow` emitter alongside the human table.
//!
//! Extra env knobs beyond the usual `IRS_BENCH_*` set:
//!
//! - `IRS_BENCH_SHARDS`  — comma list of shard counts (default: powers
//!   of two up to the CPU count)
//! - `IRS_BENCH_BATCHES` — comma list of batch sizes (default 64,256,1024)
//! - `IRS_BENCH_KINDS`   — comma list of index kinds (default ait,ait-v)

use irs_bench::{time, BenchConfig, JsonRow};
use irs_engine::throughput::{batched_qps, cpu_count, default_shard_sweep};
use irs_engine::{Engine, EngineConfig, IndexKind, Query};

fn env_list(key: &str, default: Vec<usize>) -> Vec<usize> {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => {
            irs_engine::throughput::parse_count_list(&v).unwrap_or_else(|e| panic!("{key}: {e}"))
        }
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    let cpus = cpu_count();
    let shard_counts = env_list("IRS_BENCH_SHARDS", default_shard_sweep());
    let batch_sizes = env_list("IRS_BENCH_BATCHES", vec![64, 256, 1024]);
    let kinds: Vec<IndexKind> = match std::env::var("IRS_BENCH_KINDS") {
        Err(_) => vec![IndexKind::Ait, IndexKind::AitV],
        Ok(v) => v
            .split(',')
            .map(|p| IndexKind::parse(p.trim()).unwrap_or_else(|| panic!("unknown kind `{p}`")))
            .collect(),
    };

    println!(
        "{}",
        cfg.banner("Extension: sharded engine throughput (queries/sec)")
    );
    println!("({cpus} CPUs; dataset = Taxi profile at n = {})", cfg.scale);
    let data = irs_datagen::TAXI.generate(cfg.scale, cfg.seed);
    let queries =
        irs_datagen::QueryWorkload::from_data(&data).generate(cfg.queries, 1.0, cfg.seed ^ 0xE61E);

    println!(
        "{:>14} {:>7} {:>7} {:>12} {:>12} {:>12}",
        "kind", "shards", "batch", "sample q/s", "search q/s", "count q/s"
    );
    for &kind in &kinds {
        for &shards in &shard_counts {
            let (build, engine) = time(|| {
                Engine::try_new(&data, EngineConfig::new(kind).shards(shards).seed(cfg.seed))
                    .expect("engine build")
            });
            for &batch in &batch_sizes {
                let sample_qps =
                    batched_qps(&engine, &queries, batch, |&q| Query::Sample { q, s: cfg.s });
                let search_qps = batched_qps(&engine, &queries, batch, |&q| Query::Search { q });
                let count_qps = batched_qps(&engine, &queries, batch, |&q| Query::Count { q });
                println!(
                    "{:>14} {shards:>7} {batch:>7} {sample_qps:>12.0} {search_qps:>12.0} {count_qps:>12.0}",
                    kind.name()
                );
                JsonRow::new("engine_throughput")
                    .str("kind", kind.name())
                    .int("n", cfg.scale)
                    .int("shards", shards)
                    .int("batch", batch)
                    .int("s", cfg.s)
                    .int("queries", queries.len())
                    .num("build_secs", build.as_secs_f64())
                    .num("sample_qps", sample_qps)
                    .num("search_qps", search_qps)
                    .num("count_qps", count_qps)
                    .emit();
            }
        }
    }
}
