//! Fig. 7: total running time vs sample size `s` (non-weighted). Search
//! baselines are flat in `s` (dominated by candidate computation); KDS,
//! AIT, and AIT-V grow linearly in `s`.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

const SAMPLE_SIZES: [usize; 5] = [100, 300, 1_000, 3_000, 10_000];

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 7: running time [microsec] vs sample size (non-weighted)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let queries = ds.queries(&cfg, 8.0);
        let itree = IntervalTree::new(&ds.data);
        let hint = HintM::new(&ds.data);
        let kds = Kds::new(&ds.data);
        let ait = Ait::new(&ds.data);
        let aitv = AitV::new(&ds.data);
        println!(
            "{}",
            row(
                "s",
                &[
                    "Interval tree".into(),
                    "HINTm".into(),
                    "KDS".into(),
                    "AIT".into(),
                    "AIT-V".into()
                ]
            )
        );
        for s in SAMPLE_SIZES {
            let cells = vec![
                us(avg_total_micros(&itree, &queries, s, cfg.seed)),
                us(avg_total_micros(&hint, &queries, s, cfg.seed)),
                us(avg_total_micros(&kds, &queries, s, cfg.seed)),
                us(avg_total_micros(&ait, &queries, s, cfg.seed)),
                us(avg_total_micros(&aitv, &queries, s, cfg.seed)),
            ];
            println!("{}", row(&s.to_string(), &cells));
        }
    }
}
