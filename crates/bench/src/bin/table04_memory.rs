//! Table IV: memory usage per structure and dataset, non-weighted case.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_core::MemoryFootprint;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table IV: memory usage [GB] (non-weighted)")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Interval tree", vec![]),
        ("HINTm", vec![]),
        ("KDS", vec![]),
        ("AIT", vec![]),
        ("AIT-V", vec![]),
    ];
    for ds in &sets {
        rows[0].1.push(gb(IntervalTree::new(&ds.data).heap_bytes()));
        rows[1].1.push(gb(HintM::new(&ds.data).heap_bytes()));
        rows[2].1.push(gb(Kds::new(&ds.data).heap_bytes()));
        rows[3].1.push(gb(Ait::new(&ds.data).heap_bytes()));
        rows[4].1.push(gb(AitV::new(&ds.data).heap_bytes()));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
