//! Table V: average candidate computation time per query — the paper's
//! phase 1 (`q ∩ X` for search baselines, the record set `R` for the AIT
//! family, the canonical decomposition for KDS). Default 8% extent.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table V: candidate computation time [microsec]")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Interval tree", vec![]),
        ("HINTm", vec![]),
        ("KDS", vec![]),
        ("AIT", vec![]),
        ("AIT-V", vec![]),
    ];
    for ds in &sets {
        let queries = ds.queries(&cfg, 8.0);
        let itree = IntervalTree::new(&ds.data);
        rows[0].1.push(us(avg_candidate_micros(&itree, &queries)));
        drop(itree);
        let hint = HintM::new(&ds.data);
        rows[1].1.push(us(avg_candidate_micros(&hint, &queries)));
        drop(hint);
        let kds = Kds::new(&ds.data);
        rows[2].1.push(us(avg_candidate_micros(&kds, &queries)));
        drop(kds);
        let ait = Ait::new(&ds.data);
        rows[3].1.push(us(avg_candidate_micros(&ait, &queries)));
        drop(ait);
        let aitv = AitV::new(&ds.data);
        rows[4].1.push(us(avg_candidate_micros(&aitv, &queries)));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
