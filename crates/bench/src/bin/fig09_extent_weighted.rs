//! Fig. 9: total running time vs query extent, *weighted* case. The
//! search baselines now pay `O(|q ∩ X|)` alias construction per query;
//! AWIT grows only through the `log` factor of in-record draws.

use irs_ait::Awit;
use irs_bench::*;
use irs_datagen::uniform_weights;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

const EXTENTS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0];

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 9: running time [microsec] vs domain extent (weighted)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let weights = uniform_weights(ds.data.len(), cfg.seed ^ 0xA11A5);
        let itree = IntervalTree::new_weighted(&ds.data, &weights);
        let hint = HintM::new_weighted(&ds.data, &weights);
        let kds = Kds::new_weighted(&ds.data, &weights);
        let awit = Awit::new(&ds.data, &weights);
        println!(
            "{}",
            row(
                "extent%",
                &[
                    "Interval tree".into(),
                    "HINTm".into(),
                    "KDS".into(),
                    "AWIT".into()
                ]
            )
        );
        for extent in EXTENTS {
            let queries = ds.queries(&cfg, extent);
            let cells = vec![
                us(avg_total_micros_weighted(&itree, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&hint, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&kds, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&awit, &queries, cfg.s, cfg.seed)),
            ];
            println!("{}", row(&format!("{extent}%"), &cells));
        }
    }
}
