//! Table X: range counting time — AIT (`O(log² n)`, Corollary 1) vs the
//! counting versions of HINTm and the kd-tree (`O(√n)`).

use irs_ait::Ait;
use irs_bench::*;
use irs_core::RangeCount;
use irs_hint::HintM;
use irs_kds::Kds;
use std::time::Duration;

fn avg_count_micros<C: RangeCount<i64>>(index: &C, queries: &[irs_core::Interval64]) -> f64 {
    let mut total = Duration::ZERO;
    for &q in queries {
        let (dt, c) = time(|| index.range_count(q));
        total += dt;
        std::hint::black_box(c);
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

fn main() {
    let cfg = BenchConfig::from_env();
    println!("{}", cfg.banner("Table X: range counting time [microsec]"));
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> =
        vec![("AIT", vec![]), ("HINTm", vec![]), ("kd-tree", vec![])];
    for ds in &sets {
        let queries = ds.queries(&cfg, 8.0);
        let ait = Ait::new(&ds.data);
        rows[0].1.push(us(avg_count_micros(&ait, &queries)));
        drop(ait);
        let hint = HintM::new(&ds.data);
        rows[1].1.push(us(avg_count_micros(&hint, &queries)));
        drop(hint);
        let kds = Kds::new(&ds.data);
        rows[2].1.push(us(avg_count_micros(&kds, &queries)));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
