//! Table VIII: AWIT pre-processing time and memory usage (weighted case).

use irs_ait::Awit;
use irs_bench::*;
use irs_core::MemoryFootprint;
use irs_datagen::uniform_weights;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table VIII: AWIT pre-processing time [sec] and memory [GB]")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut prep: Vec<String> = vec![];
    let mut mem: Vec<String> = vec![];
    for ds in &sets {
        let weights = uniform_weights(ds.data.len(), cfg.seed ^ 0xA11A5);
        let (dt, awit) = time(|| Awit::new(&ds.data, &weights));
        prep.push(secs(dt));
        mem.push(gb(awit.heap_bytes()));
    }
    println!("{}", row("Pre-processing", &prep));
    println!("{}", row("Memory", &mem));
}
