//! Fig. 10: total running time vs dataset size, *weighted* case.

use irs_ait::Awit;
use irs_bench::*;
use irs_datagen::uniform_weights;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 10: running time [microsec] vs dataset size (weighted)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let queries = ds.queries(&cfg, 8.0);
        let weights = uniform_weights(ds.data.len(), cfg.seed ^ 0xA11A5);
        println!(
            "{}",
            row(
                "size%",
                &[
                    "Interval tree".into(),
                    "HINTm".into(),
                    "KDS".into(),
                    "AWIT".into()
                ]
            )
        );
        for pct in [20, 40, 60, 80, 100] {
            let n = ds.data.len() * pct / 100;
            let slice = &ds.data[..n];
            let wslice = &weights[..n];
            let itree = IntervalTree::new_weighted(slice, wslice);
            let hint = HintM::new_weighted(slice, wslice);
            let kds = Kds::new_weighted(slice, wslice);
            let awit = Awit::new(slice, wslice);
            let cells = vec![
                us(avg_total_micros_weighted(&itree, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&hint, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&kds, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros_weighted(&awit, &queries, cfg.s, cfg.seed)),
            ];
            println!("{}", row(&format!("{pct}%"), &cells));
        }
    }
}
