//! Table IX: average sampling time per query in the *weighted* case
//! (alias building included). Interval tree and HINTm must build a
//! per-query alias over all of `q ∩ X` — the `O(|q ∩ X|)` cost the AWIT
//! avoids; KDS's weighted mode is included as in the paper even though it
//! is approximate there (ours is exact thanks to prefix-sum pieces).

use irs_ait::Awit;
use irs_bench::*;
use irs_datagen::uniform_weights;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table IX: sampling time [microsec] (weighted, alias build included)")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Interval tree", vec![]),
        ("HINTm", vec![]),
        ("KDS", vec![]),
        ("AWIT", vec![]),
    ];
    for ds in &sets {
        let weights = uniform_weights(ds.data.len(), cfg.seed ^ 0xA11A5);
        let queries = ds.queries(&cfg, 8.0);
        let itree = IntervalTree::new_weighted(&ds.data, &weights);
        rows[0].1.push(us(avg_sampling_micros_weighted(
            &itree, &queries, cfg.s, cfg.seed,
        )));
        drop(itree);
        let hint = HintM::new_weighted(&ds.data, &weights);
        rows[1].1.push(us(avg_sampling_micros_weighted(
            &hint, &queries, cfg.s, cfg.seed,
        )));
        drop(hint);
        let kds = Kds::new_weighted(&ds.data, &weights);
        rows[2].1.push(us(avg_sampling_micros_weighted(
            &kds, &queries, cfg.s, cfg.seed,
        )));
        drop(kds);
        let awit = Awit::new(&ds.data, &weights);
        rows[3].1.push(us(avg_sampling_micros_weighted(
            &awit, &queries, cfg.s, cfg.seed,
        )));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
