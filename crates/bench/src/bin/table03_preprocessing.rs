//! Table III: pre-processing (index build) time per structure and dataset,
//! non-weighted case.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table III: pre-processing time [sec] (non-weighted)")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Interval tree", vec![]),
        ("HINTm", vec![]),
        ("KDS", vec![]),
        ("AIT", vec![]),
        ("AIT-V", vec![]),
    ];
    for ds in &sets {
        let (dt, t) = time(|| IntervalTree::new(&ds.data));
        std::hint::black_box(t.len());
        rows[0].1.push(secs(dt));
        let (dt, t) = time(|| HintM::new(&ds.data));
        std::hint::black_box(t.len());
        rows[1].1.push(secs(dt));
        let (dt, t) = time(|| Kds::new(&ds.data));
        std::hint::black_box(t.len());
        rows[2].1.push(secs(dt));
        let (dt, t) = time(|| Ait::new(&ds.data));
        std::hint::black_box(t.len());
        rows[3].1.push(secs(dt));
        let (dt, t) = time(|| AitV::new(&ds.data));
        std::hint::black_box(t.len());
        rows[4].1.push(secs(dt));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
