//! Fig. 6: total running time (candidate + sampling) vs query extent
//! (domain %), non-weighted case. Search baselines grow with the extent;
//! KDS grows mildly; AIT / AIT-V stay flat.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

const EXTENTS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 24.0, 32.0];

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Fig. 6: running time [microsec] vs domain extent (non-weighted)")
    );
    let sets = datasets(&cfg);

    for ds in &sets {
        println!("\n### {}", ds.name());
        let itree = IntervalTree::new(&ds.data);
        let hint = HintM::new(&ds.data);
        let kds = Kds::new(&ds.data);
        let ait = Ait::new(&ds.data);
        let aitv = AitV::new(&ds.data);
        println!(
            "{}",
            row(
                "extent%",
                &[
                    "Interval tree".into(),
                    "HINTm".into(),
                    "KDS".into(),
                    "AIT".into(),
                    "AIT-V".into()
                ]
            )
        );
        for extent in EXTENTS {
            let queries = ds.queries(&cfg, extent);
            let cells = vec![
                us(avg_total_micros(&itree, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&hint, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&kds, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&ait, &queries, cfg.s, cfg.seed)),
                us(avg_total_micros(&aitv, &queries, cfg.s, cfg.seed)),
            ];
            println!("{}", row(&format!("{extent}%"), &cells));
        }
    }
}
