//! Extension experiment (beyond the paper): dynamic *weighted* IRS.
//! §IV leaves weighted updates as future work; `DynamicAwit` closes the
//! gap with a weighted pool + tombstones + amortized rebuilds. This bench
//! reports (a) amortized update cost versus the naive rebuild-per-update
//! strategy and (b) the query-time overhead versus a static AWIT.

use irs_ait::{Awit, DynamicAwit};
use irs_bench::*;
use irs_datagen::uniform_weights;

fn main() {
    let cfg = BenchConfig::from_env();
    let k = 5_000.min(cfg.scale / 4);
    println!(
        "{}",
        cfg.banner("Extension: dynamic weighted IRS (DynamicAwit)")
    );
    println!("(k = {k} updates per measurement)");
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Insert [ms]", vec![]),
        ("Delete [ms]", vec![]),
        ("Naive rebuild [ms]", vec![]),
        ("Query static [us]", vec![]),
        ("Query dynamic [us]", vec![]),
    ];
    for ds in &sets {
        let weights = uniform_weights(ds.data.len(), cfg.seed ^ 0xA11A5);
        let (base, tail) = ds.data.split_at(ds.data.len() - k);
        let (wbase, wtail) = weights.split_at(ds.data.len() - k);

        // Amortized insertion into DynamicAwit.
        let mut dyn_idx = DynamicAwit::new(base, wbase);
        let (dt, _) = time(|| {
            for (&iv, &w) in tail.iter().zip(wtail) {
                dyn_idx.insert(iv, w);
            }
        });
        let insert_ms = dt.as_secs_f64() * 1e3 / k as f64;
        rows[0].1.push(format!("{insert_ms:.3}"));

        // Amortized deletion (delete what was just inserted).
        let first = base.len() as u32;
        let (dt, _) = time(|| {
            for (off, &iv) in tail.iter().enumerate() {
                assert!(dyn_idx.delete(iv, first + off as u32));
            }
        });
        let delete_ms = dt.as_secs_f64() * 1e3 / k as f64;
        rows[1].1.push(format!("{delete_ms:.3}"));

        // Naive alternative: one full AWIT rebuild per update (measured as
        // a single rebuild; per-update cost IS this number).
        let (dt, awit) = time(|| Awit::new(&ds.data, &weights));
        let rebuild_ms = dt.as_secs_f64() * 1e3;
        rows[2].1.push(format!("{rebuild_ms:.1}"));

        // Query-time comparison at default extent, static vs dynamic with
        // a half-full pool and tombstone set.
        let queries = ds.queries(&cfg, 8.0);
        let query_static_us = avg_total_micros_weighted(&awit, &queries, cfg.s, cfg.seed);
        rows[3].1.push(us(query_static_us));
        drop(awit);
        let mut dyn_idx = DynamicAwit::new(&ds.data, &weights);
        for (off, (&iv, &w)) in tail.iter().zip(wtail).enumerate().take(200) {
            dyn_idx.insert(iv, w * 0.5 + 1.0);
            let _ = off;
        }
        for id in 0..200u32 {
            dyn_idx.delete(ds.data[id as usize], id);
        }
        let query_dynamic_us = avg_total_micros_weighted(&dyn_idx, &queries, cfg.s, cfg.seed);
        rows[4].1.push(us(query_dynamic_us));
        // Machine-readable row from the raw measurements (not the
        // display-rounded table strings).
        JsonRow::new("dynamic_weighted")
            .str("dataset", ds.name())
            .int("n", cfg.scale)
            .int("updates", k)
            .num("insert_ms", insert_ms)
            .num("delete_ms", delete_ms)
            .num("rebuild_ms", rebuild_ms)
            .num("query_static_us", query_static_us)
            .num("query_dynamic_us", query_dynamic_us)
            .emit();
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
