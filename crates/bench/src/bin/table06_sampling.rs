//! Table VI: average sampling time per query (phase 2, alias building
//! included), non-weighted case. Interval tree and HINTm share one row in
//! the paper (both sample uniformly from a materialized `q ∩ X`); they are
//! reported separately here and should read nearly identical.

use irs_ait::{Ait, AitV};
use irs_bench::*;
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("Table VI: sampling time [microsec] (non-weighted, alias build included)")
    );
    let sets = datasets(&cfg);
    println!("{}", dataset_header(&sets));

    let mut rows: Vec<(&str, Vec<String>)> = vec![
        ("Interval tree", vec![]),
        ("HINTm", vec![]),
        ("KDS", vec![]),
        ("AIT", vec![]),
        ("AIT-V", vec![]),
    ];
    for ds in &sets {
        let queries = ds.queries(&cfg, 8.0);
        let itree = IntervalTree::new(&ds.data);
        rows[0]
            .1
            .push(us(avg_sampling_micros(&itree, &queries, cfg.s, cfg.seed)));
        drop(itree);
        let hint = HintM::new(&ds.data);
        rows[1]
            .1
            .push(us(avg_sampling_micros(&hint, &queries, cfg.s, cfg.seed)));
        drop(hint);
        let kds = Kds::new(&ds.data);
        rows[2]
            .1
            .push(us(avg_sampling_micros(&kds, &queries, cfg.s, cfg.seed)));
        drop(kds);
        let ait = Ait::new(&ds.data);
        rows[3]
            .1
            .push(us(avg_sampling_micros(&ait, &queries, cfg.s, cfg.seed)));
        drop(ait);
        let aitv = AitV::new(&ds.data);
        rows[4]
            .1
            .push(us(avg_sampling_micros(&aitv, &queries, cfg.s, cfg.seed)));
    }
    for (label, cells) in rows {
        println!("{}", row(label, &cells));
    }
}
