//! §III-C's rejection measurement: the number of member draws AIT-V needs
//! to produce s accepted samples. The paper reports ~1087 attempts for
//! s = 1000 on Book and ~1020 on BTC.

use irs_ait::AitV;
use irs_bench::*;
use irs_core::{PreparedSampler, RangeSampler};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "{}",
        cfg.banner("AIT-V rejection sampling: attempts per s accepted samples")
    );
    let sets = datasets(&cfg);
    println!(
        "{}",
        row(
            "dataset",
            &[
                "attempts".into(),
                "accepted".into(),
                "ratio".into(),
                "fallbacks".into()
            ]
        )
    );

    for ds in &sets {
        let aitv = AitV::new(&ds.data);
        let queries = ds.queries(&cfg, 8.0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        let mut fallbacks = 0u64;
        let mut out = Vec::with_capacity(cfg.s);
        for &q in &queries {
            let prepared = aitv.prepare(q);
            out.clear();
            prepared.sample_into(&mut rng, cfg.s, &mut out);
            let st = prepared.stats();
            attempts += st.attempts;
            accepted += st.accepted;
            fallbacks += st.fallbacks;
        }
        let per_query_attempts = attempts as f64 / queries.len() as f64;
        let ratio = attempts as f64 / accepted.max(1) as f64;
        println!(
            "{}",
            row(
                ds.name(),
                &[
                    format!("{per_query_attempts:.1}"),
                    format!("{:.1}", accepted as f64 / queries.len() as f64),
                    format!("{ratio:.4}"),
                    fallbacks.to_string(),
                ]
            )
        );
    }
}
