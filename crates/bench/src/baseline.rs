//! Minimal JSON reader for pinned baseline files.
//!
//! The offline build environment has no serde, so `bench-engine
//! --compare` parses its baseline with this hand-rolled recursive
//! descent parser. It accepts the committed baseline shape (one JSON
//! document with a `rows` array, e.g. `BENCH_2026-08-07.json`), a bare
//! array of rows, or JSONL (one row object per line, as emitted by
//! [`crate::JsonRow`] and collected with `grep '^{'`).

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64` — baseline fields are
/// either counts (exactly representable) or throughput floats.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Numeric payload as a count (rejects negatives and non-integers
    /// beyond float rounding).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || x > u32::MAX as f64 {
            return None;
        }
        Some(x as usize)
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub fn parse(doc: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Extracts baseline rows from any of the accepted shapes: an object
/// with a `rows` array, a bare array, or JSONL.
pub fn baseline_rows(doc: &str) -> Result<Vec<JsonValue>, JsonError> {
    if let Ok(v) = parse(doc) {
        return match v {
            JsonValue::Arr(rows) => Ok(rows),
            JsonValue::Obj(_) => match v.get("rows") {
                Some(JsonValue::Arr(rows)) => Ok(rows.clone()),
                // A single JSONL-style row object is itself the list.
                _ => Ok(vec![v]),
            },
            _ => Err(JsonError {
                at: 0,
                what: "baseline document is not an object or array",
            }),
        };
    }
    // Not one document: try JSONL, keeping only object lines so the
    // file may carry human-readable table output around the rows.
    let mut rows = Vec::new();
    for line in doc.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        rows.push(parse(line)?);
    }
    if rows.is_empty() {
        return Err(JsonError {
            at: 0,
            what: "no JSON rows found (expected `rows` array or JSONL)",
        });
    }
    Ok(rows)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Baseline fields are ASCII identifiers;
                            // surrogate pairs are out of scope, so lone
                            // or paired surrogates become U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&rest[..step.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            cp = cp * 16 + v;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let JsonValue::Arr(items) = v.get("b").unwrap() else {
            panic!("b not an array");
        };
        assert_eq!(items[0], JsonValue::Bool(true));
        assert_eq!(items[1], JsonValue::Null);
        assert_eq!(items[2], JsonValue::Str("x\n".into()));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn baseline_rows_accepts_all_shapes() {
        let doc = r#"{"date": "d", "rows": [{"experiment": "bench-engine", "n": 10}]}"#;
        assert_eq!(baseline_rows(doc).unwrap().len(), 1);
        let arr = r#"[{"n": 1}, {"n": 2}]"#;
        assert_eq!(baseline_rows(arr).unwrap().len(), 2);
        let jsonl = "# table noise\n{\"n\": 1}\nrows above\n{\"n\": 2}\n";
        let rows = baseline_rows(jsonl).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("n").unwrap().as_usize(), Some(2));
    }

    #[test]
    fn counts_reject_fractions() {
        assert_eq!(JsonValue::Num(3.0).as_usize(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_usize(), None);
        assert_eq!(JsonValue::Num(-1.0).as_usize(), None);
    }
}
