//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's §V on the calibrated synthetic datasets (see DESIGN.md's
//! substitution notes). Scale knobs come from the environment so the same
//! binaries serve quick smoke runs and full paper-scale runs:
//!
//! - `IRS_BENCH_SCALE`   — intervals per dataset (default 200,000)
//! - `IRS_BENCH_QUERIES` — queries per measurement (default 1,000, as in
//!   the paper)
//! - `IRS_BENCH_S`       — sample size (default 1,000, as in the paper)
//! - `IRS_BENCH_SEED`    — RNG seed (default 42)

#![deny(missing_docs)]

use irs_core::{Interval64, PreparedSampler, RangeSampler, WeightedRangeSampler};
use irs_datagen::{DatasetProfile, QueryWorkload};
use rand::{rngs::SmallRng, SeedableRng};
use std::time::{Duration, Instant};

pub mod baseline;

/// Knobs shared by every experiment binary.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Intervals per dataset.
    pub scale: usize,
    /// Queries per measurement.
    pub queries: usize,
    /// Samples per query.
    pub s: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl BenchConfig {
    /// Reads the configuration from the environment (defaults above).
    pub fn from_env() -> Self {
        fn env_usize(key: &str, default: usize) -> usize {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        BenchConfig {
            scale: env_usize("IRS_BENCH_SCALE", 200_000),
            queries: env_usize("IRS_BENCH_QUERIES", 1_000),
            s: env_usize("IRS_BENCH_S", 1_000),
            seed: env_usize("IRS_BENCH_SEED", 42) as u64,
        }
    }

    /// Banner line describing the run, printed by every binary.
    pub fn banner(&self, what: &str) -> String {
        format!(
            "## {what}\n(n = {} per dataset, {} queries, s = {}, seed = {})",
            self.scale, self.queries, self.s, self.seed
        )
    }
}

/// One generated dataset plus its profile metadata.
pub struct Dataset {
    /// The published statistics this dataset was calibrated against.
    pub profile: DatasetProfile,
    /// The generated intervals.
    pub data: Vec<Interval64>,
}

impl Dataset {
    /// Name column used in the tables.
    pub fn name(&self) -> &'static str {
        self.profile.name
    }

    /// The paper's query workload over this dataset's domain.
    pub fn queries(&self, cfg: &BenchConfig, extent_pct: f64) -> Vec<Interval64> {
        QueryWorkload::new((0, self.profile.domain_size)).generate(
            cfg.queries,
            extent_pct,
            cfg.seed ^ 0x51ED_BEEF,
        )
    }
}

/// Generates the four calibrated datasets at `cfg.scale`.
pub fn datasets(cfg: &BenchConfig) -> Vec<Dataset> {
    irs_datagen::profiles::ALL_PROFILES
        .iter()
        .map(|&profile| Dataset {
            profile,
            data: profile.generate(cfg.scale, cfg.seed),
        })
        .collect()
}

/// Wall-clock one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t = Instant::now();
    let out = f();
    (t.elapsed(), out)
}

/// Average microseconds per query of the *candidate computation* phase
/// (phase 1 of the paper's cost split, Table V).
pub fn avg_candidate_micros<S>(index: &S, queries: &[Interval64]) -> f64
where
    S: RangeSampler<i64>,
{
    let mut total = Duration::ZERO;
    for &q in queries {
        let (dt, prepared) = time(|| index.prepare(q));
        total += dt;
        std::hint::black_box(prepared.candidate_count());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// Average microseconds per query of the *sampling* phase (phase 2 —
/// alias building included, Table VI / IX).
pub fn avg_sampling_micros<S>(index: &S, queries: &[Interval64], s: usize, seed: u64) -> f64
where
    S: RangeSampler<i64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(s);
    let mut total = Duration::ZERO;
    for &q in queries {
        let prepared = index.prepare(q);
        let (dt, _) = time(|| {
            out.clear();
            prepared.sample_into(&mut rng, s, &mut out);
        });
        total += dt;
        std::hint::black_box(out.len());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// Weighted-path analogue of [`avg_candidate_micros`].
pub fn avg_candidate_micros_weighted<S>(index: &S, queries: &[Interval64]) -> f64
where
    S: WeightedRangeSampler<i64>,
{
    let mut total = Duration::ZERO;
    for &q in queries {
        let (dt, prepared) = time(|| index.prepare_weighted(q));
        total += dt;
        std::hint::black_box(prepared.candidate_count());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// Weighted-path analogue of [`avg_sampling_micros`].
pub fn avg_sampling_micros_weighted<S>(
    index: &S,
    queries: &[Interval64],
    s: usize,
    seed: u64,
) -> f64
where
    S: WeightedRangeSampler<i64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(s);
    let mut total = Duration::ZERO;
    for &q in queries {
        let prepared = index.prepare_weighted(q);
        let (dt, _) = time(|| {
            out.clear();
            prepared.sample_into(&mut rng, s, &mut out);
        });
        total += dt;
        std::hint::black_box(out.len());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// Average end-to-end microseconds per query (candidate + sampling), the
/// "running time" of Figs. 6-10.
pub fn avg_total_micros<S>(index: &S, queries: &[Interval64], s: usize, seed: u64) -> f64
where
    S: RangeSampler<i64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(s);
    let mut total = Duration::ZERO;
    for &q in queries {
        let (dt, _) = time(|| {
            out.clear();
            let prepared = index.prepare(q);
            prepared.sample_into(&mut rng, s, &mut out);
        });
        total += dt;
        std::hint::black_box(out.len());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// Weighted analogue of [`avg_total_micros`].
pub fn avg_total_micros_weighted<S>(index: &S, queries: &[Interval64], s: usize, seed: u64) -> f64
where
    S: WeightedRangeSampler<i64>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(s);
    let mut total = Duration::ZERO;
    for &q in queries {
        let (dt, _) = time(|| {
            out.clear();
            let prepared = index.prepare_weighted(q);
            prepared.sample_into(&mut rng, s, &mut out);
        });
        total += dt;
        std::hint::black_box(out.len());
    }
    total.as_secs_f64() * 1e6 / queries.len() as f64
}

/// One machine-readable result row, emitted as a single JSON object per
/// line (JSONL) so experiment output can be collected with `grep '^{'`
/// and post-processed without parsing the human tables.
///
/// Hand-rolled because the offline build environment has no serde; field
/// order follows insertion order, strings are minimally escaped.
///
/// ```
/// irs_bench::JsonRow::new("demo").str("dataset", "taxi").int("n", 10).num("us", 1.5).emit();
/// ```
pub struct JsonRow {
    buf: String,
}

impl JsonRow {
    /// Starts a row tagged `{"experiment": name, …}`.
    pub fn new(experiment: &str) -> Self {
        let mut row = JsonRow {
            buf: String::from("{"),
        };
        row.push_key("experiment");
        row.push_str_value(experiment);
        row
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push(',');
        self.push_key(key);
        self.push_str_value(value);
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: usize) -> Self {
        self.buf.push(',');
        self.push_key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (emitted with enough digits to round-trip the
    /// magnitudes the benches produce; non-finite values become `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.buf.push(',');
        self.push_key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value:.6}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Finishes the row and returns it (for tests or custom sinks).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Finishes the row and prints it on its own line.
    pub fn emit(self) {
        println!("{}", self.finish());
    }

    fn push_key(&mut self, key: &str) {
        self.push_str_value(key);
        self.buf.push(':');
    }

    fn push_str_value(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\t' => self.buf.push_str("\\t"),
                '\r' => self.buf.push_str("\\r"),
                c if (c as u32) < 0x20 => self.buf.push_str(&format!("\\u{:04x}", c as u32)),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

/// Renders one table row: left-aligned label plus fixed-width columns.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<16}");
    for c in cells {
        s.push_str(&format!("{c:>14}"));
    }
    s
}

/// Header row for the four datasets.
pub fn dataset_header(datasets: &[Dataset]) -> String {
    row(
        "",
        &datasets
            .iter()
            .map(|d| d.name().to_string())
            .collect::<Vec<_>>(),
    )
}

/// Formats a microsecond value the way the paper's tables read.
pub fn us(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats bytes as GB with paper-style precision.
pub fn gb(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / 1e9)
}

/// Formats a duration in seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_row_shape() {
        let row = JsonRow::new("t")
            .str("a", "x\"y")
            .int("n", 3)
            .num("v", 1.25)
            .finish();
        assert_eq!(row, r#"{"experiment":"t","a":"x\"y","n":3,"v":1.250000}"#);
    }

    #[test]
    fn json_row_non_finite_is_null() {
        let row = JsonRow::new("t").num("v", f64::NAN).finish();
        assert_eq!(row, r#"{"experiment":"t","v":null}"#);
    }
}
