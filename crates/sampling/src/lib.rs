//! Weighted-sampling building blocks used by every IRS algorithm in the
//! workspace (§II-C of the paper), plus the statistical test utilities the
//! test suites use to verify sampling distributions.
//!
//! - [`AliasTable`] — Walker's alias method: `O(n)` build, `O(1)` draw.
//!   Used to pick a node record from `R` (AIT / AWIT), a canonical piece
//!   (KDS), or a candidate interval (weighted search-based baselines).
//! - [`CumulativeSum`] and [`sample_prefix_range`] — the cumulative-sum
//!   method: `O(n)` build, `O(log n)` draw, and crucially the ability to
//!   draw from a *contiguous slice* of a prebuilt prefix-sum array without
//!   building anything at query time — exactly what AWIT needs to sample
//!   inside a node record.
//! - [`Eytzinger`] — a branchless BFS-layout `partition_point`, the
//!   cache-conscious form of every cumulative-weight and endpoint binary
//!   search on the read hot path. Derived from the sorted authority
//!   arrays at build/load time, never serialized.
//! - [`stats`] — chi-square goodness-of-fit used by the statistical tests.

#![deny(missing_docs)]

pub mod alias;
pub mod cumsum;
pub mod eytzinger;
pub mod stats;

pub use alias::AliasTable;
pub use cumsum::{
    sample_prefix_range, sample_prefix_range_eytzinger, sample_prefix_window,
    sample_prefix_window_fill, CumulativeSum, EYTZINGER_WINDOW_MIN,
};
pub use eytzinger::{prefetch_read, Eytzinger};
