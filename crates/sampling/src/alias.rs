//! Walker's alias method (Vose's stable variant).
//!
//! Given `n` positive weights, builds in `O(n)` a table of `n` cells, each
//! holding at most two outcomes, from which a weighted sample is drawn in
//! `O(1)`: pick a cell uniformly, then pick one of its two outcomes by a
//! biased coin (§II-C of the paper; Walker 1974, Vose 1991).

use rand::{Rng, RngCore};

/// One alias cell: acceptance probability and fallback outcome together,
/// so a draw touches exactly one cache line instead of one line in each
/// of two parallel arrays.
#[derive(Clone, Copy, Debug)]
struct AliasCell {
    /// Probability of returning the cell's own index, pre-scaled to
    /// `[0, 1]`.
    prob: f64,
    /// The outcome returned when the coin flip fails.
    alias: u32,
}

/// Precomputed alias table over `n` weighted outcomes `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Interleaved `(prob, alias)` cells (see [`AliasCell`]).
    cells: Vec<AliasCell>,
    total: f64,
}

impl AliasTable {
    /// Builds the table in `O(n)`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, or contains a non-finite or
    /// non-positive weight.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over zero outcomes");
        let n = weights.len();
        assert!(
            n <= u32::MAX as usize,
            "alias table outcome count exceeds u32"
        );
        let mut total = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w > 0.0,
                "alias weights must be positive, got {w}"
            );
            total += w;
        }

        // Vose's method: scale weights so the average is 1, then pair each
        // under-full cell with an over-full donor.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Donate from `l` to fill `s`'s cell up to 1.
            alias[s as usize] = l;
            let remaining = (prob[l as usize] + prob[s as usize]) - 1.0;
            prob[l as usize] = remaining;
            if remaining < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly 1 up to rounding; clamp them.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        let cells = prob
            .into_iter()
            .zip(alias)
            .map(|(prob, alias)| AliasCell { prob, alias })
            .collect();
        Self { cells, total }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always `false`: construction rejects empty weight sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sum of the input weights.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Draws one outcome in `O(1)`.
    #[inline]
    pub fn sample(&self, rng: &mut (impl RngCore + ?Sized)) -> usize {
        let n = self.cells.len();
        let at = rng.random_range(0..n);
        let coin: f64 = rng.random_range(0.0..1.0);
        let cell = self.cells[at];
        if coin < cell.prob {
            at
        } else {
            cell.alias as usize
        }
    }

    /// Draws `out.len()` outcomes in one pass (the batched form every
    /// per-query draw loop uses): the cell array stays hot across the
    /// whole run, and the compiler keeps the bounds/uniformity plumbing
    /// out of the loop. Consumes the RNG exactly like `out.len()`
    /// successive [`AliasTable::sample`] calls.
    #[inline]
    pub fn sample_fill(&self, rng: &mut (impl RngCore + ?Sized), out: &mut [u32]) {
        let n = self.cells.len();
        for slot in out.iter_mut() {
            let at = rng.random_range(0..n);
            let coin: f64 = rng.random_range(0.0..1.0);
            let cell = self.cells[at];
            *slot = if coin < cell.prob {
                at as u32
            } else {
                cell.alias
            };
        }
    }

    /// Heap bytes retained by the table.
    pub fn heap_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<AliasCell>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::chi_square_uniformity_ok;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn single_outcome_always_sampled() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_probability_paths_never_fire() {
        // Tiny vs huge weight: index 0 should virtually never appear more
        // than its share. Exact check: all outcomes are in range.
        let t = AliasTable::new(&[1.0, 1e9]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hit0 = 0usize;
        for _ in 0..10_000 {
            let k = t.sample(&mut rng);
            assert!(k < 2);
            hit0 += usize::from(k == 0);
        }
        // Expected ~1e-5 of draws; allow generous slack.
        assert!(hit0 < 20, "tiny weight over-sampled: {hit0}");
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let n = 64;
        let t = AliasTable::new(&vec![1.0; n]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; n];
        let draws = 200_000;
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        assert!(chi_square_uniformity_ok(&counts, draws));
    }

    #[test]
    fn skewed_weights_match_expected_frequencies() {
        let weights = [1.0, 2.0, 4.0, 8.0, 16.0];
        let t = AliasTable::new(&weights);
        assert_eq!(t.total_weight(), 31.0);
        let mut rng = StdRng::seed_from_u64(4);
        let draws = 310_000usize;
        let mut counts = [0f64; 5];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1.0;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / 31.0;
            let rel = (counts[i] - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "outcome {i}: observed {} expected {expected}",
                counts[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_weight_panics() {
        let _ = AliasTable::new(&[1.0, 0.0]);
    }

    #[test]
    fn pathological_scales_stay_in_range() {
        // Mix of extreme magnitudes exercises the clamping of leftovers.
        let weights = [1e-300, 1.0, 1e300, 5.0, 1e-10];
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(t.sample(&mut rng) < weights.len());
        }
    }
}
