//! Statistical goodness-of-fit helpers for validating samplers.
//!
//! The IRS correctness claims (Theorem 3, Corollary 5) are distributional,
//! so the test suites check them with chi-square tests. Thresholds are
//! computed from the Wilson–Hilferty approximation at a very small
//! significance level, so with fixed seeds the tests are deterministic and
//! the false-positive probability is negligible.

/// Chi-square statistic of observed counts against expected probabilities.
///
/// `expected_probs` must sum to ~1 and be positive; `counts` aligns with it.
pub fn chi_square_statistic(counts: &[u64], expected_probs: &[f64], draws: u64) -> f64 {
    assert_eq!(counts.len(), expected_probs.len());
    let mut stat = 0.0;
    for (&c, &p) in counts.iter().zip(expected_probs) {
        assert!(p > 0.0, "expected probability must be positive");
        let e = draws as f64 * p;
        let d = c as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Approximate upper quantile of the chi-square distribution with `df`
/// degrees of freedom via the Wilson–Hilferty cube approximation.
///
/// `z` is the standard-normal quantile of the desired significance (e.g.
/// `z = 5.0` ≈ significance 3e-7).
pub fn chi_square_critical(df: usize, z: f64) -> f64 {
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * t * t * t
}

/// Whether `counts` (totalling `draws`) are consistent with the given
/// expected probabilities at a ~3e-7 significance level.
pub fn chi_square_ok(counts: &[u64], expected_probs: &[f64], draws: u64) -> bool {
    let stat = chi_square_statistic(counts, expected_probs, draws);
    stat <= chi_square_critical(counts.len().saturating_sub(1).max(1), 5.0)
}

/// [`chi_square_ok`] against the uniform distribution.
pub fn chi_square_uniformity_ok(counts: &[u64], draws: u64) -> bool {
    let p = 1.0 / counts.len() as f64;
    chi_square_ok(counts, &vec![p; counts.len()], draws)
}

/// Total variation distance between an empirical distribution (counts) and
/// expected probabilities — a human-readable companion to the chi-square
/// verdict in failure messages.
pub fn total_variation(counts: &[u64], expected_probs: &[f64], draws: u64) -> f64 {
    counts
        .iter()
        .zip(expected_probs)
        .map(|(&c, &p)| (c as f64 / draws as f64 - p).abs())
        .sum::<f64>()
        / 2.0
}

/// Rank of `id` in the sorted `support` slice, for sampler validation:
/// every draw must land inside `q ∩ X`. Panics with a diagnostic that
/// names the stray value and the support size — unlike a bare
/// `.expect(..)` on `binary_search`, whose message loses the witness.
#[track_caller]
pub fn expect_in_support<T: Ord + std::fmt::Debug>(support: &[T], id: &T) -> usize {
    match support.binary_search(id) {
        Ok(pos) => pos,
        Err(_) => panic!(
            "sample {id:?} outside q ∩ X (support has {} members)",
            support.len()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn critical_values_are_sane() {
        // chi2(0.999999..., df) grows roughly linearly in df.
        let c10 = chi_square_critical(10, 5.0);
        let c100 = chi_square_critical(100, 5.0);
        assert!(c10 > 10.0 && c10 < 80.0, "df=10 critical {c10}");
        assert!(c100 > 100.0 && c100 < 300.0, "df=100 critical {c100}");
    }

    #[test]
    fn uniform_counts_pass() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40;
        let draws = 120_000u64;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[rng.random_range(0..n)] += 1;
        }
        assert!(chi_square_uniformity_ok(&counts, draws));
        let tv = total_variation(&counts, &vec![1.0 / n as f64; n], draws);
        assert!(tv < 0.02, "total variation {tv}");
    }

    #[test]
    fn biased_counts_fail() {
        // All mass on one bucket out of 10.
        let mut counts = vec![0u64; 10];
        counts[0] = 10_000;
        assert!(!chi_square_uniformity_ok(&counts, 10_000));
    }

    #[test]
    fn mildly_wrong_distribution_fails_with_enough_draws() {
        // Sampler uniform over 0..10 tested against a 60/40 split
        // hypothesis must fail.
        let mut rng = StdRng::seed_from_u64(12);
        let draws = 100_000u64;
        let mut counts = vec![0u64; 2];
        for _ in 0..draws {
            counts[usize::from(rng.random_range(0..10u32) >= 5)] += 1;
        }
        assert!(!chi_square_ok(&counts, &[0.6, 0.4], draws));
        assert!(chi_square_ok(&counts, &[0.5, 0.5], draws));
    }
}
