//! Branchless binary search over an Eytzinger (BFS) array layout.
//!
//! A sorted array answers `partition_point` in `O(log n)` compares, but
//! each probe of a classic binary search lands half a remaining range
//! away from the last one — every level is a likely cache miss *and* a
//! 50/50 branch misprediction. The Eytzinger layout stores the same
//! elements in breadth-first heap order (`root = 1`, children of `k` at
//! `2k` / `2k+1`), which fixes both:
//!
//! - the first few levels of every search share a handful of cache
//!   lines, and deeper levels are prefetched ahead of the descent;
//! - the descent itself is a single arithmetic recurrence
//!   (`k = 2k + pred`) with no data-dependent branch, so the pipeline
//!   never flushes on a mispredicted compare.
//!
//! The tree is padded to a *perfect* shape (every level full) with
//! copies of the maximum element. Padding buys an `O(1)` rank recovery:
//! after `h` fixed steps the final cursor `j ∈ [2^h, 2^{h+1})` encodes
//! the whole decision path in its low bits, and `j - 2^h` *is* the
//! partition point (clamped to `len`, since padding duplicates can only
//! overshoot past the end — a monotone predicate answers the same on
//! equal elements).
//!
//! These layouts are always **derived** state: built from the sorted
//! authority arrays at index build/load time, never serialized. The
//! snapshot format stays layout-independent (see DESIGN.md, "Hot-path
//! memory layout").

/// Hints the CPU to pull the cache line holding `p` toward L1.
///
/// Safe to call with any pointer value — prefetch never faults; a wild
/// address is simply ignored by the hardware. Compiles to nothing on
/// architectures without a stable prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it cannot fault regardless of `p`.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// A sorted array re-laid-out in Eytzinger (BFS) order for branchless
/// `partition_point` searches.
///
/// Construction copies the sorted input; the original array remains the
/// authority for positional lookups (ranks returned here index into
/// *it*, not into the layout).
///
/// ```
/// use irs_sampling::Eytzinger;
///
/// let sorted = [1.0, 2.5, 2.5, 7.0];
/// let ey = Eytzinger::from_sorted(&sorted);
/// for want in 0..=4usize {
///     let x = [0.5, 2.0, 2.5, 5.0, 9.0][want];
///     assert_eq!(ey.partition_point(|&v| v < x), sorted.partition_point(|&v| v < x));
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Eytzinger<T> {
    /// BFS layout, 1-indexed: `tree[0]` is an unused sentinel, the root
    /// lives at 1, and the perfect tree occupies `1..=mask*2-1` — i.e.
    /// `tree.len()` is a power of two.
    tree: Vec<T>,
    /// Number of genuine (non-padding) elements.
    len: usize,
}

impl<T: Copy> Eytzinger<T> {
    /// Builds the layout from an already-sorted slice in `O(n)`.
    ///
    /// The caller guarantees `sorted` is sorted with respect to every
    /// predicate later passed to [`Eytzinger::partition_point`] — the
    /// same contract `slice::partition_point` places on its receiver.
    pub fn from_sorted(sorted: &[T]) -> Self {
        let n = sorted.len();
        if n == 0 {
            return Eytzinger {
                tree: Vec::new(),
                len: 0,
            };
        }
        // Perfect tree: m = 2^h - 1 >= n slots, padded with the maximum
        // element so padded slots answer any monotone predicate exactly
        // like the true maximum does.
        let m = (n + 1).next_power_of_two() - 1;
        let last = sorted[n - 1];
        let mut tree = vec![last; m + 1];
        tree[0] = sorted[0]; // unused sentinel slot
                             // In-order walk of the implicit tree assigns sorted positions.
        let mut cursor = 0usize;
        fill(&mut tree, 1, sorted, &mut cursor);
        Eytzinger { tree, len: n }
    }

    /// Number of genuine elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the layout holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The index of the first element for which `pred` is false — the
    /// same answer `slice::partition_point(pred)` gives on the sorted
    /// source array, in branchless form.
    ///
    /// `pred` must be monotone over the sorted order (true on a prefix,
    /// false on the suffix), exactly as for `slice::partition_point`.
    #[inline]
    pub fn partition_point(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        if self.len == 0 {
            return 0;
        }
        let tree = self.tree.as_slice();
        let m = tree.len(); // power of two: perfect tree is 1..m
        let mut j = 1usize;
        while j < m {
            // Four levels ahead: by the time the descent arrives there,
            // the line is resident. Clamping keeps the hint in-bounds
            // (wild prefetches are legal but pollute the TLB).
            prefetch_read(&tree[(j << 4).min(m - 1)]);
            // SAFETY: j < m = tree.len(), established by the loop bound.
            let node = unsafe { tree.get_unchecked(j) };
            // Compiles to setcc/cmov-style code: no data-dependent branch.
            j = 2 * j + usize::from(pred(node));
        }
        // j ∈ [m, 2m): the decision path in binary. Subtracting the
        // leading bit yields the rank; padding can only overshoot on
        // all-true paths, so clamp to the genuine length.
        (j - m).min(self.len)
    }

    /// Bytes of heap memory the layout retains.
    pub fn heap_bytes(&self) -> usize {
        self.tree.capacity() * std::mem::size_of::<T>()
    }
}

/// Recursive in-order fill: left subtree, node `k`, right subtree.
/// Depth is `log2(m)` (< 64), so recursion is safe; slots past the
/// cursor keep their padding value.
fn fill<T: Copy>(tree: &mut [T], k: usize, sorted: &[T], cursor: &mut usize) {
    if k >= tree.len() {
        return;
    }
    fill(tree, 2 * k, sorted, cursor);
    if *cursor < sorted.len() {
        tree[k] = sorted[*cursor];
        *cursor += 1;
    }
    fill(tree, 2 * k + 1, sorted, cursor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton_edges() {
        let ey = Eytzinger::<f64>::from_sorted(&[]);
        assert_eq!(ey.partition_point(|_| true), 0);
        assert_eq!(ey.partition_point(|_| false), 0);
        assert!(ey.is_empty());

        let one = Eytzinger::from_sorted(&[5i64]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.partition_point(|&v| v < 5), 0);
        assert_eq!(one.partition_point(|&v| v <= 5), 1);
        assert_eq!(one.partition_point(|&v| v < 9), 1);
    }

    #[test]
    fn all_duplicates() {
        let sorted = [3i64; 17];
        let ey = Eytzinger::from_sorted(&sorted);
        for x in [2, 3, 4] {
            assert_eq!(
                ey.partition_point(|&v| v < x),
                sorted.partition_point(|&v| v < x)
            );
            assert_eq!(
                ey.partition_point(|&v| v <= x),
                sorted.partition_point(|&v| v <= x)
            );
        }
    }

    #[test]
    fn matches_partition_point_on_a_dense_sweep() {
        // Every length crossing the power-of-two padding boundaries.
        for n in 0..70usize {
            let sorted: Vec<i64> = (0..n as i64).map(|i| i / 3).collect();
            let ey = Eytzinger::from_sorted(&sorted);
            for x in -1..=(n as i64 / 3 + 1) {
                assert_eq!(
                    ey.partition_point(|&v| v < x),
                    sorted.partition_point(|&v| v < x),
                    "n={n} x={x} lower"
                );
                assert_eq!(
                    ey.partition_point(|&v| v <= x),
                    sorted.partition_point(|&v| v <= x),
                    "n={n} x={x} upper"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn prop_matches_partition_point(
            raw in prop::collection::vec(-1000i64..1000, 0..200),
            probe in -1100i64..1100,
        ) {
            let mut values = raw;
            values.sort_unstable();
            let ey = Eytzinger::from_sorted(&values);
            prop_assert_eq!(
                ey.partition_point(|&v| v < probe),
                values.partition_point(|&v| v < probe)
            );
            prop_assert_eq!(
                ey.partition_point(|&v| v <= probe),
                values.partition_point(|&v| v <= probe)
            );
        }

        #[test]
        fn prop_matches_on_float_prefix_arrays(
            weights in prop::collection::vec(1u64..100_000, 1..150),
            unit in 0u64..1_000_000,
        ) {
            let mut prefix = Vec::with_capacity(weights.len());
            let mut acc = 0.0;
            for &w in &weights {
                acc += w as f64 / 1000.0;
                prefix.push(acc);
            }
            let ey = Eytzinger::from_sorted(&prefix);
            let u = unit as f64 / 1e6 * acc;
            prop_assert_eq!(
                ey.partition_point(|&p| p < u),
                prefix.partition_point(|&p| p < u)
            );
        }
    }
}
