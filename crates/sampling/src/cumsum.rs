//! The cumulative-sum method (§II-C of the paper).
//!
//! Builds a prefix-sum array `A[j] = Σ_{i≤j} w_i` in `O(n)`; a draw
//! generates `u ∈ (0, A[n-1]]` and binary-searches for the first `k` with
//! `u ≤ A[k]`, returning outcome `k` with probability `w_k / Σ w`.
//!
//! The free function [`sample_prefix_range`] draws from a *sub-range*
//! `[lo, hi]` of an existing prefix array without copying — the operation
//! AWIT performs per sample against its precomputed cumulative weight
//! arrays (`Wl`, `Wr`, `AWl`, `AWr`).

use rand::{Rng, RngCore};

/// Prefix-sum table over `n` weighted outcomes `0..n`, drawing in
/// `O(log n)`.
#[derive(Clone, Debug)]
pub struct CumulativeSum {
    prefix: Vec<f64>,
}

impl CumulativeSum {
    /// Builds the prefix array in `O(n)`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a non-finite or
    /// non-positive weight.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cumulative sum over zero outcomes");
        let mut prefix = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w > 0.0,
                "cumsum weights must be positive, got {w}"
            );
            acc += w;
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Always `false`: construction rejects empty weight sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sum of the input weights.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        *self.prefix.last().expect("non-empty")
    }

    /// The prefix array itself (`A[j] = Σ_{i≤j} w_i`).
    #[inline]
    pub fn prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// Draws one outcome in `O(log n)`.
    #[inline]
    pub fn sample(&self, rng: &mut (impl RngCore + ?Sized)) -> usize {
        sample_prefix_range(&self.prefix, 0, self.prefix.len() - 1, rng)
    }
}

/// Draws an index `k ∈ [lo, hi]` with probability proportional to
/// `prefix[k] - prefix[k-1]` (taking `prefix[-1] = 0`), in
/// `O(log(hi - lo))`.
///
/// `prefix` must be non-decreasing over `[lo, hi]` with
/// `prefix[hi] > prefix[lo] - w_lo` (i.e. positive total mass in the
/// range). This is AWIT's per-sample primitive: the arrays are built once
/// at index-construction time and shared by all queries.
#[inline]
pub fn sample_prefix_range(
    prefix: &[f64],
    lo: usize,
    hi: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> usize {
    debug_assert!(lo <= hi && hi < prefix.len());
    let base = if lo == 0 { 0.0 } else { prefix[lo - 1] };
    let total = prefix[hi] - base;
    debug_assert!(total > 0.0, "sampling from empty mass range");
    // `u` uniform in (base, prefix[hi]]; we generate [0, total) and flip to
    // avoid u == base (which would bias toward lo-1 semantics).
    let u = base + (total - rng.random_range(0.0..total));
    // First k in [lo, hi] with prefix[k] >= u.
    let range = &prefix[lo..=hi];
    let k = lo + range.partition_point(|&p| p < u);
    k.min(hi) // guard against floating-point overshoot
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn prefix_is_running_total() {
        let c = CumulativeSum::new(&[1.0, 2.0, 3.0]);
        assert_eq!(c.prefix(), &[1.0, 3.0, 6.0]);
        assert_eq!(c.total_weight(), 6.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn single_outcome() {
        let c = CumulativeSum::new(&[0.25]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(c.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let c = CumulativeSum::new(&weights);
        let mut rng = StdRng::seed_from_u64(2);
        let draws = 100_000usize;
        let mut counts = [0f64; 4];
        for _ in 0..draws {
            counts[c.sample(&mut rng)] += 1.0;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / 10.0;
            let rel = (counts[i] - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "outcome {i}: observed {} expected {expected}",
                counts[i]
            );
        }
    }

    #[test]
    fn range_sampling_restricts_support() {
        let c = CumulativeSum::new(&[1.0; 10]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let k = sample_prefix_range(c.prefix(), 3, 6, &mut rng);
            assert!((3..=6).contains(&k), "sample {k} outside [3, 6]");
        }
    }

    #[test]
    fn range_sampling_weights_within_range() {
        // Weights 1..=8; restrict to [4, 6] (weights 5, 6, 7).
        let weights: Vec<f64> = (1..=8).map(|w| w as f64).collect();
        let c = CumulativeSum::new(&weights);
        let mut rng = StdRng::seed_from_u64(4);
        let draws = 90_000usize;
        let mut counts = [0f64; 3];
        for _ in 0..draws {
            let k = sample_prefix_range(c.prefix(), 4, 6, &mut rng);
            counts[k - 4] += 1.0;
        }
        let total = 5.0 + 6.0 + 7.0;
        for (off, w) in [(0usize, 5.0), (1, 6.0), (2, 7.0)] {
            let expected = draws as f64 * w / total;
            let rel = (counts[off] - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "offset {off}: observed {} expected {expected}",
                counts[off]
            );
        }
    }

    #[test]
    fn range_sampling_at_array_start() {
        let c = CumulativeSum::new(&[2.0, 2.0, 1000.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = sample_prefix_range(c.prefix(), 0, 1, &mut rng);
            assert!(k <= 1, "heavy out-of-range outcome leaked in: {k}");
        }
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn empty_weights_panic() {
        let _ = CumulativeSum::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_weight_panics() {
        let _ = CumulativeSum::new(&[1.0, -2.0]);
    }
}
