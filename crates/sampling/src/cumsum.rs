//! The cumulative-sum method (§II-C of the paper).
//!
//! Builds a prefix-sum array `A[j] = Σ_{i≤j} w_i` in `O(n)`; a draw
//! generates `u ∈ (0, A[n-1]]` and binary-searches for the first `k` with
//! `u ≤ A[k]`, returning outcome `k` with probability `w_k / Σ w`.
//!
//! The free function [`sample_prefix_range`] draws from a *sub-range*
//! `[lo, hi]` of an existing prefix array without copying — the operation
//! AWIT performs per sample against its precomputed cumulative weight
//! arrays (`Wl`, `Wr`, `AWl`, `AWr`).

use crate::eytzinger::Eytzinger;
use rand::{Rng, RngCore};

/// Prefix-sum table over `n` weighted outcomes `0..n`, drawing in
/// `O(log n)`.
#[derive(Clone, Debug)]
pub struct CumulativeSum {
    prefix: Vec<f64>,
}

impl CumulativeSum {
    /// Builds the prefix array in `O(n)`.
    ///
    /// # Panics
    /// Panics if `weights` is empty or contains a non-finite or
    /// non-positive weight.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cumulative sum over zero outcomes");
        let mut prefix = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w.is_finite() && w > 0.0,
                "cumsum weights must be positive, got {w}"
            );
            acc += w;
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Always `false`: construction rejects empty weight sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sum of the input weights.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        // Construction rejects empty weight sets, so the fallback is
        // unreachable — spelled without a panic to keep this file in the
        // audit's no-panic scope.
        self.prefix.last().copied().unwrap_or(0.0)
    }

    /// The prefix array itself (`A[j] = Σ_{i≤j} w_i`).
    #[inline]
    pub fn prefix(&self) -> &[f64] {
        &self.prefix
    }

    /// Draws one outcome in `O(log n)`.
    #[inline]
    pub fn sample(&self, rng: &mut (impl RngCore + ?Sized)) -> usize {
        sample_prefix_range(&self.prefix, 0, self.prefix.len() - 1, rng)
    }
}

/// Draws an index `k ∈ [lo, hi]` with probability proportional to
/// `prefix[k] - prefix[k-1]` (taking `prefix[-1] = 0`), in
/// `O(log(hi - lo))`.
///
/// `prefix` must be non-decreasing over `[lo, hi]` with
/// `prefix[hi] > prefix[lo] - w_lo` (i.e. positive total mass in the
/// range). This is AWIT's per-sample primitive: the arrays are built once
/// at index-construction time and shared by all queries.
#[inline]
pub fn sample_prefix_range(
    prefix: &[f64],
    lo: usize,
    hi: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> usize {
    debug_assert!(lo <= hi && hi < prefix.len());
    let base = if lo == 0 { 0.0 } else { prefix[lo - 1] };
    let total = prefix[hi] - base;
    debug_assert!(total > 0.0, "sampling from empty mass range");
    // `u` uniform in (base, prefix[hi]]; we generate [0, total) and flip to
    // avoid u == base (which would bias toward lo-1 semantics).
    let u = base + (total - rng.random_range(0.0..total));
    // First k in [lo, hi] with prefix[k] >= u.
    let range = &prefix[lo..=hi];
    let k = lo + range.partition_point(|&p| p < u);
    k.min(hi) // guard against floating-point overshoot
}

/// Below this window length the windowed scalar search beats the
/// full-array layout: a branchless Eytzinger descent always walks
/// `log₂(array)` levels — the bottom ones cache misses on a large
/// array — while `partition_point` over a short contiguous window
/// touches a handful of resident cache lines. The crossover sits where
/// the window stops fitting in a few cache lines; 1024 f64s (8 KiB) is
/// comfortably past it and keeps the branchless path for the wide
/// windows it wins on.
pub const EYTZINGER_WINDOW_MIN: usize = 1024;

/// Windowed draw with the range's mass precomputed: `win` is the
/// contiguous prefix window `&prefix[lo..=hi]`, `base` the mass before
/// it (`prefix[lo-1]` or `0.0`), `total` the mass inside it. Returns an
/// *offset into `win`*. Callers that draw many times from the same
/// window (AWIT's per-record sampling) hoist the two `prefix` reads
/// that [`sample_prefix_range`] performs per draw — on a large prefix
/// array those are two random cache misses per sample. Consumes exactly
/// one RNG draw, like every other form.
#[inline]
pub fn sample_prefix_window(
    win: &[f64],
    base: f64,
    total: f64,
    rng: &mut (impl RngCore + ?Sized),
) -> usize {
    debug_assert!(!win.is_empty());
    debug_assert!(total > 0.0, "sampling from empty mass range");
    let u = base + (total - rng.random_range(0.0..total));
    if win.len() <= 32 {
        // Branchless count of entries below `u` — equal to
        // `partition_point` on a non-decreasing window, but with no
        // data-dependent branches to mispredict, and it auto-vectorizes.
        // Binary search's comparisons are coin flips here, and a
        // mispredict costs more than scanning the whole short window.
        let mut idx = 0usize;
        for &p in win {
            idx += usize::from(p < u);
        }
        idx.min(win.len() - 1)
    } else {
        win.partition_point(|&p| p < u).min(win.len() - 1)
    }
}

/// Batched form of [`sample_prefix_window`]: fills `out` with
/// `out.len()` independent draws from the same window, written as
/// offsets into `win`. Consumes exactly `out.len()` RNG draws in draw
/// order, so replacing a loop of single draws with one fill leaves the
/// RNG stream — and therefore seeded replay — unchanged.
///
/// Generating the mass values chunk-at-a-time keeps the RNG state hot
/// and lets the searches run back to back over a window whose lines the
/// first few draws pulled in; the per-draw work then carries no
/// per-record setup at all (the caller hoisted `base` and `total` once
/// for the whole batch).
pub fn sample_prefix_window_fill(
    win: &[f64],
    base: f64,
    total: f64,
    rng: &mut (impl RngCore + ?Sized),
    out: &mut [u32],
) {
    debug_assert!(!win.is_empty());
    debug_assert!(total > 0.0, "sampling from empty mass range");
    let mut us = [0.0f64; 64];
    let mut done = 0usize;
    while done < out.len() {
        let c = (out.len() - done).min(64);
        let chunk = &mut out[done..done + c];
        for u in &mut us[..c] {
            *u = base + (total - rng.random_range(0.0..total));
        }
        if win.len() <= 32 {
            // Short windows: branchless linear count (see
            // [`sample_prefix_window`]).
            for (slot, &u) in chunk.iter_mut().zip(&us[..c]) {
                let mut idx = 0u32;
                for &p in win {
                    idx += u32::from(p < u);
                }
                *slot = idx.min(win.len() as u32 - 1);
            }
        } else {
            for (slot, &u) in chunk.iter_mut().zip(&us[..c]) {
                *slot = win.partition_point(|&p| p < u).min(win.len() - 1) as u32;
            }
        }
        done += c;
    }
}

/// Eytzinger-routed form of [`sample_prefix_range`]: the same
/// distribution over the same `[lo, hi]` mass window, with the binary
/// search running branchless over a prebuilt full-array layout of the
/// *whole* prefix array whenever the window is wide enough to profit
/// (narrow windows fall back to the windowed scalar search — see
/// [`EYTZINGER_WINDOW_MIN`]).
///
/// Restricting the drawn mass `u` to `(prefix[lo-1], prefix[hi]]` keeps
/// a full-array search inside `[lo, hi]` automatically (the prefix array
/// is non-decreasing), so one layout per array serves every sub-range
/// draw — no per-record layouts needed. The clamp guards floating-point
/// rounding at both window edges, mirroring `sample_prefix_range`'s
/// `min(hi)`. Both branches consume exactly one RNG draw, so seeded
/// replay does not depend on which side of the crossover a record falls.
#[inline]
pub fn sample_prefix_range_eytzinger(
    ey: &Eytzinger<f64>,
    prefix: &[f64],
    lo: usize,
    hi: usize,
    rng: &mut (impl RngCore + ?Sized),
) -> usize {
    debug_assert!(lo <= hi && hi < prefix.len());
    debug_assert_eq!(ey.len(), prefix.len());
    let base = if lo == 0 { 0.0 } else { prefix[lo - 1] };
    let total = prefix[hi] - base;
    debug_assert!(total > 0.0, "sampling from empty mass range");
    let u = base + (total - rng.random_range(0.0..total));
    if hi - lo < EYTZINGER_WINDOW_MIN {
        let range = &prefix[lo..=hi];
        (lo + range.partition_point(|&p| p < u)).min(hi)
    } else {
        ey.partition_point(|&p| p < u).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn prefix_is_running_total() {
        let c = CumulativeSum::new(&[1.0, 2.0, 3.0]);
        assert_eq!(c.prefix(), &[1.0, 3.0, 6.0]);
        assert_eq!(c.total_weight(), 6.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn single_outcome() {
        let c = CumulativeSum::new(&[0.25]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(c.sample(&mut rng), 0);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [5.0, 1.0, 3.0, 1.0];
        let c = CumulativeSum::new(&weights);
        let mut rng = StdRng::seed_from_u64(2);
        let draws = 100_000usize;
        let mut counts = [0f64; 4];
        for _ in 0..draws {
            counts[c.sample(&mut rng)] += 1.0;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = draws as f64 * w / 10.0;
            let rel = (counts[i] - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "outcome {i}: observed {} expected {expected}",
                counts[i]
            );
        }
    }

    #[test]
    fn range_sampling_restricts_support() {
        let c = CumulativeSum::new(&[1.0; 10]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let k = sample_prefix_range(c.prefix(), 3, 6, &mut rng);
            assert!((3..=6).contains(&k), "sample {k} outside [3, 6]");
        }
    }

    #[test]
    fn range_sampling_weights_within_range() {
        // Weights 1..=8; restrict to [4, 6] (weights 5, 6, 7).
        let weights: Vec<f64> = (1..=8).map(|w| w as f64).collect();
        let c = CumulativeSum::new(&weights);
        let mut rng = StdRng::seed_from_u64(4);
        let draws = 90_000usize;
        let mut counts = [0f64; 3];
        for _ in 0..draws {
            let k = sample_prefix_range(c.prefix(), 4, 6, &mut rng);
            counts[k - 4] += 1.0;
        }
        let total = 5.0 + 6.0 + 7.0;
        for (off, w) in [(0usize, 5.0), (1, 6.0), (2, 7.0)] {
            let expected = draws as f64 * w / total;
            let rel = (counts[off] - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "offset {off}: observed {} expected {expected}",
                counts[off]
            );
        }
    }

    #[test]
    fn range_sampling_at_array_start() {
        let c = CumulativeSum::new(&[2.0, 2.0, 1000.0]);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = sample_prefix_range(c.prefix(), 0, 1, &mut rng);
            assert!(k <= 1, "heavy out-of-range outcome leaked in: {k}");
        }
    }

    #[test]
    #[should_panic(expected = "zero outcomes")]
    fn empty_weights_panic() {
        let _ = CumulativeSum::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn negative_weight_panics() {
        let _ = CumulativeSum::new(&[1.0, -2.0]);
    }
}
