//! A static segment tree over intervals (de Berg et al., *Computational
//! Geometry*, ch. 10) — the other classic interval structure the paper's
//! related work discusses (§VI): `O(n log n)` space, `O(log n + K)`
//! stabbing queries, but *no* efficient range search (range search here
//! costs `O(K log n)` plus a dedup, which is exactly why the paper builds
//! on the interval tree instead).
//!
//! Included for completeness of the interval-structure landscape and as an
//! independent stabbing-query oracle in the test suites.
//!
//! # Structure
//!
//! The distinct endpoint values define *slabs*: each endpoint is a
//! closed point slab, each gap between consecutive endpoints (and the two
//! unbounded ends) an open slab. A balanced binary tree over the slabs
//! stores every interval at its `O(log n)` canonical nodes — the maximal
//! nodes whose slab range the interval covers. A stabbing query walks the
//! single root-to-leaf path of the queried slab and reports every list on
//! it.
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n log n)` | canonical-cover insertion |
//! | Stabbing | `O(log n + K)` | the structure's native operator |
//! | Range search | `O(K log n)` + dedup | why the paper builds on the interval tree instead (§VI) |
//! | Space | `O(n log n)` | one copy per canonical node |

#![deny(missing_docs)]

use irs_core::{vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, StabbingQuery};

#[derive(Debug)]
struct SegNode {
    /// Ids of intervals whose canonical cover includes this node.
    items: Vec<ItemId>,
}

/// Static segment tree over a dataset of `n` intervals.
///
/// ```
/// use irs_segment_tree::SegmentTree;
/// use irs_core::{Interval, StabbingQuery};
///
/// let data = vec![Interval::new(0i64, 10), Interval::new(5, 15), Interval::new(20, 30)];
/// let st = SegmentTree::new(&data);
/// assert_eq!(st.stab(7), vec![0, 1]);
/// assert_eq!(st.stab_count(25), 1);
/// assert!(st.stab(16).is_empty());
/// ```
#[derive(Debug)]
pub struct SegmentTree<E> {
    /// Sorted distinct endpoint values; slab `2i+1` is the point
    /// `coords[i]`, slab `2i` the open gap before it.
    coords: Vec<E>,
    /// Heap-shaped node arena over `num_slabs` leaves (1-indexed,
    /// `nodes[1]` is the root).
    nodes: Vec<SegNode>,
    /// Number of leaves = `2 · coords.len() + 1` rounded up to a power of
    /// two for a perfect tree.
    leaves: usize,
    len: usize,
}

impl<E: Endpoint> SegmentTree<E> {
    /// Builds the tree in `O(n log n)`.
    pub fn new(data: &[Interval<E>]) -> Self {
        let mut coords: Vec<E> = Vec::with_capacity(data.len() * 2);
        for iv in data {
            coords.push(iv.lo);
            coords.push(iv.hi);
        }
        coords.sort_unstable();
        coords.dedup();

        let slab_count = (2 * coords.len() + 1).max(1);
        let leaves = slab_count.next_power_of_two();
        let mut nodes = Vec::with_capacity(2 * leaves);
        nodes.resize_with(2 * leaves, || SegNode { items: Vec::new() });
        let mut tree = SegmentTree {
            coords,
            nodes,
            leaves,
            len: data.len(),
        };
        for (i, iv) in data.iter().enumerate() {
            let lo_slab = tree.point_slab(iv.lo);
            let hi_slab = tree.point_slab(iv.hi);
            tree.insert(1, 0, tree.leaves, lo_slab, hi_slab + 1, i as ItemId);
        }
        tree
    }

    /// Slab index of an endpoint value that is known to be in `coords`.
    fn point_slab(&self, v: E) -> usize {
        let i = self
            .coords
            .binary_search(&v)
            .expect("endpoint must be a coordinate");
        2 * i + 1
    }

    /// Slab index of an arbitrary query point: the point slab when `p` is
    /// an endpoint value, otherwise the gap slab it falls into.
    fn query_slab(&self, p: E) -> usize {
        match self.coords.binary_search(&p) {
            Ok(i) => 2 * i + 1,
            Err(i) => 2 * i,
        }
    }

    /// Standard canonical-cover insertion over slab range `[lo, hi)`.
    fn insert(&mut self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, id: ItemId) {
        if hi <= nlo || nhi <= lo {
            return;
        }
        if lo <= nlo && nhi <= hi {
            self.nodes[node].items.push(id);
            return;
        }
        let mid = (nlo + nhi) / 2;
        self.insert(2 * node, nlo, mid, lo, hi, id);
        self.insert(2 * node + 1, mid, nhi, lo, hi, id);
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree indexes no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of intervals stabbed by `p`, in `O(log n)` — unlike
    /// reporting, counting needs only list lengths on the path.
    pub fn stab_count(&self, p: E) -> usize {
        if self.len == 0 {
            return 0;
        }
        let slab = self.query_slab(p);
        let mut node = self.leaves + slab;
        let mut count = 0;
        while node >= 1 {
            count += self.nodes[node].items.len();
            if node == 1 {
                break;
            }
            node /= 2;
        }
        count
    }

    /// Range search by visiting every canonical node intersecting the
    /// query's slab range, then deduplicating — `O(K log n + log² n)`
    /// with `K` visits before dedup. Provided for completeness; the
    /// paper's point is precisely that this structure has no *efficient*
    /// range reporting, which motivates the interval-tree base of the AIT.
    pub fn range_search(&self, q: Interval<E>) -> Vec<ItemId> {
        if self.len == 0 {
            return Vec::new();
        }
        let lo_slab = self.query_slab(q.lo);
        let hi_slab = self.query_slab(q.hi);
        let mut out = Vec::new();
        self.collect_range(1, 0, self.leaves, lo_slab, hi_slab + 1, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_range(
        &self,
        node: usize,
        nlo: usize,
        nhi: usize,
        lo: usize,
        hi: usize,
        out: &mut Vec<ItemId>,
    ) {
        if hi <= nlo || nhi <= lo {
            return;
        }
        out.extend_from_slice(&self.nodes[node].items);
        if nhi - nlo == 1 {
            return;
        }
        let mid = (nlo + nhi) / 2;
        self.collect_range(2 * node, nlo, mid, lo, hi, out);
        self.collect_range(2 * node + 1, mid, nhi, lo, hi, out);
    }
}

impl<E: Endpoint> StabbingQuery<E> for SegmentTree<E> {
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        if self.len == 0 {
            return;
        }
        let slab = self.query_slab(p);
        let mut node = self.leaves + slab;
        loop {
            out.extend_from_slice(&self.nodes[node].items);
            if node == 1 {
                break;
            }
            node /= 2;
        }
    }
}

impl<E: Endpoint> MemoryFootprint for SegmentTree<E> {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.coords)
            + self.nodes.capacity() * std::mem::size_of::<SegNode>()
            + self
                .nodes
                .iter()
                .map(|n| vec_bytes(&n.items))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree() {
        let st = SegmentTree::<i64>::new(&[]);
        assert!(st.is_empty());
        assert!(st.stab(5).is_empty());
        assert_eq!(st.stab_count(5), 0);
        assert!(st.range_search(iv(0, 10)).is_empty());
    }

    #[test]
    fn stabbing_matches_oracle() {
        let data = vec![
            iv(0, 10),
            iv(5, 6),
            iv(11, 20),
            iv(-5, -1),
            iv(8, 30),
            iv(6, 6),
        ];
        let st = SegmentTree::new(&data);
        let bf = BruteForce::new(&data);
        for p in [-6, -5, -3, -1, 0, 5, 6, 7, 10, 11, 15, 20, 30, 31] {
            assert_eq!(sorted(st.stab(p)), sorted(bf.stab(p)), "stab {p}");
            assert_eq!(st.stab_count(p), bf.stab(p).len(), "count {p}");
        }
    }

    #[test]
    fn gap_points_between_endpoints() {
        let data = vec![iv(0, 100)];
        let st = SegmentTree::new(&data);
        // 50 is not an endpoint — falls in a gap slab, still stabbed.
        assert_eq!(st.stab(50), vec![0]);
        assert!(st.stab(101).is_empty());
        assert!(st.stab(-1).is_empty());
    }

    #[test]
    fn range_search_with_dedup_matches_oracle() {
        let data = vec![iv(0, 50), iv(10, 20), iv(30, 80), iv(60, 61), iv(90, 95)];
        let st = SegmentTree::new(&data);
        let bf = BruteForce::new(&data);
        for q in [iv(15, 65), iv(0, 100), iv(85, 89), iv(-10, -1), iv(61, 61)] {
            assert_eq!(
                st.range_search(q),
                sorted(irs_core::RangeSearch::range_search(&bf, q)),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn degenerate_point_intervals() {
        let data = vec![iv(5, 5), iv(5, 5), iv(4, 6)];
        let st = SegmentTree::new(&data);
        assert_eq!(sorted(st.stab(5)), vec![0, 1, 2]);
        assert_eq!(st.stab_count(5), 3);
        assert_eq!(sorted(st.stab(4)), vec![2]);
    }

    #[test]
    fn space_is_n_log_n_ish() {
        let data: Vec<_> = (0..4096).map(|i| iv(i, i + 2048)).collect();
        let st = SegmentTree::new(&data);
        let total_stored: usize = st.nodes.iter().map(|n| n.items.len()).sum();
        // Each interval appears at O(log n) canonical nodes.
        assert!(
            total_stored <= 4096 * 2 * 14,
            "stored {total_stored} copies"
        );
        assert!(total_stored >= 4096, "every interval stored at least once");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_stab_matches_oracle(
            raw in prop::collection::vec((-300i64..300, 0i64..200), 1..200),
            probes in prop::collection::vec(-400i64..500, 24),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let st = SegmentTree::new(&data);
            let bf = BruteForce::new(&data);
            for &p in &probes {
                prop_assert_eq!(sorted(st.stab(p)), sorted(bf.stab(p)));
                prop_assert_eq!(st.stab_count(p), bf.stab(p).len());
            }
        }

        #[test]
        fn prop_range_search_matches_oracle(
            raw in prop::collection::vec((-200i64..200, 0i64..150), 1..150),
            queries in prop::collection::vec((-250i64..250, 0i64..200), 10),
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let st = SegmentTree::new(&data);
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(
                    st.range_search(q),
                    sorted(irs_core::RangeSearch::range_search(&bf, q))
                );
            }
        }
    }
}
