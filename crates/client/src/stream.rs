//! Prepare-once-draw-many sample streams.

use crate::{Backend, Client};
use irs_core::erased::DynPreparedSampler;
use irs_core::{GridEndpoint, Interval, ItemId, Operation, QueryError};
use irs_engine::{Engine, Query, QueryOutput};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many draws a stream fetches from its backend per refill.
const DEFAULT_CHUNK: usize = 512;

/// An iterator of i.i.d. samples from one query's result set, created
/// by [`Client::sample_stream`] / [`Client::weighted_sample_stream`].
///
/// Draws are **independent and unbounded**: the stream keeps yielding
/// for as long as the result set is non-empty (cap it with
/// [`Iterator::take`]). It ends (`None`) only when the result set is
/// empty or the backend fails mid-stream; [`SampleStream::error`]
/// distinguishes the two.
///
/// On the monolithic backend the query's candidate computation (phase 1
/// of the paper's cost split) ran once, at stream creation; each draw
/// afterwards costs only phase-2 work. On the sharded backend draws are
/// fetched through engine batches of [`SampleStream::with_chunk`] size,
/// re-preparing per refill.
pub struct SampleStream<'a, E> {
    source: Source<'a, E>,
    q: Interval<E>,
    weighted: bool,
    chunk: usize,
    rng: SmallRng,
    /// Pending draws, yielded from the back.
    buf: Vec<ItemId>,
    exhausted: bool,
    error: Option<QueryError>,
}

enum Source<'a, E> {
    /// Phase-1 handle kept warm for the stream's whole life.
    Mono(Box<dyn DynPreparedSampler + 'a>),
    /// Draws fetched through engine batches.
    Sharded(&'a Engine<E>),
}

/// Builds a stream over `client`'s backend; `op` is already
/// capability-checked by the caller.
pub(crate) fn new_stream<E: GridEndpoint>(
    client: &Client<E>,
    q: Interval<E>,
    op: Operation,
    rng_seed: u64,
) -> Result<SampleStream<'_, E>, QueryError> {
    let weighted = op == Operation::WeightedSample;
    let source = match client.backend() {
        Backend::Sharded(engine) => Source::Sharded(engine),
        Backend::Mono { index, .. } => {
            let handle = if weighted {
                index.prepare_weighted(q)
            } else {
                index.prepare(q)
            };
            // `None` despite a positive capability claim would be an
            // index bug; surface the typed error instead of panicking.
            match handle {
                Some(h) => Source::Mono(h),
                None => return Err(client.kind().unsupported_error(client.is_weighted(), op)),
            }
        }
    };
    Ok(SampleStream {
        source,
        q,
        weighted,
        chunk: DEFAULT_CHUNK,
        rng: SmallRng::seed_from_u64(rng_seed),
        buf: Vec::new(),
        exhausted: false,
        error: None,
    })
}

impl<'a, E: GridEndpoint> SampleStream<'a, E> {
    /// Sets how many draws are fetched from the backend per refill
    /// (clamped to ≥ 1; default 512). Larger chunks amortize the
    /// engine's batch round-trip on the sharded backend.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The backend failure that ended the stream, if any. `None` after
    /// the stream ends means the result set was genuinely empty.
    pub fn error(&self) -> Option<&QueryError> {
        self.error.as_ref()
    }

    fn refill(&mut self) {
        match &mut self.source {
            Source::Mono(handle) => {
                handle.sample_into_dyn(
                    &mut self.rng as &mut dyn RngCore,
                    self.chunk,
                    &mut self.buf,
                );
            }
            Source::Sharded(engine) => {
                let query = if self.weighted {
                    Query::SampleWeighted {
                        q: self.q,
                        s: self.chunk,
                    }
                } else {
                    Query::Sample {
                        q: self.q,
                        s: self.chunk,
                    }
                };
                match engine.run(&[query]).swap_remove(0) {
                    Ok(QueryOutput::Samples(ids)) => self.buf = ids,
                    Ok(_) => {
                        self.error = Some(crate::protocol_error(if self.weighted {
                            Operation::WeightedSample
                        } else {
                            Operation::UniformSample
                        }));
                    }
                    Err(e) => self.error = Some(e),
                }
            }
        }
    }
}

impl<'a, E: GridEndpoint> Iterator for SampleStream<'a, E> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        if let Some(id) = self.buf.pop() {
            return Some(id);
        }
        if self.exhausted {
            return None;
        }
        self.refill();
        if self.buf.is_empty() {
            // Empty refill: the result set is empty (or the backend
            // failed — see `error()`); either way the stream is over.
            self.exhausted = true;
            return None;
        }
        self.buf.pop()
    }
}
