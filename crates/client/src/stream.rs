//! Chunked, buffer-reusing sample streams.

use crate::{Backend, Client};
use irs_core::{GridEndpoint, Interval, ItemId, Operation, QueryError};
use irs_engine::{Query, QueryOutput};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// How many draws a stream fetches from its backend per refill.
const DEFAULT_CHUNK: usize = 512;

/// An iterator of i.i.d. samples from one query's result set, created
/// by [`Client::sample_stream`] / [`Client::weighted_sample_stream`].
///
/// Draws are **independent and unbounded**: the stream keeps yielding
/// for as long as the result set is non-empty (cap it with
/// [`Iterator::take`], or pull whole chunks with
/// [`SampleStream::draw_into`]). It ends (`None` / an empty
/// `draw_into`) only when the result set is empty or the backend fails
/// mid-stream; [`SampleStream::error`] distinguishes the two.
///
/// Draws are fetched in chunks of [`SampleStream::with_chunk`] size,
/// so the query's candidate computation (phase 1 of the paper's cost
/// split) is paid once per chunk, not per draw. Each refill briefly
/// takes the backend's read side and samples the then-current data —
/// on a live backend, draws within one chunk come from one snapshot,
/// and concurrent writers interleave between chunks. The stream's
/// internal buffer (and, with `draw_into`, the caller's buffer) is
/// reused across refills, so steady-state drawing does not allocate.
pub struct SampleStream<'a, E> {
    client: &'a Client<E>,
    q: Interval<E>,
    weighted: bool,
    chunk: usize,
    rng: SmallRng,
    /// Pending draws, yielded from the back.
    buf: Vec<ItemId>,
    exhausted: bool,
    error: Option<QueryError>,
}

/// Builds a stream over `client`'s backend; `op` is already
/// capability-checked by the caller.
pub(crate) fn new_stream<E: GridEndpoint>(
    client: &Client<E>,
    q: Interval<E>,
    op: Operation,
    rng_seed: u64,
) -> SampleStream<'_, E> {
    SampleStream {
        client,
        q,
        weighted: op == Operation::WeightedSample,
        chunk: DEFAULT_CHUNK,
        rng: SmallRng::seed_from_u64(rng_seed),
        buf: Vec::new(),
        exhausted: false,
        error: None,
    }
}

impl<E: GridEndpoint> SampleStream<'_, E> {
    /// Sets how many draws are fetched from the backend per refill
    /// (clamped to ≥ 1; default 512). Larger chunks amortize phase-1
    /// work and, on the sharded backend, the engine's batch overhead.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The backend failure that ended the stream, if any. `None` after
    /// the stream ends means the result set was genuinely empty.
    pub fn error(&self) -> Option<&QueryError> {
        self.error.as_ref()
    }

    /// Fills `out` (cleared first) with the next chunk of draws —
    /// up to [`SampleStream::with_chunk`] of them — reusing `out`'s
    /// capacity, so a prepare-once-draw-many loop that recycles one
    /// buffer never allocates per draw:
    ///
    /// ```
    /// # use irs_client::Irs;
    /// # use irs_engine::IndexKind;
    /// # use irs_core::{Interval, ItemId};
    /// # let data: Vec<_> = (0..500i64).map(|i| Interval::new(i, i + 20)).collect();
    /// # let client = Irs::builder().kind(IndexKind::Ait).build(&data)?;
    /// let mut stream = client.sample_stream(Interval::new(100, 200))?;
    /// let mut buf: Vec<ItemId> = Vec::new();
    /// for _round in 0..4 {
    ///     stream.draw_into(&mut buf); // refills in place, no realloc
    ///     assert!(!buf.is_empty());
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// `out` left empty means the stream has ended: the result set is
    /// empty, or the backend failed ([`SampleStream::error`] tells
    /// which). Draws already buffered by iterator use are handed over
    /// first, so mixing `next()` and `draw_into` never drops or
    /// duplicates a draw.
    pub fn draw_into(&mut self, out: &mut Vec<ItemId>) {
        out.clear();
        // Hand over anything the iterator side buffered.
        out.append(&mut self.buf);
        if self.exhausted || out.len() >= self.chunk {
            return;
        }
        let before = out.len();
        let need = self.chunk - before;
        self.refill_into(need, out);
        if out.len() == before {
            // Empty refill: the result set is empty (or the backend
            // failed — see `error()`); either way the stream is over.
            self.exhausted = true;
        }
    }

    /// Appends up to `n` fresh draws from the backend to `out`.
    fn refill_into(&mut self, n: usize, out: &mut Vec<ItemId>) {
        match self.client.backend() {
            Backend::Mono { index, .. } => {
                // Take the read side only for this refill, so writers
                // interleave between chunks instead of starving behind
                // a long-lived stream.
                let Ok(guard) = index.read() else {
                    self.error = Some(QueryError::ShardFailed { shard: 0 });
                    return;
                };
                let handle = if self.weighted {
                    guard.prepare_weighted(self.q)
                } else {
                    guard.prepare(self.q)
                };
                match handle {
                    Some(h) => h.sample_into_dyn(&mut self.rng as &mut dyn RngCore, n, out),
                    // `None` despite a positive capability claim would
                    // be an index bug; surface the typed error instead
                    // of panicking.
                    None => {
                        self.error = Some(
                            self.client
                                .kind()
                                .unsupported_error(self.client.is_weighted(), self.op()),
                        );
                    }
                }
            }
            Backend::Sharded(engine) => {
                let query = if self.weighted {
                    Query::SampleWeighted { q: self.q, s: n }
                } else {
                    Query::Sample { q: self.q, s: n }
                };
                match engine.run(&[query]).swap_remove(0) {
                    // Move the engine's draw vector rather than copying
                    // it; `append` leaves `out`'s capacity in place for
                    // the next refill.
                    Ok(QueryOutput::Samples(mut ids)) => out.append(&mut ids),
                    Ok(_) => self.error = Some(crate::protocol_error(self.op())),
                    Err(e) => self.error = Some(e),
                }
            }
        }
    }

    fn op(&self) -> Operation {
        if self.weighted {
            Operation::WeightedSample
        } else {
            Operation::UniformSample
        }
    }
}

impl<E: GridEndpoint> Iterator for SampleStream<'_, E> {
    type Item = ItemId;

    fn next(&mut self) -> Option<ItemId> {
        if let Some(id) = self.buf.pop() {
            return Some(id);
        }
        if self.exhausted {
            return None;
        }
        // Refill the internal buffer in place (it keeps its capacity
        // across refills).
        let mut buf = std::mem::take(&mut self.buf);
        self.refill_into(self.chunk, &mut buf);
        self.buf = buf;
        if self.buf.is_empty() {
            // Empty refill: the result set is empty (or the backend
            // failed — see `error()`); either way the stream is over.
            self.exhausted = true;
            return None;
        }
        self.buf.pop()
    }
}
