//! # irs-client — the unified fallible query facade
//!
//! One entry point over every IRS backend in the workspace: build a
//! [`Client`] with [`Irs::builder`], and the same typed, panic-free API
//! serves a monolithic single-threaded index (`shards(1)`, the default)
//! or the sharded [`irs_engine::Engine`] (`shards(k)` for `k > 1`) —
//! the backend choice is a construction knob, not an API fork.
//!
//! ```
//! use irs_client::Irs;
//! use irs_engine::IndexKind;
//! use irs_core::Interval;
//!
//! let data: Vec<_> = (0..10_000i64).map(|i| Interval::new(i, i + 50)).collect();
//! let client = Irs::builder()
//!     .kind(IndexKind::Ait)
//!     .shards(4)
//!     .seed(7)
//!     .build(&data)?;
//!
//! let q = Interval::new(100, 200);
//! assert_eq!(client.count(q)?, 151);
//! assert_eq!(client.sample(q, 8)?.len(), 8);
//!
//! // Capability discovery instead of probe-and-catch:
//! assert!(!client.capabilities().weighted_sample); // no weights supplied
//!
//! // Share it: a clone is a cheap handle to the same backend, and
//! // queries from many threads run concurrently.
//! let handle = client.clone();
//! std::thread::spawn(move || handle.count(q)).join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The facade's contract, shared with the engine and pinned by the
//! workspace's capability property tests:
//!
//! - **Everything is fallible and typed.** Construction returns
//!   [`BuildError`] (weights validated up front, the offending index
//!   named); queries return [`QueryError`]. Nothing on the query path
//!   panics.
//! - **An empty result set is not an error**: sampling an empty
//!   `q ∩ X` yields `Ok` with an empty vector, counting it `Ok(0)`.
//! - **Capabilities are queryable metadata** ([`Client::capabilities`]):
//!   an operation claimed there succeeds; one denied there fails with
//!   [`QueryError::UnsupportedOperation`] / [`QueryError::NotWeighted`].
//! - **The backend is distribution-transparent**: sampling through a
//!   `Client` follows exactly the distribution of the underlying
//!   structure, monolithic or sharded (the engine's multinomial
//!   allocation argument; chi-square suites pin both paths).
//! - **The handle is shared-by-clone.** `Client` is `Clone + Send +
//!   Sync`; clones address the same index. Query methods take `&self`
//!   and run concurrently from any number of threads (shared read
//!   locks on the monolithic backend, the engine's concurrent read
//!   path on the sharded one).
//! - **Mutation is first-class, and writer-gated.** On update-capable
//!   kinds ([`IndexKind::Ait`], [`IndexKind::AwitDynamic`]) the client
//!   ingests while it serves — [`Client::insert`],
//!   [`Client::insert_weighted`], [`Client::remove`],
//!   [`Client::extend_batch`] (pooled batch insertion), and
//!   [`Client::apply`] for mixed batches, all `&mut self` on the
//!   handle. Clones that share a backend coordinate explicitly through
//!   [`Client::writer`], which hands out the one writer seat
//!   ([`ClientWriter`]) — mutations from different clones serialize
//!   there, and a query never observes a torn *shard*: each shard's
//!   slice of a mutation batch applies atomically under that shard's
//!   write lock (on the monolithic backend the whole batch is one
//!   such slice; on the sharded backend a concurrent query may see a
//!   multi-shard batch land shard by shard). Failures
//!   are the typed [`irs_core::UpdateError`] taxonomy, and inserted
//!   ids are stable: the id an insert returns is the id queries report
//!   and the id a later [`Client::remove`] takes, on both backends.

#![deny(missing_docs)]

mod stream;

pub use stream::SampleStream;

use irs_core::persist::{PersistError, Reader};
use irs_core::wal::{self, ReplicationError, WalReplay, WalWriter};
use irs_core::{
    splitmix64 as mix, validate_update_weight, validate_weights, BuildError, Capabilities,
    GridEndpoint, Interval, ItemId, Mutation, Operation, QueryError, UpdateError, UpdateOutput,
};
use irs_engine::{persist, DynIndex, Engine, EngineConfig, IndexKind, Query, QueryOutput};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Namespace for the facade's entry point: [`Irs::builder`].
pub struct Irs;

impl Irs {
    /// Starts configuring a [`Client`]; finish with
    /// [`IrsBuilder::build`].
    pub fn builder() -> IrsBuilder {
        IrsBuilder {
            kind: IndexKind::Ait,
            shards: 1,
            seed: 0x1D5_EA5E,
            weights: None,
        }
    }
}

/// Configures and builds a [`Client`].
///
/// Defaults: [`IndexKind::Ait`], one shard (monolithic backend), no
/// weights, a fixed seed.
#[derive(Clone, Debug)]
pub struct IrsBuilder {
    kind: IndexKind,
    shards: usize,
    seed: u64,
    weights: Option<Vec<f64>>,
}

impl IrsBuilder {
    /// Selects the index structure (see [`IndexKind`]).
    pub fn kind(mut self, kind: IndexKind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the backend: `1` (the default, clamped to ≥ 1) serves
    /// queries from one in-process index; `k > 1` builds the sharded
    /// [`Engine`] with `k` shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Seeds every draw stream the client derives; a fixed seed and
    /// config replay identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supplies per-interval weights (`weights[i]` belongs to
    /// `data[i]`), enabling [`Operation::WeightedSample`] on kinds that
    /// support it. Validated in [`IrsBuilder::build`].
    pub fn weights(mut self, weights: impl Into<Vec<f64>>) -> Self {
        self.weights = Some(weights.into());
        self
    }

    /// Builds the client over `data`.
    ///
    /// Weights (when supplied) are validated before any index is
    /// built: a length mismatch or a non-positive / non-finite weight
    /// is a [`BuildError`] naming the offending index — bad weights
    /// never reach alias tables or cumulative arrays.
    pub fn build<E: GridEndpoint>(self, data: &[Interval<E>]) -> Result<Client<E>, BuildError> {
        if let Some(w) = &self.weights {
            validate_weights(data.len(), w)?;
        }
        let weighted = self.weights.is_some();
        let backend = if self.shards > 1 {
            let config = EngineConfig::new(self.kind)
                .shards(self.shards)
                .seed(self.seed);
            let engine = match &self.weights {
                Some(w) => Engine::try_new_weighted(data, w, config)?,
                None => Engine::try_new(data, config)?,
            };
            Backend::Sharded(engine)
        } else {
            Backend::Mono {
                index: RwLock::new(self.kind.build_index(data, self.weights.as_deref())),
                batch_counter: AtomicU64::new(0),
            }
        };
        Ok(Client {
            shared: Arc::new(ClientShared {
                backend,
                kind: self.kind,
                weighted,
                len: AtomicUsize::new(data.len()),
                seed: self.seed,
                stream_counter: AtomicU64::new(0),
                writer: Mutex::new(()),
            }),
        })
    }
}

/// A point-in-time description of a [`Client`]'s backend, for health
/// and stats surfaces (notably `irs-server`'s `stats` endpoint).
///
/// Taken with [`Client::stats`]. The snapshot is internally consistent
/// per field (each counter is read atomically) but not across fields —
/// a concurrent mutation may land between the `len` read and the
/// `shard_lens` read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientStats {
    /// The configured index kind.
    pub kind: IndexKind,
    /// [`irs_core::Codec::type_name`] of the endpoint scalar.
    pub endpoint: &'static str,
    /// Number of shards behind the facade (1 = monolithic backend).
    pub shards: usize,
    /// Live intervals indexed.
    pub len: usize,
    /// Live intervals per shard (`vec![len]` on the monolithic backend).
    pub shard_lens: Vec<usize>,
    /// Whether per-interval weights were supplied at build time.
    pub weighted: bool,
}

/// Salts the monolithic backend's per-batch draw streams apart from
/// the seed itself and from the stream-counter derivation.
const MONO_BATCH_SALT: u64 = 0x10_0717_BA7C;

/// Where a [`Client`] sends its queries.
enum Backend<E> {
    /// One in-process index behind the object-safe [`DynIndex`] facade;
    /// ids it reports are already dataset-global. Queries hold the read
    /// side of the lock, the writer seat takes the write side. Each
    /// unseeded sampling batch derives its own draw stream from the
    /// counter (exactly like the engine), so concurrent callers never
    /// serialize on a shared RNG.
    Mono {
        index: RwLock<Box<dyn DynIndex<E>>>,
        batch_counter: AtomicU64,
    },
    /// The sharded engine (itself a shared, clonable service).
    Sharded(Engine<E>),
}

/// The state every clone of a [`Client`] shares.
struct ClientShared<E> {
    backend: Backend<E>,
    kind: IndexKind,
    weighted: bool,
    /// Live intervals; atomic so `len()` never takes the writer lock.
    len: AtomicUsize,
    seed: u64,
    /// Decorrelates the draw streams of successive [`SampleStream`]s
    /// on the monolithic backend.
    stream_counter: AtomicU64,
    /// The single writer seat: mutations from every clone serialize
    /// here (see [`Client::writer`]).
    writer: Mutex<()>,
}

/// A handle serving one-shot queries, batches, sample streams, and —
/// on update-capable kinds — live mutations over either backend. Build
/// one with [`Irs::builder`].
///
/// The handle is cheap to clone (`Arc` under the hood) and
/// `Send + Sync`: clones address the same index, and query methods
/// (`&self`) run concurrently from any number of threads. Mutation
/// methods take `&mut self` on the handle as single-owner convenience;
/// across clones they all funnel through the shared writer seat
/// ([`Client::writer`]), so two clones can never interleave mutation
/// batches, and a query never observes a torn shard — each shard's
/// slice of a mutation batch applies atomically under the shard's
/// write lock (the whole batch, on the monolithic backend; per shard,
/// on the sharded one, where a concurrent query may observe the
/// sub-batches land shard by shard).
pub struct Client<E> {
    shared: Arc<ClientShared<E>>,
}

// Manual impl: a clone is a new handle to the same backend, and must
// not require `E: Clone` (derive would add that bound).
impl<E> Clone for Client<E> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<E: GridEndpoint> Client<E> {
    /// The configured index kind.
    pub fn kind(&self) -> IndexKind {
        self.shared.kind
    }

    /// What this client supports, as queryable metadata. Operations
    /// denied here fail with a typed [`QueryError`]; operations claimed
    /// here succeed.
    pub fn capabilities(&self) -> Capabilities {
        self.shared.kind.capabilities(self.shared.weighted)
    }

    /// Number of shards behind the facade (1 = monolithic backend).
    pub fn shard_count(&self) -> usize {
        match &self.shared.backend {
            Backend::Mono { .. } => 1,
            Backend::Sharded(engine) => engine.shard_count(),
        }
    }

    /// Live intervals indexed (build-time data plus inserts minus
    /// removes).
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::SeqCst)
    }

    /// Whether the client holds zero intervals.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether per-interval weights were supplied at build time.
    pub fn is_weighted(&self) -> bool {
        self.shared.weighted
    }

    /// Estimated bytes of heap memory the backend's indexes retain
    /// (the engine's per-shard sum, or the monolithic index under a
    /// brief read lock). The figure the catalog's memory budget
    /// accounts per collection.
    pub fn heap_bytes(&self) -> usize {
        match &self.shared.backend {
            Backend::Mono { index, .. } => {
                index.read().unwrap_or_else(|e| e.into_inner()).heap_bytes()
            }
            Backend::Sharded(engine) => engine.heap_bytes(),
        }
    }

    /// A point-in-time description of the backend — kind, endpoint
    /// type, shard layout, live lengths — for health/stats surfaces.
    /// Never blocks on the writer seat (all fields are lock-free reads
    /// or per-shard length snapshots).
    pub fn stats(&self) -> ClientStats {
        let len = self.len();
        ClientStats {
            kind: self.shared.kind,
            endpoint: E::type_name(),
            shards: self.shard_count(),
            len,
            shard_lens: match &self.shared.backend {
                Backend::Mono { .. } => vec![len],
                Backend::Sharded(engine) => engine.shard_lens(),
            },
            weighted: self.shared.weighted,
        }
    }

    /// Executes a batch: one `Result` per [`Query`], in order. An empty
    /// result set is `Ok` (empty samples / zero count), never an error.
    /// An empty *batch* returns immediately without touching any lock.
    ///
    /// Each call advances the client's draw stream, so samples are
    /// independent across calls; use [`Client::run_seeded`] to pin the
    /// stream. Safe to call concurrently from any number of clones.
    pub fn run(&self, queries: &[Query<E>]) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        match &self.shared.backend {
            Backend::Sharded(engine) => engine.run(queries),
            Backend::Mono {
                index,
                batch_counter,
            } => {
                let Ok(guard) = index.read() else {
                    // Poisoned: a mutation panicked midway, the index
                    // may be torn — same verdict as a dead shard.
                    return vec![Err(QueryError::ShardFailed { shard: 0 }); queries.len()];
                };
                // Per-batch derived draw stream (sampling batches only
                // advance the counter): concurrent callers never share
                // — or serialize on — RNG state.
                let mut rng = if queries.iter().any(Query::is_sampling) {
                    let batch = batch_counter.fetch_add(1, Ordering::Relaxed);
                    SmallRng::seed_from_u64(
                        (self.shared.seed ^ MONO_BATCH_SALT).wrapping_add(mix(batch)),
                    )
                } else {
                    SmallRng::seed_from_u64(0) // never drawn from
                };
                self.run_mono(&**guard, queries, &mut rng)
            }
        }
    }

    /// [`Client::run`] with an explicit seed: identical seed, batch,
    /// and client config reproduce identical results — regardless of
    /// what other threads are doing to the same backend's *query* side
    /// (concurrent mutations, of course, change the data being
    /// sampled).
    pub fn run_seeded(
        &self,
        queries: &[Query<E>],
        seed: u64,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        match &self.shared.backend {
            Backend::Sharded(engine) => engine.run_seeded(queries, seed),
            Backend::Mono { index, .. } => {
                let Ok(guard) = index.read() else {
                    return vec![Err(QueryError::ShardFailed { shard: 0 }); queries.len()];
                };
                self.run_mono(&**guard, queries, &mut SmallRng::seed_from_u64(seed))
            }
        }
    }

    /// Convenience: exact `|q ∩ X|`.
    pub fn count(&self, q: Interval<E>) -> Result<usize, QueryError> {
        match self.run(&[Query::Count { q }]).swap_remove(0)? {
            QueryOutput::Count(n) => Ok(n),
            _ => Err(protocol_error(Operation::Count)),
        }
    }

    /// Convenience: ids of all intervals overlapping `q`.
    pub fn search(&self, q: Interval<E>) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Search { q }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::Search)),
        }
    }

    /// Convenience: ids of all intervals containing `p`.
    pub fn stab(&self, p: E) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Stab { p }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::Stab)),
        }
    }

    /// Convenience: `s` uniform samples from `q ∩ X` (empty if the
    /// result set is empty — that is not an error).
    pub fn sample(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Sample { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::UniformSample)),
        }
    }

    /// Convenience: `s` weight-proportional samples from `q ∩ X`.
    pub fn sample_weighted(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::SampleWeighted { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::WeightedSample)),
        }
    }

    /// Claims the backend's single writer seat, blocking until any
    /// other clone's mutation (or writer guard) finishes.
    ///
    /// This is how clones that share a backend mutate it: queries stay
    /// `&self` and concurrent, while every mutation — whether issued
    /// through the guard or through the `&mut self` convenience
    /// methods — holds this seat for the duration of its batch.
    ///
    /// ```
    /// # use irs_client::Irs;
    /// # use irs_engine::IndexKind;
    /// # use irs_core::Interval;
    /// let data: Vec<_> = (0..100i64).map(|i| Interval::new(i, i + 5)).collect();
    /// let client = Irs::builder().kind(IndexKind::Ait).build(&data)?;
    /// let shared = client.clone(); // e.g. handed to another thread
    /// let id = shared.writer().insert(Interval::new(7, 9))?;
    /// assert!(client.search(Interval::new(7, 9))?.contains(&id));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn writer(&self) -> ClientWriter<'_, E> {
        ClientWriter {
            client: self,
            _seat: self.shared.writer.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Applies a batch of typed [`Mutation`]s: one `Result` per
    /// mutation, in order, identically over both backends. Equivalent
    /// to [`ClientWriter::apply`] on a freshly claimed writer seat.
    ///
    /// Capability-gated up front: on a kind whose
    /// [`Client::capabilities`] report `update == false`, every
    /// mutation fails with the typed [`UpdateError::UnsupportedKind`]
    /// and nothing is touched. On the sharded backend, inserts route to
    /// the least-loaded shard and removes to the shard that owns the
    /// id; ids stay stable either way (see [`Client::insert`]).
    pub fn apply(&mut self, muts: &[Mutation<E>]) -> Vec<Result<UpdateOutput, UpdateError>> {
        self.writer().apply(muts)
    }

    /// Inserts one interval immediately (the paper's §III-D one-by-one
    /// insertion), returning its stable id.
    ///
    /// The interval is sampleable and searchable as soon as this
    /// returns, and the id remains valid — referring to this interval
    /// in query results and [`Client::remove`] — until removed, on both
    /// the monolithic and the sharded backend. On a weighted
    /// update-capable backend the interval joins with weight `1.0`.
    pub fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        self.writer().insert(iv)
    }

    /// Inserts one *weighted* interval (Problem 2), returning its
    /// stable id. The weight passes the same validation gate as
    /// construction-time weights; requires an update-capable kind built
    /// with weights ([`IndexKind::AwitDynamic`] + `.weights(w)`).
    pub fn insert_weighted(&mut self, iv: Interval<E>, weight: f64) -> Result<ItemId, UpdateError> {
        self.writer().insert_weighted(iv, weight)
    }

    /// Removes the live interval behind `id`. After `Ok`, the id never
    /// appears in any query result again and is never reissued;
    /// removing an id that is not live (never issued, or already
    /// removed) is [`UpdateError::UnknownId`].
    pub fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        self.writer().remove(id)
    }

    /// Inserts a batch of intervals through the structure's insertion
    /// pool (the paper's §III-D batch insertion): every interval is
    /// immediately visible to queries, while tree maintenance is
    /// amortized across pool flushes — the high-throughput ingest path
    /// Table VII measures against one-by-one insertion. Returns the new
    /// stable ids in input order.
    ///
    /// All-or-nothing on both backends: if any insert fails, the
    /// inserts that did land are rolled back (best effort) and the
    /// first error is returned, so an `Err` never strands intervals
    /// the caller has no ids for.
    pub fn extend_batch(&mut self, ivs: &[Interval<E>]) -> Result<Vec<ItemId>, UpdateError> {
        self.writer().extend_batch(ivs)
    }

    /// A chunked, prepare-amortizing uniform sample stream over `q ∩ X`.
    ///
    /// Draws are fetched from the backend in chunks of
    /// [`SampleStream::with_chunk`] size; each refill takes the
    /// backend's read side briefly (so concurrent writers interleave
    /// *between* refills, and a refill samples the then-current data).
    /// Use [`SampleStream::draw_into`] to reuse one output buffer
    /// across refills. See [`SampleStream`] for the termination and
    /// error contract.
    pub fn sample_stream(&self, q: Interval<E>) -> Result<SampleStream<'_, E>, QueryError> {
        self.stream(q, Operation::UniformSample)
    }

    /// A chunked, prepare-amortizing *weighted* sample stream over `q ∩ X`.
    pub fn weighted_sample_stream(
        &self,
        q: Interval<E>,
    ) -> Result<SampleStream<'_, E>, QueryError> {
        self.stream(q, Operation::WeightedSample)
    }

    fn stream(&self, q: Interval<E>, op: Operation) -> Result<SampleStream<'_, E>, QueryError> {
        if !self.capabilities().supports(op) {
            return Err(self.shared.kind.unsupported_error(self.shared.weighted, op));
        }
        let counter = self.shared.stream_counter.fetch_add(1, Ordering::Relaxed);
        let rng_seed = self.shared.seed ^ mix(counter + 1);
        Ok(stream::new_stream(self, q, op, rng_seed))
    }

    /// Saves the client's prepared backend to `dir` (created if
    /// absent), in the same directory layout [`Engine::save`] writes —
    /// a snapshot saved through either handle loads through the other.
    ///
    /// The snapshot is consistent: the writer seat is held for the
    /// duration (mutations wait; queries keep running), and a loaded
    /// copy is byte-equivalent — [`Client::run_seeded`] replays
    /// identically and ids issued before the save stay valid after the
    /// load. See `DESIGN.md`, "On-disk snapshot format".
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        let shared = &*self.shared;
        match &shared.backend {
            Backend::Sharded(engine) => {
                engine.save_with_stream_counter(dir, shared.stream_counter.load(Ordering::SeqCst))
            }
            Backend::Mono {
                index,
                batch_counter,
            } => {
                let dir = dir.as_ref();
                let _seat = shared.writer.lock().unwrap_or_else(|e| e.into_inner());
                std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, &e))?;
                let guard = index.read().map_err(|_| PersistError::Unsupported {
                    reason: "the index lock is poisoned; its state cannot be trusted on disk",
                })?;
                let len = shared.len.load(Ordering::SeqCst);
                let manifest = persist::Manifest {
                    snapshot_id: persist::fresh_snapshot_id(),
                    kind: shared.kind.name().to_string(),
                    endpoint: E::type_name().to_string(),
                    weighted: shared.weighted,
                    shards: 1,
                    seed: shared.seed,
                    batch_counter: batch_counter.load(Ordering::SeqCst),
                    stream_counter: shared.stream_counter.load(Ordering::SeqCst),
                    len,
                    shard_lens: vec![len],
                };
                let mut payload = Vec::new();
                guard.encode_snapshot(&mut payload)?;
                drop(guard);
                let header = persist::ShardHeader {
                    snapshot_id: manifest.snapshot_id,
                    kind: manifest.kind.clone(),
                    endpoint: manifest.endpoint.clone(),
                    shard: 0,
                    shards: 1,
                    weighted: manifest.weighted,
                };
                // Shard file first, manifest last (both atomic): an
                // interrupted save is detected at load by the snapshot
                // id instead of silently mixing two states.
                persist::write_shard_file(dir, &header, &payload)?;
                persist::write_manifest(dir, &manifest)
            }
        }
    }

    /// Loads a client from a snapshot directory written by
    /// [`Client::save`] or [`Engine::save`]. The backend is chosen by
    /// the manifest: one shard restores the monolithic in-process
    /// index, more restore the sharded engine — exactly as
    /// [`IrsBuilder::shards`] would have chosen at build time.
    ///
    /// All validation is typed ([`PersistError`]): magic, format
    /// version, per-section CRCs, manifest/shard cross-checks, and each
    /// structure's decode invariants. Nothing on the load path panics.
    pub fn load(dir: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let manifest = persist::read_manifest(dir)?;
        let kind = IndexKind::parse(&manifest.kind).ok_or_else(|| PersistError::UnknownKind {
            name: manifest.kind.clone(),
        })?;
        if manifest.endpoint != E::type_name() {
            return Err(PersistError::EndpointMismatch {
                stored: manifest.endpoint.clone(),
                expected: E::type_name(),
            });
        }
        let backend = if manifest.shards > 1 {
            Backend::Sharded(Engine::load(dir)?)
        } else {
            let shard = persist::read_shard_payload(dir, &manifest, 0)?;
            let mut r = Reader::new(shard.payload());
            let index = kind.decode_index::<E>(&mut r, manifest.weighted)?;
            if !r.is_empty() {
                return Err(PersistError::Corrupt {
                    what: "index section has trailing bytes",
                });
            }
            Backend::Mono {
                index: RwLock::new(index),
                batch_counter: AtomicU64::new(manifest.batch_counter),
            }
        };
        Ok(Client {
            shared: Arc::new(ClientShared {
                backend,
                kind,
                weighted: manifest.weighted,
                len: AtomicUsize::new(manifest.len),
                seed: manifest.seed,
                // Restored so post-restart streams derive fresh draw
                // seeds instead of replaying pre-save streams.
                stream_counter: AtomicU64::new(manifest.stream_counter),
                writer: Mutex::new(()),
            }),
        })
    }

    /// Restores a client to an exact write-ahead-log position: loads
    /// the snapshot in `snapshot_dir`, recovers the log at `wal_path`
    /// (truncating any torn tail back to the last valid record), and
    /// re-applies every logged batch the snapshot predates — batches at
    /// or before the snapshot's checkpoint sidecar are skipped, so
    /// nothing is applied twice. Point-in-time recovery is this same
    /// walk over a shorter log prefix.
    ///
    /// Returns the recovered client, the log writer positioned to
    /// append (hand it to `irs_server::serve_primary` to resume the
    /// writer seat), and the replay itself — inspect
    /// [`WalReplay::stopped`] to learn whether (and exactly how) the
    /// log's tail was damaged. Replay is deterministic: a batch that
    /// failed when first acked fails identically here.
    pub fn recover(
        snapshot_dir: impl AsRef<std::path::Path>,
        wal_path: impl AsRef<std::path::Path>,
    ) -> Result<(Self, WalWriter<E>, WalReplay<E>), ReplicationError> {
        let dir = snapshot_dir.as_ref();
        let mut client = Client::load(dir).map_err(ReplicationError::Persist)?;
        let checkpoint = wal::read_checkpoint(dir)
            .map_err(ReplicationError::Persist)?
            .unwrap_or(0);
        let (wal, replay) = WalWriter::recover(wal_path)?;
        for record in &replay.records {
            if record.seq > checkpoint {
                let _ = client.apply(&record.muts);
            }
        }
        Ok((client, wal, replay))
    }

    /// The backend, for the stream module.
    pub(crate) fn backend(&self) -> &Backend<E> {
        &self.shared.backend
    }

    /// Runs a whole batch against the monolithic index. Ids the index
    /// reports are global already (it spans the full dataset).
    fn run_mono(
        &self,
        index: &dyn DynIndex<E>,
        queries: &[Query<E>],
        rng: &mut SmallRng,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        let caps = self.capabilities();
        queries
            .iter()
            .map(|query| {
                let op = query.operation();
                if !caps.supports(op) {
                    return Err(self.shared.kind.unsupported_error(self.shared.weighted, op));
                }
                match *query {
                    Query::Count { q } => Ok(QueryOutput::Count(index.count(q))),
                    Query::Search { q } => {
                        let mut ids = Vec::new();
                        index.search_into(q, &mut ids);
                        Ok(QueryOutput::Ids(ids))
                    }
                    Query::Stab { p } => {
                        let mut ids = Vec::new();
                        index.stab_into(p, &mut ids);
                        Ok(QueryOutput::Ids(ids))
                    }
                    Query::Sample { q, s } => {
                        // `prepare` returning `None` despite a positive
                        // capability claim would be an index bug; map it
                        // to the typed error rather than panicking.
                        let handle = index.prepare(q).ok_or_else(|| {
                            self.shared.kind.unsupported_error(self.shared.weighted, op)
                        })?;
                        let mut out = Vec::with_capacity(s);
                        handle.sample_into_dyn(rng as &mut dyn RngCore, s, &mut out);
                        Ok(QueryOutput::Samples(out))
                    }
                    Query::SampleWeighted { q, s } => {
                        let handle = index.prepare_weighted(q).ok_or_else(|| {
                            self.shared.kind.unsupported_error(self.shared.weighted, op)
                        })?;
                        let mut out = Vec::with_capacity(s);
                        handle.sample_into_dyn(rng as &mut dyn RngCore, s, &mut out);
                        Ok(QueryOutput::Samples(out))
                    }
                }
            })
            .collect()
    }
}

/// The backend's single writer seat, claimed with [`Client::writer`].
///
/// Holding a `ClientWriter` excludes every other mutation — from this
/// clone or any other — for as long as it lives; queries keep running
/// concurrently and see each mutation batch atomically. Drop the guard
/// (or let it go out of scope) to release the seat.
pub struct ClientWriter<'a, E> {
    client: &'a Client<E>,
    _seat: MutexGuard<'a, ()>,
}

impl<E: GridEndpoint> ClientWriter<'_, E> {
    /// See [`Client::apply`].
    pub fn apply(&mut self, muts: &[Mutation<E>]) -> Vec<Result<UpdateOutput, UpdateError>> {
        let shared = &*self.client.shared;
        match &shared.backend {
            Backend::Sharded(engine) => {
                let out = engine.apply(muts);
                shared.len.store(engine.len(), Ordering::SeqCst);
                out
            }
            Backend::Mono { index, .. } => {
                let out = with_mono_write(index, |idx| {
                    muts.iter()
                        .map(|&m| apply_mono(shared.kind, shared.weighted, idx, m, false))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_else(|| vec![Err(UpdateError::ShardFailed { shard: 0 }); muts.len()]);
                shared.len.store(
                    bookkept_len(shared.len.load(Ordering::SeqCst), &out),
                    Ordering::SeqCst,
                );
                out
            }
        }
    }

    /// See [`Client::insert`].
    pub fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        match self.apply(&[Mutation::Insert { iv }]).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// See [`Client::insert_weighted`].
    pub fn insert_weighted(&mut self, iv: Interval<E>, weight: f64) -> Result<ItemId, UpdateError> {
        let muts = [Mutation::InsertWeighted { iv, weight }];
        match self.apply(&muts).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// See [`Client::remove`].
    pub fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        self.apply(&[Mutation::Delete { id }])
            .swap_remove(0)
            .map(|_| ())
    }

    /// See [`Client::extend_batch`].
    pub fn extend_batch(&mut self, ivs: &[Interval<E>]) -> Result<Vec<ItemId>, UpdateError> {
        let shared = &*self.client.shared;
        match &shared.backend {
            Backend::Sharded(engine) => {
                let out = engine.extend_batch(ivs);
                shared.len.store(engine.len(), Ordering::SeqCst);
                out
            }
            Backend::Mono { index, .. } => {
                let (kind, weighted) = (shared.kind, shared.weighted);
                let mut delta: isize = 0;
                let result = with_mono_write(index, |idx| {
                    let mut ids = Vec::with_capacity(ivs.len());
                    let mut first_err = None;
                    for &iv in ivs {
                        match apply_mono(kind, weighted, idx, Mutation::Insert { iv }, true) {
                            Ok(UpdateOutput::Inserted(id)) => {
                                ids.push(id);
                                delta += 1;
                            }
                            Ok(UpdateOutput::Removed) => {
                                first_err = Some(UpdateError::UnsupportedKind {
                                    kind: kind.name(),
                                    reason:
                                        "client protocol error: mismatched update output variant",
                                });
                                break;
                            }
                            Err(e) => {
                                first_err = Some(e);
                                break;
                            }
                        }
                    }
                    match first_err {
                        None => Ok(ids),
                        Some(e) => {
                            // Roll the applied prefix back so an `Err`
                            // leaves the dataset unchanged.
                            for id in ids {
                                let rollback = Mutation::Delete { id };
                                if apply_mono(kind, weighted, idx, rollback, false).is_ok() {
                                    delta -= 1;
                                }
                            }
                            Err(e)
                        }
                    }
                })
                .unwrap_or(Err(UpdateError::ShardFailed { shard: 0 }));
                let len = shared.len.load(Ordering::SeqCst);
                shared
                    .len
                    .store(len.saturating_add_signed(delta), Ordering::SeqCst);
                result
            }
        }
    }

    /// A mismatched update output can only mean a facade bug; report it
    /// as a typed error rather than panicking the caller.
    fn mutation_protocol_error(&self) -> UpdateError {
        UpdateError::UnsupportedKind {
            kind: self.client.shared.kind.name(),
            reason: "client protocol error: mismatched update output variant",
        }
    }
}

/// Runs `f` under the monolithic index's write lock; `None` if the lock
/// is poisoned (a previous mutation panicked midway — the index may be
/// torn, so refusing beats corrupting further).
fn with_mono_write<E, T>(
    index: &RwLock<Box<dyn DynIndex<E>>>,
    f: impl FnOnce(&mut dyn DynIndex<E>) -> T,
) -> Option<T> {
    let mut guard = index.write().ok()?;
    Some(f(guard.as_mut()))
}

/// A mismatched output variant can only mean a facade bug; report it as
/// a typed error rather than panicking the caller.
fn protocol_error(op: Operation) -> QueryError {
    QueryError::UnsupportedOperation {
        op,
        reason: "client protocol error: mismatched output variant",
    }
}

/// Applies one mutation to the monolithic backend: the same capability
/// gate and weight validation the engine performs before routing, then
/// the index's own mutable surface. Ids the index issues are already
/// dataset-global (it spans the full dataset).
fn apply_mono<E: GridEndpoint>(
    kind: IndexKind,
    weighted: bool,
    index: &mut dyn DynIndex<E>,
    m: Mutation<E>,
    buffered: bool,
) -> Result<UpdateOutput, UpdateError> {
    let op = m.op();
    if !kind.supports_mutation(weighted, op) {
        return Err(kind.unsupported_update_error(weighted, op));
    }
    match m {
        Mutation::Insert { iv } => if buffered {
            index.insert_buffered(iv)
        } else {
            index.insert(iv)
        }
        .map(UpdateOutput::Inserted),
        Mutation::InsertWeighted { iv, weight } => {
            validate_update_weight(weight)?;
            index
                .insert_weighted(iv, weight)
                .map(UpdateOutput::Inserted)
        }
        Mutation::Delete { id } => index.remove(id).map(|()| UpdateOutput::Removed),
    }
}

/// `len` after a mutation batch: +1 per successful insert, −1 per
/// successful remove.
fn bookkept_len(len: usize, results: &[Result<UpdateOutput, UpdateError>]) -> usize {
    results.iter().fold(len, |len, r| match r {
        Ok(UpdateOutput::Inserted(_)) => len + 1,
        Ok(UpdateOutput::Removed) => len.saturating_sub(1),
        Err(_) => len,
    })
}
