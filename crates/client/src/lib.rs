//! # irs-client — the unified fallible query facade
//!
//! One entry point over every IRS backend in the workspace: build a
//! [`Client`] with [`Irs::builder`], and the same typed, panic-free API
//! serves a monolithic single-threaded index (`shards(1)`, the default)
//! or the sharded [`irs_engine::Engine`] (`shards(k)` for `k > 1`) —
//! the backend choice is a construction knob, not an API fork.
//!
//! ```
//! use irs_client::Irs;
//! use irs_engine::IndexKind;
//! use irs_core::Interval;
//!
//! let data: Vec<_> = (0..10_000i64).map(|i| Interval::new(i, i + 50)).collect();
//! let client = Irs::builder()
//!     .kind(IndexKind::Ait)
//!     .shards(4)
//!     .seed(7)
//!     .build(&data)?;
//!
//! let q = Interval::new(100, 200);
//! assert_eq!(client.count(q)?, 151);
//! assert_eq!(client.sample(q, 8)?.len(), 8);
//!
//! // Capability discovery instead of probe-and-catch:
//! assert!(!client.capabilities().weighted_sample); // no weights supplied
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The facade's contract, shared with the engine and pinned by the
//! workspace's capability property tests:
//!
//! - **Everything is fallible and typed.** Construction returns
//!   [`BuildError`] (weights validated up front, the offending index
//!   named); queries return [`QueryError`]. Nothing on the query path
//!   panics.
//! - **An empty result set is not an error**: sampling an empty
//!   `q ∩ X` yields `Ok` with an empty vector, counting it `Ok(0)`.
//! - **Capabilities are queryable metadata** ([`Client::capabilities`]):
//!   an operation claimed there succeeds; one denied there fails with
//!   [`QueryError::UnsupportedOperation`] / [`QueryError::NotWeighted`].
//! - **The backend is distribution-transparent**: sampling through a
//!   `Client` follows exactly the distribution of the underlying
//!   structure, monolithic or sharded (the engine's multinomial
//!   allocation argument; chi-square suites pin both paths).
//! - **Mutation is first-class**: on update-capable kinds
//!   ([`IndexKind::Ait`], [`IndexKind::AwitDynamic`]) the client
//!   ingests while it serves — [`Client::insert`],
//!   [`Client::insert_weighted`], [`Client::remove`],
//!   [`Client::extend_batch`] (pooled batch insertion), and
//!   [`Client::apply`] for mixed batches. Mutations take `&mut self`
//!   (queries stay `&self`), failures are the typed
//!   [`irs_core::UpdateError`] taxonomy, and inserted ids are stable:
//!   the id an insert returns is the id queries report and the id a
//!   later [`Client::remove`] takes, on both backends.

#![deny(missing_docs)]

mod stream;

pub use stream::SampleStream;

use irs_core::{
    splitmix64 as mix, validate_update_weight, validate_weights, BuildError, Capabilities,
    GridEndpoint, Interval, ItemId, Mutation, Operation, QueryError, UpdateError, UpdateOutput,
};
use irs_engine::{DynIndex, Engine, EngineConfig, IndexKind, Query, QueryOutput};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Namespace for the facade's entry point: [`Irs::builder`].
pub struct Irs;

impl Irs {
    /// Starts configuring a [`Client`]; finish with
    /// [`IrsBuilder::build`].
    pub fn builder() -> IrsBuilder {
        IrsBuilder {
            kind: IndexKind::Ait,
            shards: 1,
            seed: 0x1D5_EA5E,
            weights: None,
        }
    }
}

/// Configures and builds a [`Client`].
///
/// Defaults: [`IndexKind::Ait`], one shard (monolithic backend), no
/// weights, a fixed seed.
#[derive(Clone, Debug)]
pub struct IrsBuilder {
    kind: IndexKind,
    shards: usize,
    seed: u64,
    weights: Option<Vec<f64>>,
}

impl IrsBuilder {
    /// Selects the index structure (see [`IndexKind`]).
    pub fn kind(mut self, kind: IndexKind) -> Self {
        self.kind = kind;
        self
    }

    /// Selects the backend: `1` (the default, clamped to ≥ 1) serves
    /// queries from one in-process index; `k > 1` builds the sharded
    /// [`Engine`] with `k` worker threads.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Seeds every draw stream the client derives; a fixed seed and
    /// config replay identically.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supplies per-interval weights (`weights[i]` belongs to
    /// `data[i]`), enabling [`Operation::WeightedSample`] on kinds that
    /// support it. Validated in [`IrsBuilder::build`].
    pub fn weights(mut self, weights: impl Into<Vec<f64>>) -> Self {
        self.weights = Some(weights.into());
        self
    }

    /// Builds the client over `data`.
    ///
    /// Weights (when supplied) are validated before any index is
    /// built: a length mismatch or a non-positive / non-finite weight
    /// is a [`BuildError`] naming the offending index — bad weights
    /// never reach alias tables or cumulative arrays.
    pub fn build<E: GridEndpoint>(self, data: &[Interval<E>]) -> Result<Client<E>, BuildError> {
        if let Some(w) = &self.weights {
            validate_weights(data.len(), w)?;
        }
        let weighted = self.weights.is_some();
        let backend = if self.shards > 1 {
            let config = EngineConfig::new(self.kind)
                .shards(self.shards)
                .seed(self.seed);
            let engine = match &self.weights {
                Some(w) => Engine::try_new_weighted(data, w, config)?,
                None => Engine::try_new(data, config)?,
            };
            Backend::Sharded(engine)
        } else {
            Backend::Mono {
                index: self.kind.build_index(data, self.weights.as_deref()),
                rng: Mutex::new(SmallRng::seed_from_u64(self.seed)),
            }
        };
        Ok(Client {
            backend,
            kind: self.kind,
            weighted,
            len: data.len(),
            seed: self.seed,
            stream_counter: AtomicU64::new(0),
        })
    }
}

/// Where a [`Client`] sends its queries.
enum Backend<E> {
    /// One in-process index behind the object-safe [`DynIndex`] facade;
    /// ids it reports are already dataset-global. The RNG serves the
    /// unseeded [`Client::run`] path (the engine manages its own).
    Mono {
        index: Box<dyn DynIndex<E>>,
        rng: Mutex<SmallRng>,
    },
    /// The sharded worker-per-shard engine.
    Sharded(Engine<E>),
}

/// A handle serving one-shot queries, batches, sample streams, and —
/// on update-capable kinds — live mutations over either backend. Build
/// one with [`Irs::builder`].
///
/// Query methods take `&self` and are safe to share across threads;
/// mutation methods take `&mut self`, so the borrow checker guarantees
/// the dataset never changes under an in-flight query or stream.
pub struct Client<E> {
    backend: Backend<E>,
    kind: IndexKind,
    weighted: bool,
    len: usize,
    seed: u64,
    /// Decorrelates the draw streams of successive [`SampleStream`]s
    /// on the monolithic backend.
    stream_counter: AtomicU64,
}

impl<E: GridEndpoint> Client<E> {
    /// The configured index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// What this client supports, as queryable metadata. Operations
    /// denied here fail with a typed [`QueryError`]; operations claimed
    /// here succeed.
    pub fn capabilities(&self) -> Capabilities {
        self.kind.capabilities(self.weighted)
    }

    /// Number of shards behind the facade (1 = monolithic backend).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Mono { .. } => 1,
            Backend::Sharded(engine) => engine.shard_count(),
        }
    }

    /// Live intervals indexed (build-time data plus inserts minus
    /// removes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the client holds zero intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether per-interval weights were supplied at build time.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Executes a batch: one `Result` per [`Query`], in order. An empty
    /// result set is `Ok` (empty samples / zero count), never an error.
    ///
    /// Each call advances the client's draw stream, so samples are
    /// independent across calls; use [`Client::run_seeded`] to pin the
    /// stream.
    pub fn run(&self, queries: &[Query<E>]) -> Vec<Result<QueryOutput, QueryError>> {
        match &self.backend {
            Backend::Sharded(engine) => engine.run(queries),
            Backend::Mono { index, rng } => {
                if queries.iter().any(Query::is_sampling) {
                    // A poisoned lock means another batch panicked inside
                    // an index; the RNG state is still fine to reuse.
                    let mut rng = rng.lock().unwrap_or_else(|e| e.into_inner());
                    self.run_mono(index.as_ref(), queries, &mut rng)
                } else {
                    // Read-only batch: skip the RNG lock so concurrent
                    // count/search/stab callers don't serialize on it.
                    let mut unused = SmallRng::seed_from_u64(0);
                    self.run_mono(index.as_ref(), queries, &mut unused)
                }
            }
        }
    }

    /// [`Client::run`] with an explicit seed: identical seed, batch,
    /// and client config reproduce identical results.
    pub fn run_seeded(
        &self,
        queries: &[Query<E>],
        seed: u64,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        match &self.backend {
            Backend::Sharded(engine) => engine.run_seeded(queries, seed),
            Backend::Mono { index, .. } => {
                self.run_mono(index.as_ref(), queries, &mut SmallRng::seed_from_u64(seed))
            }
        }
    }

    /// Convenience: exact `|q ∩ X|`.
    pub fn count(&self, q: Interval<E>) -> Result<usize, QueryError> {
        match self.run(&[Query::Count { q }]).swap_remove(0)? {
            QueryOutput::Count(n) => Ok(n),
            _ => Err(protocol_error(Operation::Count)),
        }
    }

    /// Convenience: ids of all intervals overlapping `q`.
    pub fn search(&self, q: Interval<E>) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Search { q }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::Search)),
        }
    }

    /// Convenience: ids of all intervals containing `p`.
    pub fn stab(&self, p: E) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Stab { p }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::Stab)),
        }
    }

    /// Convenience: `s` uniform samples from `q ∩ X` (empty if the
    /// result set is empty — that is not an error).
    pub fn sample(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Sample { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::UniformSample)),
        }
    }

    /// Convenience: `s` weight-proportional samples from `q ∩ X`.
    pub fn sample_weighted(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::SampleWeighted { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(protocol_error(Operation::WeightedSample)),
        }
    }

    /// Applies a batch of typed [`Mutation`]s: one `Result` per
    /// mutation, in order, identically over both backends.
    ///
    /// Capability-gated up front: on a kind whose
    /// [`Client::capabilities`] report `update == false`, every
    /// mutation fails with the typed [`UpdateError::UnsupportedKind`]
    /// and nothing is touched. On the sharded backend, inserts route to
    /// the least-loaded shard and removes to the shard that owns the
    /// id; ids stay stable either way (see [`Client::insert`]).
    pub fn apply(&mut self, muts: &[Mutation<E>]) -> Vec<Result<UpdateOutput, UpdateError>> {
        let (kind, weighted) = (self.kind, self.weighted);
        match &mut self.backend {
            Backend::Sharded(engine) => {
                let out = engine.apply(muts);
                self.len = engine.len();
                out
            }
            Backend::Mono { index, .. } => {
                let out: Vec<_> = muts
                    .iter()
                    .map(|&m| apply_mono(kind, weighted, index.as_mut(), m, false))
                    .collect();
                self.len = bookkept_len(self.len, &out);
                out
            }
        }
    }

    /// Inserts one interval immediately (the paper's §III-D one-by-one
    /// insertion), returning its stable id.
    ///
    /// The interval is sampleable and searchable as soon as this
    /// returns, and the id remains valid — referring to this interval
    /// in query results and [`Client::remove`] — until removed, on both
    /// the monolithic and the sharded backend. On a weighted
    /// update-capable backend the interval joins with weight `1.0`.
    pub fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        match self.apply(&[Mutation::Insert { iv }]).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Inserts one *weighted* interval (Problem 2), returning its
    /// stable id. The weight passes the same validation gate as
    /// construction-time weights; requires an update-capable kind built
    /// with weights ([`IndexKind::AwitDynamic`] + `.weights(w)`).
    pub fn insert_weighted(&mut self, iv: Interval<E>, weight: f64) -> Result<ItemId, UpdateError> {
        let muts = [Mutation::InsertWeighted { iv, weight }];
        match self.apply(&muts).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Removes the live interval behind `id`. After `Ok`, the id never
    /// appears in any query result again and is never reissued;
    /// removing an id that is not live (never issued, or already
    /// removed) is [`UpdateError::UnknownId`].
    pub fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        self.apply(&[Mutation::Delete { id }])
            .swap_remove(0)
            .map(|_| ())
    }

    /// Inserts a batch of intervals through the structure's insertion
    /// pool (the paper's §III-D batch insertion): every interval is
    /// immediately visible to queries, while tree maintenance is
    /// amortized across pool flushes — the high-throughput ingest path
    /// Table VII measures against one-by-one insertion. Returns the new
    /// stable ids in input order.
    ///
    /// All-or-nothing on both backends: if any insert fails, the
    /// inserts that did land are rolled back (best effort) and the
    /// first error is returned, so an `Err` never strands intervals
    /// the caller has no ids for.
    pub fn extend_batch(&mut self, ivs: &[Interval<E>]) -> Result<Vec<ItemId>, UpdateError> {
        let (kind, weighted) = (self.kind, self.weighted);
        match &mut self.backend {
            Backend::Sharded(engine) => {
                let out = engine.extend_batch(ivs);
                self.len = engine.len();
                out
            }
            Backend::Mono { index, .. } => {
                let mut ids = Vec::with_capacity(ivs.len());
                let mut first_err = None;
                for &iv in ivs {
                    match apply_mono(
                        kind,
                        weighted,
                        index.as_mut(),
                        Mutation::Insert { iv },
                        true,
                    ) {
                        Ok(UpdateOutput::Inserted(id)) => {
                            ids.push(id);
                            self.len += 1;
                        }
                        Ok(UpdateOutput::Removed) => {
                            first_err = Some(UpdateError::UnsupportedKind {
                                kind: kind.name(),
                                reason: "client protocol error: mismatched update output variant",
                            });
                            break;
                        }
                        Err(e) => {
                            first_err = Some(e);
                            break;
                        }
                    }
                }
                match first_err {
                    None => Ok(ids),
                    Some(e) => {
                        // Roll the applied prefix back so an `Err`
                        // leaves the dataset unchanged.
                        for id in ids {
                            let rollback = Mutation::Delete { id };
                            if apply_mono(kind, weighted, index.as_mut(), rollback, false).is_ok() {
                                self.len = self.len.saturating_sub(1);
                            }
                        }
                        Err(e)
                    }
                }
            }
        }
    }

    /// A mismatched update output can only mean a facade bug; report it
    /// as a typed error rather than panicking the caller.
    fn mutation_protocol_error(&self) -> UpdateError {
        UpdateError::UnsupportedKind {
            kind: self.kind.name(),
            reason: "client protocol error: mismatched update output variant",
        }
    }

    /// A prepare-once-draw-many uniform sample stream over `q ∩ X`.
    ///
    /// On the monolithic backend, phase 1 (candidate computation) runs
    /// exactly once, here; every draw afterwards costs only phase 2.
    /// On the sharded backend the stream refills through engine
    /// batches, re-preparing per refill — raise
    /// [`SampleStream::with_chunk`] to amortize. See [`SampleStream`]
    /// for the termination and error contract.
    pub fn sample_stream(&self, q: Interval<E>) -> Result<SampleStream<'_, E>, QueryError> {
        self.stream(q, Operation::UniformSample)
    }

    /// A prepare-once-draw-many *weighted* sample stream over `q ∩ X`.
    pub fn weighted_sample_stream(
        &self,
        q: Interval<E>,
    ) -> Result<SampleStream<'_, E>, QueryError> {
        self.stream(q, Operation::WeightedSample)
    }

    fn stream(&self, q: Interval<E>, op: Operation) -> Result<SampleStream<'_, E>, QueryError> {
        if !self.capabilities().supports(op) {
            return Err(self.kind.unsupported_error(self.weighted, op));
        }
        let rng_seed = self.seed ^ mix(self.stream_counter.fetch_add(1, Ordering::Relaxed) + 1);
        stream::new_stream(self, q, op, rng_seed)
    }

    /// The backend, for the stream module.
    pub(crate) fn backend(&self) -> &Backend<E> {
        &self.backend
    }

    /// Runs a whole batch against the monolithic index. Ids the index
    /// reports are global already (it spans the full dataset).
    fn run_mono(
        &self,
        index: &dyn DynIndex<E>,
        queries: &[Query<E>],
        rng: &mut SmallRng,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        let caps = self.capabilities();
        queries
            .iter()
            .map(|query| {
                let op = query.operation();
                if !caps.supports(op) {
                    return Err(self.kind.unsupported_error(self.weighted, op));
                }
                match *query {
                    Query::Count { q } => Ok(QueryOutput::Count(index.count(q))),
                    Query::Search { q } => {
                        let mut ids = Vec::new();
                        index.search_into(q, &mut ids);
                        Ok(QueryOutput::Ids(ids))
                    }
                    Query::Stab { p } => {
                        let mut ids = Vec::new();
                        index.stab_into(p, &mut ids);
                        Ok(QueryOutput::Ids(ids))
                    }
                    Query::Sample { q, s } => {
                        // `prepare` returning `None` despite a positive
                        // capability claim would be an index bug; map it
                        // to the typed error rather than panicking.
                        let handle = index
                            .prepare(q)
                            .ok_or_else(|| self.kind.unsupported_error(self.weighted, op))?;
                        let mut out = Vec::with_capacity(s);
                        handle.sample_into_dyn(rng as &mut dyn RngCore, s, &mut out);
                        Ok(QueryOutput::Samples(out))
                    }
                    Query::SampleWeighted { q, s } => {
                        let handle = index
                            .prepare_weighted(q)
                            .ok_or_else(|| self.kind.unsupported_error(self.weighted, op))?;
                        let mut out = Vec::with_capacity(s);
                        handle.sample_into_dyn(rng as &mut dyn RngCore, s, &mut out);
                        Ok(QueryOutput::Samples(out))
                    }
                }
            })
            .collect()
    }
}

/// A mismatched output variant can only mean a facade bug; report it as
/// a typed error rather than panicking the caller.
fn protocol_error(op: Operation) -> QueryError {
    QueryError::UnsupportedOperation {
        op,
        reason: "client protocol error: mismatched output variant",
    }
}

/// Applies one mutation to the monolithic backend: the same capability
/// gate and weight validation the engine performs before routing, then
/// the index's own mutable surface. Ids the index issues are already
/// dataset-global (it spans the full dataset).
fn apply_mono<E: GridEndpoint>(
    kind: IndexKind,
    weighted: bool,
    index: &mut dyn DynIndex<E>,
    m: Mutation<E>,
    buffered: bool,
) -> Result<UpdateOutput, UpdateError> {
    let op = m.op();
    if !kind.supports_mutation(weighted, op) {
        return Err(kind.unsupported_update_error(weighted, op));
    }
    match m {
        Mutation::Insert { iv } => if buffered {
            index.insert_buffered(iv)
        } else {
            index.insert(iv)
        }
        .map(UpdateOutput::Inserted),
        Mutation::InsertWeighted { iv, weight } => {
            validate_update_weight(weight)?;
            index
                .insert_weighted(iv, weight)
                .map(UpdateOutput::Inserted)
        }
        Mutation::Delete { id } => index.remove(id).map(|()| UpdateOutput::Removed),
    }
}

/// `len` after a mutation batch: +1 per successful insert, −1 per
/// successful remove.
fn bookkept_len(len: usize, results: &[Result<UpdateOutput, UpdateError>]) -> usize {
    results.iter().fold(len, |len, r| match r {
        Ok(UpdateOutput::Inserted(_)) => len + 1,
        Ok(UpdateOutput::Removed) => len.saturating_sub(1),
        Err(_) => len,
    })
}
