//! Snapshot manifests and directory layout for [`Engine::save`] /
//! [`Engine::load`].
//!
//! A snapshot is a directory: one `manifest.irs` plus one
//! `shard-NNNN.irs` per shard (`irs-client` writes the same layout, so
//! a snapshot saved by an engine loads through a client and vice
//! versa). Every file starts with the shared header
//! ([`irs_core::persist::MAGIC`], format version, a role byte); bodies
//! are CRC-framed sections (see `DESIGN.md`, "On-disk snapshot format"):
//!
//! - **manifest** — one section holding the [`Manifest`]: per-save-run
//!   snapshot id, kind name, endpoint type, weighted flag, shard count,
//!   seed config, draw-batch and sample-stream counters, live length,
//!   and per-shard live lengths.
//! - **shard `k`** — a header section (snapshot id, kind, endpoint,
//!   shard id, shard count, weighted — cross-checked against the
//!   manifest so mixed directories and interrupted saves are refused)
//!   followed by the index section encoded by
//!   [`DynIndex::encode_snapshot`](crate::DynIndex::encode_snapshot).
//!
//! Files are written atomically (temp + rename), shard files first and
//! the manifest last, so a save that dies partway is detected at load
//! (snapshot ids disagree) instead of silently mixing two states.
//!
//! [`inspect_snapshot`] reads a manifest without touching any shard
//! (and without committing to an endpoint type), for tooling like
//! `irs-cli snapshot inspect`.
//!
//! [`Engine::save`]: crate::Engine::save
//! [`Engine::load`]: crate::Engine::load

use irs_core::persist::{
    decode_section, encode_section, read_header, write_file_atomic, write_header, Codec,
    PersistError, Reader, ROLE_MANIFEST, ROLE_SHARD,
};
use std::path::{Path, PathBuf};

/// Manifest file name inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.irs";

/// Shard file name for shard `k`.
pub fn shard_file(k: usize) -> String {
    format!("shard-{k:04}.irs")
}

/// The decoded manifest of a snapshot directory — everything needed to
/// rebuild the engine's configuration before any shard is read.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Random tag of this save run, repeated in every shard header. A
    /// save interrupted partway (old manifest + some new shard files,
    /// or vice versa) is detected at load as a typed
    /// [`PersistError::ManifestMismatch`] instead of silently mixing
    /// two engine states.
    pub snapshot_id: u64,
    /// [`IndexKind::name`](crate::IndexKind::name) of the saved kind.
    pub kind: String,
    /// [`Codec::type_name`] of the endpoint scalar the snapshot was
    /// saved with; loading as a different type is refused.
    pub endpoint: String,
    /// Whether per-interval weights were supplied at build time.
    pub weighted: bool,
    /// Shard count (1 = a client's monolithic backend).
    pub shards: usize,
    /// The engine's base seed (`EngineConfig::seed`).
    pub seed: u64,
    /// The unseeded draw-stream position at save time, restored so the
    /// `run` stream continues rather than repeating.
    pub batch_counter: u64,
    /// `irs-client`'s sample-stream counter at save time, restored so
    /// streams created after a restart derive fresh draw seeds instead
    /// of replaying pre-save streams. Engines (which have no stream
    /// surface) write 0.
    pub stream_counter: u64,
    /// Live intervals at save time.
    pub len: usize,
    /// Live intervals per shard (the insert router's bookkeeping).
    pub shard_lens: Vec<usize>,
}

impl Codec for Manifest {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.snapshot_id.encode_into(out);
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.weighted.encode_into(out);
        self.shards.encode_into(out);
        self.seed.encode_into(out);
        self.batch_counter.encode_into(out);
        self.stream_counter.encode_into(out);
        self.len.encode_into(out);
        self.shard_lens.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let manifest = Manifest {
            snapshot_id: u64::decode(r)?,
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            weighted: bool::decode(r)?,
            shards: usize::decode(r)?,
            seed: u64::decode(r)?,
            batch_counter: u64::decode(r)?,
            stream_counter: u64::decode(r)?,
            len: usize::decode(r)?,
            shard_lens: Vec::decode(r)?,
        };
        if manifest.shards == 0 || manifest.shard_lens.len() != manifest.shards {
            return Err(PersistError::Corrupt {
                what: "manifest shard count disagrees with its per-shard lengths",
            });
        }
        Ok(manifest)
    }
}

/// The header section of one shard file, cross-checked against the
/// manifest so a shard from a different snapshot cannot slip in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// The save run this shard belongs to (see [`Manifest::snapshot_id`]).
    pub snapshot_id: u64,
    /// [`IndexKind::name`](crate::IndexKind::name) of the shard's kind.
    pub kind: String,
    /// [`Codec::type_name`] of the endpoint scalar.
    pub endpoint: String,
    /// This shard's id (`0..shards`).
    pub shard: usize,
    /// Total shard count of the snapshot.
    pub shards: usize,
    /// Whether the backend was built with weights.
    pub weighted: bool,
}

impl Codec for ShardHeader {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.snapshot_id.encode_into(out);
        self.kind.encode_into(out);
        self.endpoint.encode_into(out);
        self.shard.encode_into(out);
        self.shards.encode_into(out);
        self.weighted.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(ShardHeader {
            snapshot_id: u64::decode(r)?,
            kind: String::decode(r)?,
            endpoint: String::decode(r)?,
            shard: usize::decode(r)?,
            shards: usize::decode(r)?,
            weighted: bool::decode(r)?,
        })
    }
}

/// What [`inspect_snapshot`] reports about a snapshot directory.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotInfo {
    /// The on-disk format version of the manifest.
    pub format_version: u16,
    /// The decoded manifest.
    pub manifest: Manifest,
}

/// Reads and validates a snapshot directory's manifest without reading
/// any shard file — and without committing to an endpoint type, so
/// tooling can inspect snapshots it could not load.
pub fn inspect_snapshot(dir: impl AsRef<Path>) -> Result<SnapshotInfo, PersistError> {
    let (format_version, manifest) = read_manifest_versioned(dir.as_ref())?;
    Ok(SnapshotInfo {
        format_version,
        manifest,
    })
}

/// A tag for one save run: wall-clock nanoseconds mixed with the
/// process id and a process-local counter, so two save runs — even
/// back-to-back in one process, or concurrent across processes —
/// get distinct ids with overwhelming probability.
pub fn fresh_snapshot_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    irs_core::splitmix64(
        nanos
            ^ (std::process::id() as u64).rotate_left(32)
            ^ COUNTER.fetch_add(1, Ordering::Relaxed),
    )
}

/// Full path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

/// Reads, frames, and decodes `dir`'s manifest.
pub fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    read_manifest_versioned(dir).map(|(_, m)| m)
}

/// [`read_manifest`], also returning the header's format version.
fn read_manifest_versioned(dir: &Path) -> Result<(u16, Manifest), PersistError> {
    let path = manifest_path(dir);
    let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, &e))?;
    let mut r = Reader::new(&bytes);
    let version = read_header(&mut r, ROLE_MANIFEST)?;
    let manifest = decode_section::<Manifest>(&mut r, "manifest")?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "manifest file has trailing bytes",
        });
    }
    Ok((version, manifest))
}

/// Encodes and writes `dir`'s manifest file (atomically: temp file +
/// rename). Callers write the manifest **last**, after every shard
/// file, so an interrupted save leaves the previous manifest — whose
/// snapshot id then disagrees with any half-written shard files —
/// rather than a new manifest over missing shards.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), PersistError> {
    let mut file = Vec::new();
    write_header(&mut file, ROLE_MANIFEST);
    encode_section(&mut file, manifest);
    write_file_atomic(&manifest_path(dir), &file)
}

/// Frames one shard's header + index payload and writes its file
/// (atomically: temp file + rename).
pub fn write_shard_file(
    dir: &Path,
    header: &ShardHeader,
    index_payload: &[u8],
) -> Result<(), PersistError> {
    let mut file = Vec::new();
    write_header(&mut file, ROLE_SHARD);
    encode_section(&mut file, header);
    irs_core::persist::write_section(&mut file, index_payload);
    write_file_atomic(&dir.join(shard_file(header.shard)), &file)
}

/// One shard file's bytes plus the range of its CRC-verified index
/// payload, so decoding reads straight from the file buffer instead of
/// an extra copy (shard payloads are the bulk of a snapshot).
pub struct ShardPayload {
    bytes: Vec<u8>,
    payload: std::ops::Range<usize>,
}

impl ShardPayload {
    /// The CRC-verified index section.
    pub fn payload(&self) -> &[u8] {
        &self.bytes[self.payload.clone()]
    }
}

/// Reads shard `k`'s file, validates its header against `manifest`, and
/// returns the CRC-verified index payload (borrowed from the file
/// buffer — no second copy of a multi-MB section).
pub fn read_shard_payload(
    dir: &Path,
    manifest: &Manifest,
    k: usize,
) -> Result<ShardPayload, PersistError> {
    let path = dir.join(shard_file(k));
    let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, &e))?;
    let mut r = Reader::new(&bytes);
    read_header(&mut r, ROLE_SHARD)?;
    let header = decode_section::<ShardHeader>(&mut r, "shard-header")?;
    if header.snapshot_id != manifest.snapshot_id {
        return Err(PersistError::ManifestMismatch {
            what: "snapshot id (files from different save runs are mixed)",
        });
    }
    if header.kind != manifest.kind {
        return Err(PersistError::ManifestMismatch { what: "index kind" });
    }
    if header.endpoint != manifest.endpoint {
        return Err(PersistError::ManifestMismatch {
            what: "endpoint type",
        });
    }
    if header.shard != k || header.shards != manifest.shards {
        return Err(PersistError::ManifestMismatch {
            what: "shard numbering",
        });
    }
    if header.weighted != manifest.weighted {
        return Err(PersistError::ManifestMismatch {
            what: "weighted flag",
        });
    }
    let payload = irs_core::persist::read_section(&mut r, "index")?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "shard file has trailing bytes",
        });
    }
    let start = payload.as_ptr() as usize - bytes.as_ptr() as usize;
    let range = start..start + payload.len();
    Ok(ShardPayload {
        bytes,
        payload: range,
    })
}
