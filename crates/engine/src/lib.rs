//! # irs-engine — sharded, concurrent batch IRS query engine
//!
//! The index structures in this workspace answer one query at a time on
//! one thread. This crate scales them out: an [`Engine`] partitions the
//! dataset round-robin into `K` shards, builds one index per shard (any
//! of the six structures, chosen by [`IndexKind`]), runs a
//! worker-per-shard thread pool, and executes batches of typed
//! [`Request`]s by scatter-gathering across the shards.
//!
//! The non-obvious part is keeping sampling *statistically correct*
//! across shards: the engine first collects exact per-shard result
//! masses, then draws the per-shard sample allocation from a multinomial
//! over them, so the merged draws follow exactly the distribution a
//! single monolithic index would produce. See the module docs of
//! [`engine`] for the argument, and `DESIGN.md` (§ Engine) for the
//! architecture diagram.
//!
//! ```
//! use irs_engine::{Engine, EngineConfig, IndexKind, Request};
//! use irs_core::Interval;
//!
//! let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 20)).collect();
//! let engine = Engine::new(&data, EngineConfig::new(IndexKind::AitV).shards(3));
//!
//! let batch: Vec<_> = (0..10)
//!     .map(|i| Request::Sample { q: Interval::new(i * 50, i * 50 + 99), s: 4 })
//!     .collect();
//! for resp in engine.execute(&batch) {
//!     assert_eq!(resp.samples().unwrap().len(), 4);
//! }
//! ```

pub mod engine;
mod kind;
mod request;
pub mod throughput;

pub use engine::{Engine, EngineConfig};
pub use kind::IndexKind;
pub use request::{Request, Response};
