//! # irs-engine — sharded, concurrent batch IRS query engine
//!
//! The index structures in this workspace answer one query at a time on
//! one thread. This crate scales them out: an [`Engine`] partitions the
//! dataset round-robin into `K` shards, builds one index per shard (any
//! of the six structures, chosen by [`IndexKind`]), runs a
//! worker-per-shard thread pool, and executes batches of typed
//! [`Query`]s by scatter-gathering across the shards.
//!
//! The API is **fallible end to end**: [`Engine::run`] returns one
//! `Result<QueryOutput, QueryError>` per query, construction goes
//! through [`Engine::try_new`] / [`Engine::try_new_weighted`] (weights
//! validated up front into a typed [`irs_core::BuildError`]), and what
//! an engine can serve is queryable via [`Engine::capabilities`] —
//! nothing on the query path panics, and a dead shard worker surfaces
//! as [`irs_core::QueryError::ShardFailed`] instead of an abort. (The
//! pre-`QueryError` shims — `Request`, `Response`, `Engine::execute` —
//! lived for one release and are now gone.)
//!
//! The engine is **mutable** as well as queryable: [`Engine::apply`]
//! routes typed [`irs_core::Mutation`]s to the owning shard workers
//! (inserts to the least-loaded shard, deletes to the shard decoded
//! from the global id), with the same typed-error discipline
//! ([`irs_core::UpdateError`]) and the update-capable kinds declared in
//! [`IndexKind::capabilities`]. Queries take `&self`; mutations take
//! `&mut self`, so the two can never interleave.
//!
//! The non-obvious part is keeping sampling *statistically correct*
//! across shards: the engine first collects exact per-shard result
//! masses, then draws the per-shard sample allocation from a multinomial
//! over them, so the merged draws follow exactly the distribution a
//! single monolithic index would produce. See the module docs of
//! [`engine`] for the argument, and `DESIGN.md` (§ Engine) for the
//! architecture diagram.
//!
//! ```
//! use irs_engine::{Engine, EngineConfig, IndexKind, Query};
//! use irs_core::Interval;
//!
//! let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 20)).collect();
//! let engine = Engine::try_new(&data, EngineConfig::new(IndexKind::AitV).shards(3))?;
//!
//! let batch: Vec<_> = (0..10)
//!     .map(|i| Query::Sample { q: Interval::new(i * 50, i * 50 + 99), s: 4 })
//!     .collect();
//! for result in engine.run(&batch) {
//!     assert_eq!(result?.samples().unwrap().len(), 4);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod engine;
mod kind;
mod query;
pub mod throughput;

pub use engine::{Engine, EngineConfig};
pub use kind::{DynIndex, IndexKind};
pub use query::{Query, QueryOutput};
