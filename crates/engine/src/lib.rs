//! # irs-engine — sharded, concurrent batch IRS query engine
//!
//! The index structures in this workspace answer one query at a time on
//! one thread. This crate scales them out: an [`Engine`] partitions the
//! dataset round-robin into `K` shards, builds one index per shard (any
//! of the seven structures, chosen by [`IndexKind`]), and executes
//! batches of typed [`Query`]s across the shards.
//!
//! The engine is a **shared, clonable service**: the handle is a cheap
//! `Arc` clone (`Clone + Send + Sync`), query batches execute *on the
//! calling thread* under shared per-shard read locks, and many caller
//! threads therefore run batches truly concurrently — throughput
//! scales with callers (`irs-cli bench-engine --threads` plots the
//! curve). Shard worker threads remain only on the write path:
//! mutations are routed to the owning shard's worker and applied under
//! that shard's write lock, so a query batch never observes a torn
//! shard. See the [`engine`] module docs for the concurrency model.
//!
//! The API is **fallible end to end**: [`Engine::run`] returns one
//! `Result<QueryOutput, QueryError>` per query, construction goes
//! through [`Engine::try_new`] / [`Engine::try_new_weighted`] (weights
//! validated up front into a typed [`irs_core::BuildError`]), and what
//! an engine can serve is queryable via [`Engine::capabilities`] —
//! nothing on the query path panics, and a dead shard worker surfaces
//! as [`irs_core::QueryError::ShardFailed`] instead of an abort. (The
//! pre-`QueryError` shims — `Request`, `Response`, `Engine::execute` —
//! lived for one release and are now gone.)
//!
//! The engine is **mutable** as well as queryable: [`Engine::apply`]
//! routes typed [`irs_core::Mutation`]s to the owning shard workers
//! (inserts to the least-loaded shard, deletes to the shard decoded
//! from the global id), with the same typed-error discipline
//! ([`irs_core::UpdateError`]) and the update-capable kinds declared in
//! [`IndexKind::capabilities`]. Mutation batches serialize on an
//! internal writer lock shared by every clone, and each shard's
//! sub-batch applies under the shard's write lock — queries interleave
//! *between* sub-batches, never inside one.
//!
//! The non-obvious part is keeping sampling *statistically correct*
//! across shards: the engine first collects exact per-shard result
//! masses, then draws the per-shard sample allocation from a multinomial
//! over them, so the merged draws follow exactly the distribution a
//! single monolithic index would produce. See the module docs of
//! [`engine`] for the argument, and `DESIGN.md` (§ Engine) for the
//! architecture diagram.
//!
//! ```
//! use irs_engine::{Engine, EngineConfig, IndexKind, Query};
//! use irs_core::Interval;
//!
//! let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 20)).collect();
//! let engine = Engine::try_new(&data, EngineConfig::new(IndexKind::AitV).shards(3))?;
//!
//! let batch: Vec<_> = (0..10)
//!     .map(|i| Query::Sample { q: Interval::new(i * 50, i * 50 + 99), s: 4 })
//!     .collect();
//! for result in engine.run(&batch) {
//!     assert_eq!(result?.samples().unwrap().len(), 4);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod engine;
mod kind;
pub mod persist;
mod query;
pub mod throughput;

pub use engine::{Engine, EngineConfig};
pub use kind::{DynIndex, IndexKind};
pub use persist::{inspect_snapshot, Manifest, SnapshotInfo};
pub use query::{Query, QueryOutput};
