//! Shared throughput-measurement helpers for engine benchmarks
//! (`irs-cli bench-engine` and `crates/bench`'s `ext_engine_throughput`
//! both drive these, so the measurement loop can't drift between them).

use crate::engine::Engine;
use crate::query::Query;
use irs_core::{GridEndpoint, Interval};
use std::time::Instant;

/// Streams `queries` through the engine in batches of `batch` and
/// returns queries per second. Query construction is included in the
/// measured time, as a real caller would pay it per batch; benchmarks
/// drive only operations their engine supports, so an `Err` result
/// (capability mismatch or dead shard) fails loudly here rather than
/// inflating the rate.
pub fn batched_qps<E: GridEndpoint>(
    engine: &Engine<E>,
    queries: &[Interval<E>],
    batch: usize,
    to_query: impl Fn(&Interval<E>) -> Query<E>,
) -> f64 {
    let batch = batch.max(1);
    let start = Instant::now();
    let mut answered = 0usize;
    for chunk in queries.chunks(batch) {
        let batch_queries: Vec<Query<E>> = chunk.iter().map(&to_query).collect();
        for result in engine.run(&batch_queries) {
            result.expect("benchmark query failed");
            answered += 1;
        }
    }
    assert_eq!(answered, queries.len());
    queries.len() as f64 / start.elapsed().as_secs_f64()
}

/// Multi-caller throughput: splits `queries` across `threads` caller
/// threads, each running its slice through a clone of the shared
/// engine in batches of `batch`, and returns aggregate queries per
/// second (wall clock of the slowest caller). With the concurrent read
/// path this should scale with `threads` up to the core count — the
/// curve `bench-engine --threads` plots.
///
/// `threads` is clamped to `[1, queries.len()]` (a caller with no
/// queries would measure nothing); callers that *label* results by
/// thread count should clamp the same way so labels match reality.
/// An empty `queries` reports `0.0`.
pub fn threaded_qps<E: GridEndpoint>(
    engine: &Engine<E>,
    queries: &[Interval<E>],
    threads: usize,
    batch: usize,
    to_query: impl Fn(&Interval<E>) -> Query<E> + Copy + Send,
) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let threads = threads.max(1).min(queries.len());
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Fair split into *exactly* `threads` non-empty slices (the
        // clamp above guarantees len ≥ threads), so the reported
        // concurrency level is the one that actually ran.
        for t in 0..threads {
            let lo = t * queries.len() / threads;
            let hi = (t + 1) * queries.len() / threads;
            let slice = &queries[lo..hi];
            let handle = engine.clone();
            scope.spawn(move || batched_qps(&handle, slice, batch, to_query));
        }
    });
    queries.len() as f64 / start.elapsed().as_secs_f64()
}

/// Available CPU count with the workspace-wide fallback of 1 — the one
/// place that policy lives.
pub fn cpu_count() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Parses a comma-separated list of positive counts (`"1,2,8"`), the
/// shared syntax of `--shards`/`--batches` and the `IRS_BENCH_*` env
/// knobs — one parser, so the CLI and bench binaries can't drift.
pub fn parse_count_list(s: &str) -> Result<Vec<usize>, String> {
    let counts: Vec<usize> = s
        .split(',')
        .map(|p| match p.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("`{p}` is not a positive integer")),
        })
        .collect::<Result<_, _>>()?;
    if counts.is_empty() {
        return Err("empty list".into());
    }
    Ok(counts)
}

/// The default shard sweep for scaling runs: powers of two up to the
/// CPU count, always ending exactly at the CPU count.
pub fn default_shard_sweep() -> Vec<usize> {
    let cpus = cpu_count();
    let mut v: Vec<usize> = std::iter::successors(Some(1usize), |&k| Some(k * 2))
        .take_while(|&k| k < cpus)
        .collect();
    v.push(cpus);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_sweep_ends_at_cpu_count() {
        let sweep = default_shard_sweep();
        let cpus = cpu_count();
        assert_eq!(sweep[0], 1);
        assert_eq!(*sweep.last().unwrap(), cpus);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]), "{sweep:?}");
    }
}
