//! Typed requests and responses of the batch engine.

use irs_core::{Interval, ItemId};

/// One query in a batch submitted to [`crate::Engine::execute`].
///
/// All variants are `Copy`, so batches can be assembled and re-submitted
/// cheaply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request<E> {
    /// `s` uniform, independent samples from `q ∩ X` (Problem 1).
    Sample {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// `s` weight-proportional, independent samples from `q ∩ X`
    /// (Problem 2). Requires the engine to hold per-interval weights and
    /// an index kind that supports weighted sampling.
    SampleWeighted {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// Exact `|q ∩ X|`.
    Count {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals overlapping `q`.
    Search {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals containing the point `p`.
    Stab {
        /// Stabbing point.
        p: E,
    },
}

impl<E> Request<E> {
    /// Whether this request needs the two-phase (prepare → allocate →
    /// draw) sampling path rather than being answerable in one pass.
    pub(crate) fn is_sampling(&self) -> bool {
        matches!(
            self,
            Request::Sample { .. } | Request::SampleWeighted { .. }
        )
    }
}

/// Result of one [`Request`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Ids drawn by [`Request::Sample`] / [`Request::SampleWeighted`].
    /// Length equals the requested `s` unless the result set is empty,
    /// in which case it is empty (matching [`irs_core::RangeSampler`]).
    Samples(Vec<ItemId>),
    /// Answer to [`Request::Count`].
    Count(usize),
    /// Answer to [`Request::Search`] / [`Request::Stab`]; order is
    /// unspecified, as with the single-index structures.
    Ids(Vec<ItemId>),
    /// The engine's index kind cannot serve this request (e.g. weighted
    /// sampling on an AIT, or uniform sampling on an AWIT built with
    /// non-uniform weights). The payload says why.
    Unsupported(&'static str),
}

impl Response {
    /// The sample ids, if this is a `Samples` response.
    pub fn samples(&self) -> Option<&[ItemId]> {
        match self {
            Response::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// The count, if this is a `Count` response.
    pub fn count(&self) -> Option<usize> {
        match self {
            Response::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The result ids, if this is an `Ids` response.
    pub fn ids(&self) -> Option<&[ItemId]> {
        match self {
            Response::Ids(ids) => Some(ids),
            _ => None,
        }
    }
}
