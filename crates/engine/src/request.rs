//! Deprecated pre-`QueryError` request/response surface.
//!
//! The engine's query API became fallible in one release: [`Query`] /
//! [`QueryOutput`] with [`crate::Engine::run`] returning
//! `Vec<Result<QueryOutput, QueryError>>`. This module keeps the old
//! names compiling for that release as thin shims:
//!
//! | old | new |
//! |---|---|
//! | `Request<E>` | [`Query<E>`](Query) (alias — same variants) |
//! | `Response` | `Result<QueryOutput, QueryError>` |
//! | `Response::Unsupported(why)` | `Err(QueryError::…)` (typed; `why` stays `&'static str` here) |
//! | `Engine::execute(batch)` | [`crate::Engine::run`] |
//!
//! The shims will be removed in the next release.

use crate::query::{Query, QueryOutput};
use irs_core::{ItemId, QueryError};

/// Old name of [`Query`]; the variants are identical, so existing
/// construction sites (`Request::Sample { q, s }`) keep compiling.
#[deprecated(note = "use `Query` and `Engine::run` (fallible) instead")]
pub type Request<E> = Query<E>;

/// Result of one `Request`, in batch order — the old, infallible-looking
/// response type whose `Unsupported` variant hid errors in a string.
/// The payload stays `&'static str` so pre-migration matchers keep
/// compiling; the typed cause lives in [`QueryError`] on the new path.
#[deprecated(note = "use `Result<QueryOutput, QueryError>` from `Engine::run` instead")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Ids drawn by a sampling request.
    Samples(Vec<ItemId>),
    /// Answer to a count request.
    Count(usize),
    /// Answer to a search/stab request.
    Ids(Vec<ItemId>),
    /// The engine could not serve the request; the payload says why.
    Unsupported(&'static str),
}

#[allow(deprecated)]
impl Response {
    /// The sample ids, if this is a `Samples` response.
    pub fn samples(&self) -> Option<&[ItemId]> {
        match self {
            Response::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// The count, if this is a `Count` response.
    pub fn count(&self) -> Option<usize> {
        match self {
            Response::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The result ids, if this is an `Ids` response.
    pub fn ids(&self) -> Option<&[ItemId]> {
        match self {
            Response::Ids(ids) => Some(ids),
            _ => None,
        }
    }
}

#[allow(deprecated)]
impl From<Result<QueryOutput, QueryError>> for Response {
    fn from(result: Result<QueryOutput, QueryError>) -> Self {
        match result {
            Ok(QueryOutput::Samples(ids)) => Response::Samples(ids),
            Ok(QueryOutput::Count(n)) => Response::Count(n),
            Ok(QueryOutput::Ids(ids)) => Response::Ids(ids),
            // Flatten the typed error into the old static-str payload
            // (the shard id of `ShardFailed` is only on the new path).
            Err(QueryError::UnsupportedOperation { reason, .. }) => Response::Unsupported(reason),
            Err(QueryError::NotWeighted) => Response::Unsupported(
                "weighted sampling requested, but the backend was built without weights",
            ),
            Err(QueryError::ShardFailed { .. }) => {
                Response::Unsupported("a shard worker thread died")
            }
        }
    }
}
