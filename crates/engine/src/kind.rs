//! Index selection, capability metadata, and the object-safe index facade.
//!
//! Every backend owns one or more index structures chosen by
//! [`IndexKind`]. Caller threads (queries), mutation workers, and
//! `irs-client`'s monolithic backend all talk to them through
//! [`DynIndex`], an object-safe `Send + Sync` trait whose sampling
//! handles are the erased [`DynPreparedSampler`]s from `irs-core`, so a
//! single driver loop serves all seven structures — and out-of-tree
//! structures could be plugged in the same way. The trait carries both
//! surfaces of the unified API: read-only queries (`&self`, safe to
//! drive from many threads at once under a shared read guard) and the
//! fallible mutable companion (`&mut self` inserts/deletes, overridden
//! by the update-capable kinds).
//!
//! What each kind can do is *queryable metadata*, not a doc table:
//! [`IndexKind::capabilities`] reports per-operation support (given
//! whether the backend was built with weights), and
//! [`IndexKind::unsupported_error`] / [`IndexKind::unsupported_update_error`]
//! are the one place the matching typed [`QueryError`] / [`UpdateError`]
//! is minted, so capability claims and error payloads cannot drift.
//! Capability gaps inside the facade are closed by fallbacks only where
//! the fallback is *exact* (stab = point search; AIT-V count = search)
//! and surfaced as `None` — mapped to a typed error upstream — where it
//! is not.

use irs_ait::{Ait, AitV, Awit, DynamicAwit};
use irs_core::erased::{DynPreparedSampler, Erased, ErasedUpperBound};
use irs_core::persist::{Codec, PersistError, Reader};
use irs_core::{
    validate_update_weight, Capabilities, Endpoint, GridEndpoint, Interval, ItemId,
    MemoryFootprint, Operation, QueryError, RangeCount, RangeSampler, RangeSearch, StabbingQuery,
    UpdateError, UpdateOp, WeightedRangeSampler,
};
use irs_hint::HintM;
use irs_interval_tree::IntervalTree;
use irs_kds::Kds;
use std::collections::HashMap;

/// Which index structure each shard builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Augmented interval tree (§III): exact `O(log² n + s)` IRS, plus
    /// the §III-D update algorithms (one-by-one insertion, pooled batch
    /// insertion, deletion with height-triggered rebuild).
    Ait,
    /// Space-optimal AIT over virtual intervals (§III-C): `O(n)` space,
    /// expected `O(log² n + s)` IRS via rejection sampling.
    AitV,
    /// Augmented *weighted* interval tree (§IV): weighted IRS in
    /// `O(log² n + s log n)`. A static snapshot.
    Awit,
    /// `DynamicAwit` (extension beyond the paper): the AWIT behind a
    /// pool/tombstone layer, serving weighted IRS *and* amortized
    /// inserts/deletes with the sampling distribution kept exact.
    AwitDynamic,
    /// KDS baseline: canonical decomposition, `O(√n + s)` expected.
    Kds,
    /// HINTm baseline: hierarchical grid, enumeration-based.
    HintM,
    /// Edelsbrunner interval tree baseline: enumeration-based.
    IntervalTree,
}

impl IndexKind {
    /// All seven kinds, for test matrices and CLI enumeration.
    pub const ALL: [IndexKind; 7] = [
        IndexKind::Ait,
        IndexKind::AitV,
        IndexKind::Awit,
        IndexKind::AwitDynamic,
        IndexKind::Kds,
        IndexKind::HintM,
        IndexKind::IntervalTree,
    ];

    /// Stable lowercase name (CLI argument / JSON field value).
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::Ait => "ait",
            IndexKind::AitV => "ait-v",
            IndexKind::Awit => "awit",
            IndexKind::AwitDynamic => "awit-dynamic",
            IndexKind::Kds => "kds",
            IndexKind::HintM => "hint-m",
            IndexKind::IntervalTree => "interval-tree",
        }
    }

    /// Parses [`IndexKind::name`] output (case-sensitive).
    pub fn parse(s: &str) -> Option<IndexKind> {
        IndexKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// What this kind supports, given whether the backend holds
    /// per-interval weights.
    ///
    /// This is the authoritative capability table, as data. The
    /// contract (pinned by the capability property tests): an operation
    /// claimed here succeeds through [`crate::Engine::run`], and an
    /// operation denied here fails with exactly
    /// [`IndexKind::unsupported_error`]\(op\).
    pub fn capabilities(self, weighted: bool) -> Capabilities {
        Capabilities {
            // AWIT flavors answer uniform IRS only when weighted IRS
            // coincides with it — i.e. built with uniform (absent)
            // weights.
            uniform_sample: !(matches!(self, IndexKind::Awit | IndexKind::AwitDynamic) && weighted),
            weighted_sample: weighted && !matches!(self, IndexKind::Ait | IndexKind::AitV),
            exact_count: true,
            search: true,
            stab: true,
            // Per-kind truth: AIT carries the paper's §III-D update
            // algorithms, AWIT-dynamic the beyond-paper weighted ones;
            // every other kind is a static snapshot.
            update: matches!(self, IndexKind::Ait | IndexKind::AwitDynamic),
        }
    }

    /// The typed error for an operation this kind (built `weighted` or
    /// not) cannot serve. The single source of unsupported-operation
    /// payloads, shared by the engine and the client facade.
    pub fn unsupported_error(self, weighted: bool, op: Operation) -> QueryError {
        match op {
            Operation::WeightedSample if matches!(self, IndexKind::Ait | IndexKind::AitV) => {
                QueryError::UnsupportedOperation {
                    op,
                    reason: "AIT and AIT-V index unweighted intervals only; \
                             use AWIT (or a weighted baseline) for Problem 2",
                }
            }
            Operation::WeightedSample if !weighted => QueryError::NotWeighted,
            Operation::UniformSample => QueryError::UnsupportedOperation {
                op,
                reason: "an AWIT holding non-uniform weights cannot sample uniformly; \
                         build it without weights (then the two problems coincide)",
            },
            Operation::Update => QueryError::UnsupportedOperation {
                op,
                reason: "this index kind is a static snapshot; build an `ait` or \
                         `awit-dynamic` backend for live updates",
            },
            _ => QueryError::UnsupportedOperation {
                op,
                reason: "this index kind cannot serve the operation",
            },
        }
    }

    /// Whether this kind (built `weighted` or not) can apply `op`.
    ///
    /// The mutation-side twin of [`Capabilities::supports`]: `Insert`
    /// and `Delete` follow [`Capabilities::update`]; `InsertWeighted`
    /// additionally requires a backend that samples by weight (so a
    /// non-unit weight can never silently skew a uniform build).
    pub fn supports_mutation(self, weighted: bool, op: UpdateOp) -> bool {
        let caps = self.capabilities(weighted);
        match op {
            UpdateOp::Insert | UpdateOp::Delete => caps.update,
            UpdateOp::InsertWeighted => caps.update && caps.weighted_sample,
        }
    }

    /// The typed error for a mutation this kind (built `weighted` or
    /// not) cannot serve. The single source of unsupported-mutation
    /// payloads, shared by the engine and the client facade — the
    /// mutation-side twin of [`IndexKind::unsupported_error`].
    pub fn unsupported_update_error(self, weighted: bool, op: UpdateOp) -> UpdateError {
        if !self.capabilities(weighted).update {
            return UpdateError::UnsupportedKind {
                kind: self.name(),
                reason: "this index kind is a static snapshot; build an `ait` or \
                         `awit-dynamic` backend for live updates",
            };
        }
        match op {
            UpdateOp::InsertWeighted if self == IndexKind::Ait => UpdateError::UnsupportedKind {
                kind: self.name(),
                reason: "AIT indexes unweighted intervals only; use `awit-dynamic` \
                         for weighted live updates",
            },
            UpdateOp::InsertWeighted if !weighted => UpdateError::NotWeighted,
            _ => UpdateError::UnsupportedKind {
                kind: self.name(),
                reason: "this backend cannot serve the mutation",
            },
        }
    }

    /// Builds one index of this kind over `data` (with `weights` when
    /// given), behind the object-safe [`DynIndex`] facade.
    ///
    /// Weights are **not** validated here — callers go through
    /// [`irs_core::validate_weights`] first (the engine's `try_new_weighted`
    /// and the client builder both do).
    pub fn build_index<E: GridEndpoint>(
        self,
        data: &[Interval<E>],
        weights: Option<&[f64]>,
    ) -> Box<dyn DynIndex<E>> {
        match self {
            IndexKind::Ait => Box::new(MutableAit {
                idx: Ait::new(data),
                live: None,
            }),
            IndexKind::AitV => Box::new(AitV::new(data)),
            IndexKind::AwitDynamic => {
                let uniform = weights.is_none();
                let owned;
                let w = match weights {
                    Some(w) => w,
                    None => {
                        owned = vec![1.0; data.len()];
                        &owned
                    }
                };
                Box::new(DynAwitShard {
                    idx: DynamicAwit::new(data, w),
                    uniform,
                })
            }
            IndexKind::Awit => {
                let uniform = weights.is_none();
                let owned;
                let w = match weights {
                    Some(w) => w,
                    None => {
                        owned = vec![1.0; data.len()];
                        &owned
                    }
                };
                Box::new(AwitShard {
                    idx: Awit::new(data, w),
                    uniform,
                })
            }
            IndexKind::Kds => Box::new(WeightedBaseline {
                idx: match weights {
                    Some(w) => Kds::new_weighted(data, w),
                    None => Kds::new(data),
                },
                weighted: weights.is_some(),
            }),
            IndexKind::HintM => Box::new(WeightedBaseline {
                idx: match weights {
                    Some(w) => HintM::new_weighted(data, w),
                    None => HintM::new(data),
                },
                weighted: weights.is_some(),
            }),
            IndexKind::IntervalTree => Box::new(WeightedBaseline {
                idx: match weights {
                    Some(w) => IntervalTree::new_weighted(data, w),
                    None => IntervalTree::new(data),
                },
                weighted: weights.is_some(),
            }),
        }
    }

    /// Decodes one index of this kind from a snapshot payload, behind
    /// the same wrappers [`IndexKind::build_index`] constructs.
    ///
    /// The inverse of [`DynIndex::encode_snapshot`]: `weighted` must be
    /// the flag the snapshot's manifest recorded (it selects the same
    /// uniform-vs-weighted wrapper state construction would).
    pub fn decode_index<E: GridEndpoint>(
        self,
        r: &mut Reader<'_>,
        weighted: bool,
    ) -> Result<Box<dyn DynIndex<E>>, PersistError> {
        // The manifest's weighted flag must agree with the decoded
        // structure: a weighted baseline whose weight arrays are absent
        // would pass its own decode (that is the valid *unweighted*
        // form) and then hit the structures' internal weighted-build
        // assertions on the first weighted query.
        fn check_weighted(
            weighted: bool,
            has_weights: bool,
            empty: bool,
        ) -> Result<(), PersistError> {
            if weighted && !has_weights && !empty {
                return Err(PersistError::Corrupt {
                    what: "manifest says weighted, but the index carries no weights",
                });
            }
            Ok(())
        }
        Ok(match self {
            IndexKind::Ait => Box::new(MutableAit {
                idx: Ait::decode(r)?,
                live: None,
            }),
            IndexKind::AitV => Box::new(AitV::decode(r)?),
            IndexKind::Awit => Box::new(AwitShard {
                idx: Awit::decode(r)?,
                uniform: !weighted,
            }),
            IndexKind::AwitDynamic => Box::new(DynAwitShard {
                idx: DynamicAwit::decode(r)?,
                uniform: !weighted,
            }),
            IndexKind::Kds => {
                let idx = Kds::decode(r)?;
                check_weighted(weighted, idx.is_weighted(), idx.is_empty())?;
                Box::new(WeightedBaseline { idx, weighted })
            }
            IndexKind::HintM => {
                let idx = HintM::decode(r)?;
                check_weighted(weighted, idx.is_weighted(), idx.is_empty())?;
                Box::new(WeightedBaseline { idx, weighted })
            }
            IndexKind::IntervalTree => {
                let idx = IntervalTree::decode(r)?;
                check_weighted(weighted, idx.is_weighted(), idx.is_empty())?;
                Box::new(WeightedBaseline { idx, weighted })
            }
        })
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Object-safe facade over any one index structure.
///
/// Shard workers and `irs-client`'s monolithic backend both drive
/// queries through this trait; build one with
/// [`IndexKind::build_index`]. `search_into`, `count`, and `stab_into`
/// report ids local to the slice the index was built from (a shard
/// worker translates them to dataset-global ids; over the full dataset
/// they already *are* global).
///
/// The trait also carries the *mutable companion surface*: fallible
/// `&mut self` default methods ([`DynIndex::insert`],
/// [`DynIndex::insert_buffered`], [`DynIndex::insert_weighted`],
/// [`DynIndex::remove`]) that refuse with
/// [`UpdateError::UnsupportedKind`] unless the kind overrides them
/// (AIT's §III-D algorithms; `DynamicAwit`'s weighted ones). Queries
/// stay `&self`; callers that share an index across threads put it
/// behind a reader/writer lock (the engine's shards, the client's
/// monolithic backend), so the exclusive borrow — and therefore the
/// guarantee that no query observes a half-applied mutation — holds at
/// runtime exactly where it held at compile time before.
/// Capability-aware callers gate on [`IndexKind::supports_mutation`]
/// first and mint the kind-specific error; the defaults here are the
/// backstop.
pub trait DynIndex<E>: Send + Sync {
    /// Appends local ids of intervals overlapping `q`.
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>);

    /// Exact `|q ∩ shard|`.
    fn count(&self, q: Interval<E>) -> usize;

    /// Appends local ids of intervals containing `p`.
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>);

    /// Phase-1 handle for uniform sampling; `None` if this kind cannot
    /// sample uniformly (AWIT holding non-uniform weights).
    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>>;

    /// Phase-1 handle for weighted sampling; `None` if unsupported.
    ///
    /// Weighted handles report their allocation mass through
    /// [`DynPreparedSampler::total_weight`], read off the phase-1 state
    /// (AWIT: cumulative arrays; KDS: prefix sums over the
    /// decomposition; HINTm / interval tree: the materialized
    /// candidates) — never by re-running the search.
    fn prepare_weighted<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>>;

    /// Inserts `iv` immediately (the paper's one-by-one insertion),
    /// returning its new **local** id. Default: unsupported.
    fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        let _ = iv;
        Err(static_snapshot_error())
    }

    /// Inserts `iv` through the structure's insertion pool (the paper's
    /// batch insertion): immediately visible to queries, merged into the
    /// tree in bulk once the pool fills. Kinds without a pool serve this
    /// as [`DynIndex::insert`]. Default: unsupported.
    fn insert_buffered(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        let _ = iv;
        Err(static_snapshot_error())
    }

    /// Inserts `iv` with weight `w` (already validated by the caller
    /// through [`irs_core::validate_update_weight`]), returning its new
    /// **local** id. Default: unsupported.
    fn insert_weighted(&mut self, iv: Interval<E>, w: f64) -> Result<ItemId, UpdateError> {
        let _ = (iv, w);
        Err(static_snapshot_error())
    }

    /// Deletes the live interval behind the **local** id. Default:
    /// unsupported.
    fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        let _ = id;
        Err(static_snapshot_error())
    }

    /// Bytes of heap memory this index retains (recursively, capacity
    /// not length), per [`irs_core::MemoryFootprint`]. The catalog's
    /// memory budget accounts collections with this estimate; every
    /// in-tree kind overrides it with its structure's deterministic
    /// deep-size accounting. The default reports `0` — an out-of-tree
    /// index that never opted in is simply invisible to budgets, never
    /// wrongly refused.
    fn heap_bytes(&self) -> usize {
        0
    }

    /// Appends this index's snapshot encoding to `out` (the payload of
    /// a shard file's index section; decode with
    /// [`IndexKind::decode_index`]).
    ///
    /// Every in-tree kind overrides this with its structure's
    /// [`Codec`]; the default refuses, so an out-of-tree `DynIndex`
    /// that never opted into persistence surfaces a typed
    /// [`PersistError::Unsupported`] instead of silently writing an
    /// empty shard.
    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        let _ = out;
        Err(PersistError::Unsupported {
            reason: "this index implementation has no snapshot codec",
        })
    }
}

/// The backstop error for kinds that never override the mutable
/// surface. Callers that know their [`IndexKind`] mint the richer
/// [`IndexKind::unsupported_update_error`] before getting here.
fn static_snapshot_error() -> UpdateError {
    UpdateError::UnsupportedKind {
        kind: "static",
        reason: "this index structure is a static snapshot",
    }
}

/// Shared fallback: a stabbing query is a degenerate range search.
fn stab_via_search<E: Endpoint, I: RangeSearch<E>>(idx: &I, p: E, out: &mut Vec<ItemId>) {
    idx.range_search_into(Interval::point(p), out);
}

impl<E: GridEndpoint> DynIndex<E> for Ait<E> {
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.range_search_into(q, out);
    }

    fn heap_bytes(&self) -> usize {
        MemoryFootprint::heap_bytes(self)
    }

    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        self.encode_into(out);
        Ok(())
    }

    fn count(&self, q: Interval<E>) -> usize {
        self.range_count(q)
    }

    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        StabbingQuery::stab_into(self, p, out);
    }

    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        Some(Box::new(Erased(RangeSampler::prepare(self, q))))
    }

    fn prepare_weighted<'a>(&'a self, _q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        None
    }
}

/// AIT shard with the §III-D update surface: the tree plus a live
/// id → interval table, because deletion must re-derive the interval
/// from the id callers carry (the tree's delete walks the interval's
/// insertion path). The table is **lazy** — seeded from
/// [`Ait::entries`] on the first `remove` — so query-only and
/// insert-only workloads never pay for mirroring the dataset.
struct MutableAit<E> {
    idx: Ait<E>,
    live: Option<HashMap<ItemId, Interval<E>>>,
}

impl<E: GridEndpoint> DynIndex<E> for MutableAit<E> {
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.idx.range_search_into(q, out);
    }

    // The lazy live table is a cache over `Ait::entries`; only the
    // tree (with its pool and id allocator) goes to disk.
    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        self.idx.encode_into(out);
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        // The live table is open-addressed; its buckets hold the pair
        // plus a control byte. `capacity()` understates the allocation
        // by the load factor, which is fine for a budget *estimate*.
        let table = self.live.as_ref().map_or(0, |m| {
            m.capacity() * (std::mem::size_of::<(ItemId, Interval<E>)>() + 1)
        });
        MemoryFootprint::heap_bytes(&self.idx) + table
    }

    fn count(&self, q: Interval<E>) -> usize {
        self.idx.range_count(q)
    }

    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        StabbingQuery::stab_into(&self.idx, p, out);
    }

    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        Some(Box::new(Erased(RangeSampler::prepare(&self.idx, q))))
    }

    fn prepare_weighted<'a>(&'a self, _q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        None
    }

    fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        let id = self.idx.insert(iv);
        // The table (if materialized) tracks inserts; otherwise its
        // eventual seeding from `Ait::entries` will include them.
        if let Some(live) = &mut self.live {
            live.insert(id, iv);
        }
        Ok(id)
    }

    fn insert_buffered(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        let id = self.idx.insert_buffered(iv);
        if let Some(live) = &mut self.live {
            live.insert(id, iv);
        }
        Ok(id)
    }

    // `insert_weighted` keeps the default refusal: AIT stores no weights.

    fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        let idx = &self.idx;
        let live = self
            .live
            .get_or_insert_with(|| idx.entries().into_iter().map(|(iv, id)| (id, iv)).collect());
        match live.remove(&id) {
            Some(iv) => {
                let found = self.idx.delete(iv, id);
                debug_assert!(found, "live table and tree disagree on id {id}");
                Ok(())
            }
            None => Err(UpdateError::UnknownId { id }),
        }
    }
}

/// `DynamicAwit` shard: weighted IRS with amortized updates. Serves
/// *uniform* requests only when built with uniform weights (then the
/// two problems coincide), exactly like the static [`AwitShard`] — and
/// unit-weight inserts preserve that uniformity.
struct DynAwitShard<E> {
    idx: DynamicAwit<E>,
    uniform: bool,
}

impl<E: GridEndpoint> DynIndex<E> for DynAwitShard<E> {
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.idx.range_search_into(q, out);
    }

    // Pool, tombstones, and the id allocator ride along inside the
    // `DynamicAwit` codec, so stable ids survive the restart.
    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        self.idx.encode_into(out);
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        MemoryFootprint::heap_bytes(&self.idx)
    }

    fn count(&self, q: Interval<E>) -> usize {
        self.idx.range_count(q)
    }

    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        stab_via_search(&self.idx, p, out);
    }

    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        if self.uniform {
            // All weights are 1.0 (construction and every insert), so
            // the weighted sampler *is* the uniform sampler, and its
            // candidate count is the exact live count.
            Some(Box::new(Erased(self.idx.prepare_weighted(q))))
        } else {
            None
        }
    }

    fn prepare_weighted<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        let prepared = self.idx.prepare_weighted(q);
        // Live mass: AWIT cumulative arrays minus tombstoned weight plus
        // pool matches — exactly what allocation must see.
        let mass = self.idx.range_weight(q);
        Some(Box::new(WithMass(Erased(prepared), mass)))
    }

    fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        Ok(self.idx.insert(iv, 1.0))
    }

    fn insert_buffered(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        // DynamicAwit insertions are inherently pooled.
        Ok(self.idx.insert(iv, 1.0))
    }

    fn insert_weighted(&mut self, iv: Interval<E>, w: f64) -> Result<ItemId, UpdateError> {
        // Callers validate; re-check here because `DynamicAwit::insert`
        // asserts on bad weights, and a panic would kill the worker.
        validate_update_weight(w)?;
        Ok(self.idx.insert(iv, w))
    }

    fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        if self.idx.delete_by_id(id) {
            Ok(())
        } else {
            Err(UpdateError::UnknownId { id })
        }
    }
}

impl<E: GridEndpoint> DynIndex<E> for AitV<E> {
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.range_search_into(q, out);
    }

    fn heap_bytes(&self) -> usize {
        MemoryFootprint::heap_bytes(self)
    }

    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        self.encode_into(out);
        Ok(())
    }

    fn count(&self, q: Interval<E>) -> usize {
        // AIT-V has no counting structure (its per-node lists hold
        // virtual intervals); the exact count costs one search.
        self.range_search(q).len()
    }

    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        stab_via_search(self, p, out);
    }

    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        // Candidate count tallies virtual slots — an upper bound, flagged
        // so the engine allocates by exact count instead.
        Some(Box::new(ErasedUpperBound(RangeSampler::prepare(self, q))))
    }

    fn prepare_weighted<'a>(&'a self, _q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        None
    }
}

/// AWIT shard: natively weighted; serves *uniform* requests only when
/// built with uniform weights (then the two problems coincide).
struct AwitShard<E> {
    idx: Awit<E>,
    uniform: bool,
}

impl<E: GridEndpoint> DynIndex<E> for AwitShard<E> {
    fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        self.idx.range_search_into(q, out);
    }

    fn heap_bytes(&self) -> usize {
        MemoryFootprint::heap_bytes(&self.idx)
    }

    fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        self.idx.encode_into(out);
        Ok(())
    }

    fn count(&self, q: Interval<E>) -> usize {
        self.idx.range_count(q)
    }

    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        stab_via_search(&self.idx, p, out);
    }

    fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        if self.uniform {
            Some(Box::new(Erased(self.idx.prepare_weighted(q))))
        } else {
            None
        }
    }

    fn prepare_weighted<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
        let prepared = self.idx.prepare_weighted(q);
        // O(1) off the node records' cumulative arrays — no enumeration.
        let mass = prepared.total_weight();
        Some(Box::new(WithMass(Erased(prepared), mass)))
    }
}

/// KDS / HINTm / interval-tree shard: uniform sampling always, weighted
/// when built with weights. Weighted handles carry their mass (read off
/// the phase-1 state via each structure's `total_weight`), so the
/// engine never re-enumerates the result set for allocation.
struct WeightedBaseline<I> {
    idx: I,
    weighted: bool,
}

/// Erased handle plus its precomputed allocation mass.
struct WithMass<P>(P, f64);

impl<P: DynPreparedSampler> DynPreparedSampler for WithMass<P> {
    fn candidate_count(&self) -> usize {
        self.0.candidate_count()
    }

    fn count_is_exact(&self) -> bool {
        self.0.count_is_exact()
    }

    fn total_weight(&self) -> Option<f64> {
        Some(self.1)
    }

    fn sample_into_dyn(&self, rng: &mut dyn rand::RngCore, s: usize, out: &mut Vec<ItemId>) {
        self.0.sample_into_dyn(rng, s, out);
    }
}

macro_rules! impl_weighted_baseline {
    ($ty:ident, $bound:ident, $stab:expr) => {
        impl<E: $bound> DynIndex<E> for WeightedBaseline<$ty<E>> {
            fn search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
                self.idx.range_search_into(q, out);
            }

            // The `weighted` flag is manifest state, not index state;
            // `IndexKind::decode_index` restores it from there.
            fn encode_snapshot(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
                self.idx.encode_into(out);
                Ok(())
            }

            fn heap_bytes(&self) -> usize {
                MemoryFootprint::heap_bytes(&self.idx)
            }

            fn count(&self, q: Interval<E>) -> usize {
                self.idx.range_count(q)
            }

            fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
                let stab: fn(&$ty<E>, E, &mut Vec<ItemId>) = $stab;
                stab(&self.idx, p, out);
            }

            fn prepare<'a>(&'a self, q: Interval<E>) -> Option<Box<dyn DynPreparedSampler + 'a>> {
                Some(Box::new(Erased(RangeSampler::prepare(&self.idx, q))))
            }

            fn prepare_weighted<'a>(
                &'a self,
                q: Interval<E>,
            ) -> Option<Box<dyn DynPreparedSampler + 'a>> {
                if !self.weighted {
                    return None;
                }
                let prepared = self.idx.prepare_weighted(q);
                let mass = prepared.total_weight();
                Some(Box::new(WithMass(Erased(prepared), mass)))
            }
        }
    };
}

impl_weighted_baseline!(Kds, GridEndpoint, |idx, p, out| stab_via_search(
    idx, p, out
));
impl_weighted_baseline!(HintM, GridEndpoint, |idx, p, out| stab_via_search(
    idx, p, out
));
impl_weighted_baseline!(IntervalTree, GridEndpoint, |idx, p, out| {
    StabbingQuery::stab_into(idx, p, out)
});
