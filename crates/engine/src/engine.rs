//! The sharded engine: partitioning, the shared-shard concurrent read
//! path, and worker-thread shard-routed mutations.
//!
//! # Sharding and the global-id scheme
//!
//! The dataset is split round-robin: shard `k` of `K` owns the intervals
//! with global id `g ≡ k (mod K)`, stored locally at index `g / K`.
//! Round-robin keeps shards balanced regardless of input order (sorted
//! inputs would overload one shard under contiguous chunking) and makes
//! the local↔global id mapping arithmetic (`g = local·K + k`), so no
//! per-shard id tables are needed.
//!
//! Mutations keep that scheme alive: an insert routed to shard `k`
//! returns global id `local·K + k`, where `local` is the id the shard's
//! own (monotone, never-reusing) allocator issued. Global ids are
//! therefore **stable for the engine's lifetime** — a later
//! [`Engine::remove`] decodes the owning shard back out of the id
//! (`k = g mod K`), and query results keep reporting the same id for
//! the same interval no matter how much churn happened in between.
//!
//! # Concurrency model
//!
//! The engine is a **shared, clonable service**: [`Engine`] is a cheap
//! `Arc` handle (`Clone + Send + Sync`), and every clone points at the
//! same shard state. Each shard is a `RwLock<Box<dyn DynIndex>>`:
//!
//! - **Queries run on the calling thread.** [`Engine::run`] takes read
//!   locks on every shard (in shard order, so lock acquisition is
//!   hierarchical and cannot deadlock against writers), executes both
//!   phases of the batch right there, and releases. Read locks are
//!   shared, so `T` caller threads run `T` batches truly concurrently —
//!   throughput scales with callers, not with an internal queue.
//! - **Mutations run on the worker threads.** Each shard keeps one
//!   worker that owns the write side: [`Engine::apply`] routes each
//!   shard's sub-batch over a channel, and the worker applies it under
//!   the shard's *write* lock — so a query batch observes each shard
//!   either before or after a mutation sub-batch, never torn.
//!   Mutation batches themselves serialize on an internal writer lock,
//!   shared across clones.
//!
//! Determinism survives concurrency: [`Engine::run_seeded`] derives
//! every stream it uses (the allocation stream and one draw stream per
//! shard) from the caller's seed alone, and executes entirely on the
//! calling thread — so its results are byte-identical no matter how
//! many other threads are hammering the same engine, and identical to a
//! single-threaded run.
//!
//! # Batch protocol
//!
//! Count, search, and stab queries finish in one pass over the shards
//! (counts sum, id lists concatenate). Sampling queries take two phases
//! to stay exact:
//!
//! 1. every shard runs candidate computation (phase 1 of the paper's
//!    cost split) and reports its *allocation mass* — the exact local
//!    result-set size `c_k` (uniform) or local weight mass `w_k`
//!    (weighted);
//! 2. the engine draws the per-shard sample counts `(s_1, …, s_K)` from
//!    a multinomial with probabilities `m_k / Σm` and draws each
//!    shard's allocation from the prepared handles phase 1 kept warm —
//!    no second candidate computation.
//!
//! Both phases now run on the calling thread under the read guards, so
//! the prepared handles (which borrow the shard indexes) never cross a
//! thread and no cross-thread allocation exchange exists to deadlock.
//! Per-batch temporaries (allocation matrix, multinomial scratch) come
//! from a shared scratch pool rather than fresh allocations.
//!
//! Allocating multinomially by exact mass makes the sharded sampler
//! *distribution-identical* to a monolithic index: for any interval `x`
//! in shard `k`, `P(draw = x) = (m_k / Σm) · (w(x) / m_k) = w(x) / Σm`.
//! AIT-V reports an upper bound as its candidate count (virtual slots),
//! so the engine substitutes the exact count from a range search —
//! flagged by [`DynPreparedSampler::count_is_exact`].
//!
//! # Failure model
//!
//! Nothing on the query path panics — including when *index code*
//! does. Operations the engine's kind cannot serve return
//! [`QueryError::UnsupportedOperation`] / [`QueryError::NotWeighted`],
//! consistent with [`Engine::capabilities`]. A shard counts as
//! **failed** when its index has shown a bug, whichever side surfaced
//! it first:
//!
//! - its mutation worker died (index panicked mid-mutation, or the
//!   test crash hook fired): the worker's panic guard raises the
//!   shard's dead flag strictly before its channel closes, and a panic
//!   past the write guard additionally poisons the lock;
//! - its index panicked during a query batch: the calling thread
//!   contains the unwind (`catch_unwind` around the per-shard phase-1
//!   and phase-2 work), raises the same dead flag, and the batch that
//!   observed the panic fails wholesale.
//!
//! Either way the verdict is deterministic and engine-wide: every
//! query of every batch that starts after the crash returns
//! [`QueryError::ShardFailed`] (a partial cross-shard count or merge
//! would be silently wrong), and mutations routed to the dead shard
//! return [`UpdateError::ShardFailed`] without being applied — the
//! dead flag gates the mutation scatter too, so a shard marked dead on
//! the query side stops ingesting even though its worker thread still
//! runs. `Drop` of the last handle never blocks on a dead worker: live
//! workers exit on the shutdown message and dead ones have already
//! unwound, so `join` returns immediately either way.

use crate::kind::{DynIndex, IndexKind};
use crate::persist;
use crate::query::{Query, QueryOutput};
use irs_core::erased::DynPreparedSampler;
use irs_core::persist::PersistError;
use irs_core::{
    splitmix64 as mix, validate_update_weight, validate_weights, BuildError, Capabilities,
    GridEndpoint, Interval, ItemId, Mutation, Operation, QueryError, UpdateError, UpdateOutput,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Index structure built per shard.
    pub kind: IndexKind,
    /// Shard count; clamped to ≥ 1.
    pub shards: usize,
    /// Base seed; every batch derives its draw streams from it, so an
    /// engine with a fixed config replays identically.
    pub seed: u64,
}

impl EngineConfig {
    /// A config with `kind`, one shard per available CPU, and a fixed
    /// default seed.
    pub fn new(kind: IndexKind) -> Self {
        EngineConfig {
            kind,
            shards: crate::throughput::cpu_count(),
            seed: 0x1D5_EA5E,
        }
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-query phase-1 result computed on one shard.
enum Partial {
    /// Sampling query: exact allocation mass (count or weight sum).
    Mass(f64),
    /// Non-sampling query, fully answered (ids already global).
    Done(QueryOutput),
    /// The shard's index cannot serve this operation (the engine mints
    /// the matching typed error; all shards agree, sharing one kind).
    Unsupported,
}

/// One shard's mutation answers: `(position, result)` pairs, in order.
type MutReplies = Vec<(usize, Result<UpdateOutput, UpdateError>)>;

/// One shard's slice of a mutation batch.
struct MutJob<E> {
    /// `(position in the caller's batch, mutation)` pairs, in order.
    muts: Vec<(usize, Mutation<E>)>,
    /// Route inserts through the structure's insertion pool (the
    /// paper's batch insertion) instead of one-by-one.
    buffered: bool,
    reply: Sender<(usize, MutReplies)>,
}

/// Messages to a shard's mutation worker. Queries never touch the
/// channel — they run on the calling thread against the shared locks.
enum MutMsg<E> {
    Mutate(MutJob<E>),
    Shutdown,
    /// Test hook: panic the worker, simulating an index bug, to
    /// exercise the [`QueryError::ShardFailed`] paths.
    #[allow(dead_code)]
    Crash,
}

/// A shard's index behind its reader/writer lock, shared between the
/// engine handles (read side) and the shard's mutation worker (write
/// side).
type SharedIndex<E> = Arc<RwLock<Box<dyn DynIndex<E>>>>;

/// One shard: the index behind its reader/writer lock, the mutation
/// worker's channel, and the worker's health flag.
struct Shard<E> {
    /// The shard's index. Queries hold the read side; the mutation
    /// worker takes the write side per sub-batch.
    index: SharedIndex<E>,
    /// Raised by the worker's panic guard *before* its channel closes,
    /// so both crash signals (flag and closed channel) agree by the
    /// time either is observable.
    dead: Arc<AtomicBool>,
    /// The mutation worker's inbox.
    tx: Sender<MutMsg<E>>,
}

/// Mutation-side bookkeeping, guarded by the engine's writer lock so
/// mutation batches from different clones serialize.
struct WriterState {
    /// Live intervals per shard — the load the insert router balances.
    shard_lens: Vec<usize>,
}

/// Reusable per-batch temporaries, recycled through [`ScratchPool`].
#[derive(Default)]
struct Scratch {
    /// Per-shard allocation masses of the query being allocated.
    masses: Vec<f64>,
    /// Cumulative masses (multinomial inversion).
    cumulative: Vec<f64>,
    /// Per-shard draw counts of the query being allocated.
    counts: Vec<usize>,
    /// The whole batch's allocation matrix, flattened `[shard × query]`.
    allocs: Vec<usize>,
}

impl Scratch {
    /// Draws a multinomial over `self.masses` (`s` categorical draws)
    /// and records shard `k`'s count at `self.allocs[k * nq + i]`.
    fn allocate(&mut self, rng: &mut SmallRng, s: usize, nq: usize, i: usize) {
        self.cumulative.clear();
        let mut total = 0.0;
        for &m in &self.masses {
            debug_assert!(m >= 0.0 && m.is_finite(), "allocation mass {m}");
            total += m;
            self.cumulative.push(total);
        }
        if total <= 0.0 {
            return; // empty result set: no draws anywhere
        }
        // Single-recipient fast path: with one shard (or one shard
        // holding all the mass) every categorical draw lands in the same
        // bucket, so skip the `s` RNG draws outright. The multinomial
        // degenerates to a point mass; no distribution changes.
        if let Some(k) = sole_positive(&self.masses) {
            self.allocs[k * nq + i] = s;
            return;
        }
        self.counts.clear();
        self.counts.resize(self.masses.len(), 0);
        for _ in 0..s {
            let r = rng.random_range(0.0..total);
            let k = self
                .cumulative
                .partition_point(|&c| c <= r)
                .min(self.masses.len() - 1);
            self.counts[k] += 1;
        }
        for (k, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                self.allocs[k * nq + i] = n;
            }
        }
    }
}

/// Returns `Some(k)` iff shard `k` is the only one with positive
/// allocation mass (trivially true for one shard).
fn sole_positive(masses: &[f64]) -> Option<usize> {
    let mut found = None;
    for (k, &m) in masses.iter().enumerate() {
        if m > 0.0 {
            if found.is_some() {
                return None;
            }
            found = Some(k);
        }
    }
    found
}

/// A small free-list of [`Scratch`] sets, so concurrent batches reuse
/// their temporaries instead of allocating fresh ones per call.
struct ScratchPool(Mutex<Vec<Scratch>>);

/// More pooled scratch sets than this just pins memory (it means this
/// many batches really ran at once; steady state needs ~one per caller
/// thread).
const SCRATCH_POOL_CAP: usize = 64;

/// Largest allocation-matrix capacity (`shards × queries` slots) a
/// returned scratch set may keep; bigger ones are dropped so one huge
/// batch can't pin megabytes for the engine's lifetime.
const SCRATCH_RETAIN_ELEMS: usize = 1 << 16;

impl ScratchPool {
    fn new() -> Self {
        ScratchPool(Mutex::new(Vec::new()))
    }

    fn checkout(&self) -> Scratch {
        // A poisoned pool lock only means a panicking thread held it;
        // the Vec inside is still a valid free-list.
        let mut pool = self.0.lock().unwrap_or_else(|e| e.into_inner());
        pool.pop().unwrap_or_default()
    }

    fn restore(&self, scratch: Scratch) {
        // An outlier batch (huge shards × queries product) would
        // otherwise pin its allocation matrix for the engine's
        // lifetime; let oversized scratch sets drop instead.
        if scratch.allocs.capacity() > SCRATCH_RETAIN_ELEMS {
            return;
        }
        let mut pool = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < SCRATCH_POOL_CAP {
            pool.push(scratch);
        }
    }
}

/// Raises the shard's dead flag if the worker thread unwinds. Declared
/// as a body local *after* the worker's channel receiver is captured,
/// so drop order guarantees the flag is visible before the channel
/// closes (body locals drop before closure captures).
struct DeadOnPanic(Arc<AtomicBool>);

impl Drop for DeadOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

/// The state every [`Engine`] clone shares.
struct EngineShared<E> {
    shards: Vec<Shard<E>>,
    workers: Vec<JoinHandle<()>>,
    kind: IndexKind,
    /// Live intervals (build-time data plus inserts minus deletes);
    /// atomic so query-side readers never take the writer lock.
    len: AtomicUsize,
    weighted: bool,
    base_seed: u64,
    batch_counter: AtomicU64,
    /// Serializes mutation batches across clones and carries the
    /// routing bookkeeping. Queries never touch it.
    writer: Mutex<WriterState>,
    scratch: ScratchPool,
}

impl<E> EngineShared<E> {
    /// The first shard whose worker is known dead, if any — checked at
    /// batch start so a crashed shard fails queries deterministically.
    fn first_dead(&self) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.dead.load(Ordering::SeqCst))
    }
}

impl<E> Drop for EngineShared<E> {
    fn drop(&mut self) {
        for shard in &self.shards {
            // Fails only if the worker is already gone — fine either way.
            let _ = shard.tx.send(MutMsg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            // A panicked worker yields `Err`; there is nothing to do
            // with it here, and the join itself cannot block: live
            // workers exit on Shutdown, dead ones have already unwound.
            let _ = handle.join();
        }
    }
}

/// Sharded, concurrent batch query engine over any [`IndexKind`].
///
/// The handle is cheap to clone (`Arc` under the hood) and
/// `Send + Sync`: clone it into as many threads as you like and call
/// [`Engine::run`] from all of them — batches execute concurrently on
/// the calling threads over the shared shard state. Mutations
/// ([`Engine::apply`] and friends) are serialized internally across all
/// clones. The shards (and their mutation workers) shut down when the
/// last clone drops.
///
/// ```
/// use irs_engine::{Engine, EngineConfig, IndexKind, Query, QueryOutput};
/// use irs_core::Interval;
///
/// let data: Vec<_> = (0..10_000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let engine = Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(4))?;
/// let out = engine.run(&[
///     Query::Count { q: Interval::new(100, 200) },
///     Query::Sample { q: Interval::new(100, 200), s: 8 },
/// ]);
/// assert_eq!(out[0], Ok(QueryOutput::Count(151)));
/// assert_eq!(out[1].as_ref().unwrap().samples().unwrap().len(), 8);
///
/// // Share it: clones are handles to the same engine.
/// let handle = engine.clone();
/// std::thread::spawn(move || handle.count(Interval::new(0, 50)))
///     .join()
///     .unwrap()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Engine<E> {
    inner: Arc<EngineShared<E>>,
}

// Manual impl: a clone is a new handle to the same engine, and must not
// require `E: Clone` (derive would add that bound).
impl<E> Clone for Engine<E> {
    fn clone(&self) -> Self {
        Engine {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<E: GridEndpoint> Engine<E> {
    /// Builds an engine over unweighted intervals. Shard indexes are
    /// built concurrently, one per worker thread.
    pub fn try_new(data: &[Interval<E>], config: EngineConfig) -> Result<Self, BuildError> {
        Self::build(data, None, config)
    }

    /// Builds an engine over weighted intervals (`weights[i]` belongs to
    /// `data[i]`).
    ///
    /// Weights are validated up front: a length mismatch or any
    /// non-positive / non-finite weight is rejected as a [`BuildError`]
    /// naming the offending index, before any shard index is built.
    pub fn try_new_weighted(
        data: &[Interval<E>],
        weights: &[f64],
        config: EngineConfig,
    ) -> Result<Self, BuildError> {
        validate_weights(data.len(), weights)?;
        Self::build(data, Some(weights), config)
    }

    fn build(
        data: &[Interval<E>],
        weights: Option<&[f64]>,
        config: EngineConfig,
    ) -> Result<Self, BuildError> {
        let shards = config.shards.max(1);
        let kind = config.kind;

        // Round-robin partition: shard k gets global ids k, k+K, k+2K, …
        let mut shard_data: Vec<Vec<Interval<E>>> = vec![Vec::new(); shards];
        let shard_lens: Vec<usize> = (0..shards)
            .map(|k| data.len() / shards + usize::from(k < data.len() % shards))
            .collect();
        let mut shard_weights: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (g, iv) in data.iter().enumerate() {
            shard_data[g % shards].push(*iv);
            if let Some(w) = weights {
                shard_weights[g % shards].push(w[g]);
            }
        }

        let (ready_tx, ready_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(shards);
        let mut deads = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, (local, local_w)) in shard_data.into_iter().zip(shard_weights).enumerate() {
            let (tx, rx) = mpsc::channel::<MutMsg<E>>();
            let dead = Arc::new(AtomicBool::new(false));
            let ready = ready_tx.clone();
            let dead_flag = Arc::clone(&dead);
            let has_weights = weights.is_some();
            let spawned = std::thread::Builder::new()
                .name(format!("irs-shard-{shard_id}"))
                .spawn(move || {
                    let index = kind.build_index(&local, has_weights.then_some(local_w.as_slice()));
                    let lock = Arc::new(RwLock::new(index));
                    let _ = ready.send((shard_id, Arc::clone(&lock)));
                    // Body local: drops (raising the flag) before the
                    // captured `rx` drops (closing the channel) if the
                    // worker unwinds — see `DeadOnPanic`.
                    let _dead_guard = DeadOnPanic(dead_flag);
                    mutation_worker(&lock, shard_id, shards, &rx);
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                // Dropping `txs` unblocks the already-started workers,
                // whose recv fails and whose threads then exit.
                Err(_) => return Err(BuildError::ShardDied { shard: shard_id }),
            }
            txs.push(tx);
            deads.push(dead);
        }
        drop(ready_tx);
        let mut locks: Vec<Option<SharedIndex<E>>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            match ready_rx.recv() {
                Ok((shard_id, lock)) => locks[shard_id] = Some(lock),
                Err(_) => {
                    let shard = locks.iter().position(|l| l.is_none()).unwrap_or(0);
                    return Err(BuildError::ShardDied { shard });
                }
            }
        }
        let shards_vec: Vec<Shard<E>> = locks
            .into_iter()
            .zip(txs)
            .zip(deads)
            .map(|((lock, tx), dead)| Shard {
                // audit: allow(no-panic): every slot was filled above (one ready message per shard id, or we returned ShardDied)
                index: lock.expect("every shard reported ready"),
                dead,
                tx,
            })
            .collect();

        Ok(Engine {
            inner: Arc::new(EngineShared {
                shards: shards_vec,
                workers,
                kind,
                len: AtomicUsize::new(data.len()),
                weighted: weights.is_some(),
                base_seed: config.seed,
                batch_counter: AtomicU64::new(0),
                writer: Mutex::new(WriterState { shard_lens }),
                scratch: ScratchPool::new(),
            }),
        })
    }

    /// The configured index kind.
    pub fn kind(&self) -> IndexKind {
        self.inner.kind
    }

    /// What this engine supports, as queryable metadata:
    /// [`IndexKind::capabilities`] of its kind, given whether weights
    /// were supplied at build time. Operations denied here fail with a
    /// typed [`QueryError`]; operations claimed here succeed.
    pub fn capabilities(&self) -> Capabilities {
        self.inner.kind.capabilities(self.inner.weighted)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Live intervals indexed (build-time data plus inserts minus
    /// deletes).
    pub fn len(&self) -> usize {
        self.inner.len.load(Ordering::SeqCst)
    }

    /// Live intervals per shard — a snapshot of the load the insert
    /// router balances.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.inner
            .writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shard_lens
            .clone()
    }

    /// Whether the engine holds zero intervals.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether per-interval weights were supplied at build time.
    pub fn is_weighted(&self) -> bool {
        self.inner.weighted
    }

    /// Estimated bytes of heap memory the engine's indexes retain,
    /// summed over shards ([`crate::DynIndex::heap_bytes`]). Takes each
    /// shard's read lock briefly, so the figure is a consistent
    /// per-shard (not cross-shard) snapshot — the precision a memory
    /// budget needs.
    pub fn heap_bytes(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.index
                    .read()
                    .unwrap_or_else(|e| e.into_inner())
                    .heap_bytes()
            })
            .sum()
    }

    /// Executes a batch: one `Result` per [`Query`], in order. An empty
    /// result set is `Ok` (empty samples / zero count), never an error.
    ///
    /// Each call advances the engine's draw stream, so samples are
    /// independent across calls; use [`Engine::run_seeded`] to pin the
    /// stream.
    ///
    /// Safe — and *scalable* — to call from many threads on a shared
    /// engine: the batch executes on the calling thread under shared
    /// read locks, so concurrent callers proceed in parallel instead of
    /// queuing. An empty batch returns immediately without touching any
    /// lock.
    pub fn run(&self, queries: &[Query<E>]) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let batch = self.inner.batch_counter.fetch_add(1, Ordering::Relaxed);
        self.run_seeded(queries, self.inner.base_seed.wrapping_add(mix(batch)))
    }

    /// [`Engine::run`] with an explicit seed: identical seed, batch,
    /// and engine config reproduce identical results — byte-identical
    /// regardless of how many other threads are querying the engine
    /// concurrently, because every stream the batch consumes is derived
    /// from `seed` and consumed on the calling thread.
    pub fn run_seeded(
        &self,
        queries: &[Query<E>],
        seed: u64,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let inner = &*self.inner;
        let nq = queries.len();
        let shards = inner.shards.len();
        let caps = inner.kind.capabilities(inner.weighted);

        // A crashed shard fails the whole batch, deterministically:
        // its flag was raised before its channel closed, so any caller
        // that could observe the crash observes it here.
        if let Some(shard) = inner.first_dead() {
            return vec![Err(QueryError::ShardFailed { shard }); nq];
        }

        // Read-lock every shard, in shard order. Ordered acquisition
        // makes the lock graph hierarchical: readers climb shard ids,
        // writers (the mutation workers) each hold a single lock — so
        // no reader/writer cycle can form even under a write-preferring
        // lock. A poisoned lock means a mutation panicked midway: the
        // shard is torn, which is exactly `ShardFailed`.
        let mut guards = Vec::with_capacity(shards);
        for (k, shard) in inner.shards.iter().enumerate() {
            match shard.index.read() {
                Ok(guard) => guards.push(guard),
                Err(_) => return vec![Err(QueryError::ShardFailed { shard: k }); nq],
            }
        }
        let has_sampling = queries.iter().any(Query::is_sampling);

        // Phase 1 on the calling thread: candidate computation per
        // shard, keeping sampling handles warm for phase 2. Handles
        // borrow the shard indexes through the read guards above (and
        // drop before them, in reverse declaration order). Index code
        // that panics is contained per shard: the shard is marked dead
        // (the same state a worker-thread panic produces) and the
        // whole batch — plus every later batch, from every caller —
        // fails with the typed `ShardFailed` instead of unwinding into
        // the caller or silently serving from a buggy index.
        let mut phase1: Vec<Vec<Partial>> = Vec::with_capacity(shards);
        let mut prepared: Vec<Vec<Option<Box<dyn DynPreparedSampler + '_>>>> =
            Vec::with_capacity(shards);
        for (k, guard) in guards.iter().enumerate() {
            let index: &dyn DynIndex<E> = &***guard;
            let to_global = |local: ItemId| -> ItemId { local * shards as ItemId + k as ItemId };
            let shard_pass = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut partials = Vec::with_capacity(nq);
                let mut handles = Vec::with_capacity(nq);
                for query in queries {
                    let (partial, handle) = phase1_one(index, query, &to_global, shards == 1);
                    partials.push(partial);
                    handles.push(handle);
                }
                (partials, handles)
            }));
            match shard_pass {
                Ok((partials, handles)) => {
                    phase1.push(partials);
                    prepared.push(handles);
                }
                Err(_) => return self.fail_shard(k, nq),
            }
        }

        // Merge finished queries; allocate sampling queries. Capability
        // verdicts come from the engine's own metadata (all shards run
        // the same kind, so the per-shard prepare checks agree with it).
        let mut scratch = inner.scratch.checkout();
        let mut rng = SmallRng::seed_from_u64(seed ^ ALLOC_SALT);
        let mut results: Vec<Option<Result<QueryOutput, QueryError>>> = vec![None; nq];
        scratch.allocs.clear();
        scratch.allocs.resize(shards * nq, 0);
        for (i, query) in queries.iter().enumerate() {
            let op = query.operation();
            if !caps.supports(op) || matches!(phase1[0][i], Partial::Unsupported) {
                results[i] = Some(Err(inner.kind.unsupported_error(inner.weighted, op)));
                continue;
            }
            if query.is_sampling() {
                let s = match *query {
                    Query::Sample { s, .. } | Query::SampleWeighted { s, .. } => s,
                    // audit: allow(no-panic): is_sampling() above admits only the two Sample variants
                    _ => unreachable!(),
                };
                scratch.masses.clear();
                scratch.masses.extend(phase1.iter().map(|p| match p[i] {
                    Partial::Mass(m) => m,
                    // All shards share one kind, so capability
                    // verdicts are uniform across shards.
                    _ => 0.0,
                }));
                scratch.allocate(&mut rng, s, nq, i);
            } else {
                results[i] = Some(Ok(merge_finished(&phase1, i)));
            }
        }

        // Phase 2: draw exactly the allocated counts from the warm
        // handles. Each shard's draw stream is seeded from `seed` and
        // consumed in query order, so the sequence matches a
        // single-threaded run exactly.
        if has_sampling {
            let mut shard_rngs: Vec<SmallRng> = (0..shards)
                .map(|k| SmallRng::seed_from_u64(seed ^ mix(k as u64 + 1)))
                .collect();
            for (i, slot) in results.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let total_n: usize = (0..shards).map(|k| scratch.allocs[k * nq + i]).sum();
                let mut merged = Vec::with_capacity(total_n);
                for (k, (rng_k, handles)) in shard_rngs.iter_mut().zip(&prepared).enumerate() {
                    let n = scratch.allocs[k * nq + i];
                    let Some(handle) = handles[i].as_ref() else {
                        continue;
                    };
                    if n == 0 {
                        continue;
                    }
                    let start = merged.len();
                    // Same panic containment as phase 1: a drawing bug
                    // fails the batch (and marks the shard), it does
                    // not unwind into the caller.
                    let drew = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle.sample_into_dyn(rng_k as &mut dyn RngCore, n, &mut merged)
                    }));
                    if drew.is_err() {
                        inner.scratch.restore(std::mem::take(&mut scratch));
                        return self.fail_shard(k, nq);
                    }
                    for id in &mut merged[start..] {
                        *id = *id * shards as ItemId + k as ItemId;
                    }
                }
                // Draws land grouped by shard; shuffle so the output
                // order carries no shard signal. (The draws are i.i.d.,
                // so this is cosmetic, not corrective — and with a
                // single shard there is no signal to erase.)
                if shards > 1 {
                    shuffle(&mut rng, &mut merged);
                }
                *slot = Some(Ok(QueryOutput::Samples(merged)));
            }
        }
        inner.scratch.restore(scratch);

        results
            .into_iter()
            .enumerate()
            // Every slot is filled above; the fallback keeps even a
            // protocol bug from panicking the query path.
            .map(|(i, r)| r.unwrap_or(Err(QueryError::ShardFailed { shard: i % shards })))
            .collect()
    }

    /// Applies a batch of typed [`Mutation`]s: one `Result` per
    /// mutation, in order.
    ///
    /// Routing (see the module docs): inserts go to the least-loaded
    /// shard, deletes to the shard decoded from the global id
    /// (`shard = id mod K`). Returned ids follow the engine's global-id
    /// scheme (`local·K + shard`), so they are stable for the engine's
    /// lifetime and interchangeable with the ids query results report.
    ///
    /// Mutation batches serialize on the engine's internal writer lock
    /// (shared by every clone of the handle), and each shard's
    /// sub-batch is applied by that shard's worker under the shard's
    /// *write* lock — so a concurrent query batch observes each shard
    /// either entirely before or entirely after its sub-batch, never
    /// torn. Capability gating happens up front: on a kind with
    /// `capabilities().update == false` every mutation fails with the
    /// typed [`UpdateError::UnsupportedKind`] and no worker is
    /// contacted.
    pub fn apply(&self, muts: &[Mutation<E>]) -> Vec<Result<UpdateOutput, UpdateError>> {
        self.mutate(muts, false)
    }

    /// Convenience: inserts one interval immediately (one-by-one
    /// insertion), returning its stable global id.
    pub fn insert(&self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        match self
            .mutate(&[Mutation::Insert { iv }], false)
            .swap_remove(0)?
        {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Convenience: inserts one weighted interval (weight validated by
    /// the same gate as construction weights), returning its global id.
    pub fn insert_weighted(&self, iv: Interval<E>, weight: f64) -> Result<ItemId, UpdateError> {
        let muts = [Mutation::InsertWeighted { iv, weight }];
        match self.mutate(&muts, false).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Convenience: deletes the live interval behind `id`. Deleting an
    /// id that was never issued (or already deleted) is
    /// [`UpdateError::UnknownId`]; a retired id is never reissued.
    pub fn remove(&self, id: ItemId) -> Result<(), UpdateError> {
        self.mutate(&[Mutation::Delete { id }], false)
            .swap_remove(0)
            .map(|_| ())
    }

    /// Inserts a batch of intervals through the structures' insertion
    /// pools (the paper's §III-D batch insertion): each interval is
    /// immediately visible to queries, while tree maintenance is
    /// amortized across pool flushes. Returns the new global ids, in
    /// input order.
    ///
    /// All-or-nothing: if any insert fails (a dead shard, an
    /// unsupported kind), the inserts that did land are rolled back
    /// (best effort — their shards answered, so their deletes route)
    /// and the first error is returned, so an `Err` never strands
    /// intervals the caller has no ids for.
    pub fn extend_batch(&self, ivs: &[Interval<E>]) -> Result<Vec<ItemId>, UpdateError> {
        let muts: Vec<Mutation<E>> = ivs.iter().map(|&iv| Mutation::Insert { iv }).collect();
        let mut ids = Vec::with_capacity(ivs.len());
        let mut first_err = None;
        for result in self.mutate(&muts, true) {
            match result {
                Ok(UpdateOutput::Inserted(id)) => ids.push(id),
                Ok(UpdateOutput::Removed) => {
                    first_err.get_or_insert(self.mutation_protocol_error());
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(ids),
            Some(e) => {
                let rollback: Vec<Mutation<E>> =
                    ids.into_iter().map(|id| Mutation::Delete { id }).collect();
                let _ = self.mutate(&rollback, false);
                Err(e)
            }
        }
    }

    /// Routes, scatters, and gathers one mutation batch. `buffered`
    /// selects pooled insertion. Holds the writer lock end to end, so
    /// batches from different clones serialize and the routing
    /// bookkeeping stays consistent.
    fn mutate(
        &self,
        muts: &[Mutation<E>],
        buffered: bool,
    ) -> Vec<Result<UpdateOutput, UpdateError>> {
        if muts.is_empty() {
            return Vec::new();
        }
        let inner = &*self.inner;
        let shards = inner.shards.len();
        let mut writer = inner.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut results: Vec<Option<Result<UpdateOutput, UpdateError>>> = vec![None; muts.len()];
        let mut owner: Vec<usize> = vec![0; muts.len()];
        let mut per_shard: Vec<Vec<(usize, Mutation<E>)>> = vec![Vec::new(); shards];
        // Route against a projection of live counts, so a batch of
        // inserts spreads across shards instead of piling on one.
        let mut lens = writer.shard_lens.clone();
        for (i, m) in muts.iter().enumerate() {
            let op = m.op();
            if !inner.kind.supports_mutation(inner.weighted, op) {
                results[i] = Some(Err(inner.kind.unsupported_update_error(inner.weighted, op)));
                continue;
            }
            let target = match *m {
                Mutation::Insert { .. } => least_loaded(&lens),
                Mutation::InsertWeighted { weight, .. } => {
                    if let Err(e) = validate_update_weight(weight) {
                        results[i] = Some(Err(e));
                        continue;
                    }
                    least_loaded(&lens)
                }
                Mutation::Delete { id } => id as usize % shards,
            };
            if !matches!(m, Mutation::Delete { .. }) {
                lens[target] += 1;
            }
            owner[i] = target;
            per_shard[target].push((i, *m));
        }

        // Scatter each shard its sub-batch. A shard whose dead flag is
        // raised (its worker panicked, or its index panicked on the
        // query path) gets nothing: its mutations fail typed, without
        // being applied — even if the worker thread itself is still
        // alive. Otherwise a send that fails means the worker is dead,
        // with the same verdict.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut expected = 0usize;
        for (k, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            if inner.shards[k].dead.load(Ordering::SeqCst) {
                for (i, _) in batch {
                    results[i] = Some(Err(UpdateError::ShardFailed { shard: k }));
                }
                continue;
            }
            let positions: Vec<usize> = batch.iter().map(|&(i, _)| i).collect();
            let sent = inner.shards[k].tx.send(MutMsg::Mutate(MutJob {
                muts: batch,
                buffered,
                reply: reply_tx.clone(),
            }));
            if sent.is_err() {
                for i in positions {
                    results[i] = Some(Err(UpdateError::ShardFailed { shard: k }));
                }
            } else {
                expected += 1;
            }
        }
        drop(reply_tx);

        // Gather. A shard that dies mid-batch closes the reply channel;
        // its positions fall through to the `ShardFailed` fallback.
        let mut len = inner.len.load(Ordering::SeqCst);
        for _ in 0..expected {
            let Ok((k, entries)) = reply_rx.recv() else {
                break;
            };
            for (i, result) in entries {
                if let Ok(out) = &result {
                    match out {
                        UpdateOutput::Inserted(_) => {
                            len += 1;
                            writer.shard_lens[k] += 1;
                        }
                        UpdateOutput::Removed => {
                            len = len.saturating_sub(1);
                            writer.shard_lens[k] = writer.shard_lens[k].saturating_sub(1);
                        }
                    }
                }
                results[i] = Some(result);
            }
        }
        inner.len.store(len, Ordering::SeqCst);

        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or(Err(UpdateError::ShardFailed { shard: owner[i] })))
            .collect()
    }

    /// Marks `shard` failed — the same state a worker-thread panic
    /// produces, observed by every later query and mutation batch from
    /// every clone — and fails the current batch wholesale.
    fn fail_shard(&self, shard: usize, nq: usize) -> Vec<Result<QueryOutput, QueryError>> {
        self.inner.shards[shard].dead.store(true, Ordering::SeqCst);
        vec![Err(QueryError::ShardFailed { shard }); nq]
    }

    /// A mismatched update output can only mean an engine bug; report
    /// it as a typed error rather than panicking the caller.
    fn mutation_protocol_error(&self) -> UpdateError {
        UpdateError::UnsupportedKind {
            kind: self.inner.kind.name(),
            reason: "engine protocol error: mismatched update output variant",
        }
    }

    /// Convenience: exact `|q ∩ X|`.
    pub fn count(&self, q: Interval<E>) -> Result<usize, QueryError> {
        match self.run(&[Query::Count { q }]).swap_remove(0)? {
            QueryOutput::Count(n) => Ok(n),
            _ => Err(self.protocol_error(Operation::Count)),
        }
    }

    /// Convenience: ids of all intervals overlapping `q`.
    pub fn search(&self, q: Interval<E>) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Search { q }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::Search)),
        }
    }

    /// Convenience: ids of all intervals containing `p`.
    pub fn stab(&self, p: E) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Stab { p }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::Stab)),
        }
    }

    /// Convenience: `s` uniform samples from `q ∩ X` (empty if the
    /// result set is empty — that is not an error).
    pub fn sample(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Sample { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::UniformSample)),
        }
    }

    /// Convenience: `s` weight-proportional samples from `q ∩ X`.
    pub fn sample_weighted(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::SampleWeighted { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::WeightedSample)),
        }
    }

    /// A mismatched output variant can only mean an engine bug; report
    /// it as an unsupported operation rather than panicking the caller.
    fn protocol_error(&self, op: Operation) -> QueryError {
        QueryError::UnsupportedOperation {
            op,
            reason: "engine protocol error: mismatched output variant",
        }
    }

    /// Test hook: kill one shard's worker thread, simulating an index
    /// bug, so suites can exercise the [`QueryError::ShardFailed`] and
    /// non-hanging `Drop` paths. Hidden, not deprecated: not part of
    /// the supported API.
    #[doc(hidden)]
    pub fn crash_shard_for_tests(&self, shard: usize) {
        let Some(sh) = self.inner.shards.get(shard) else {
            return;
        };
        let _ = sh.tx.send(MutMsg::Crash);
        // Wait for the worker to actually die. The dead flag is raised
        // strictly before the channel closes (drop order in the worker
        // closure), so once a send fails, the next `run` — from any
        // thread — observes the crash rather than racing it.
        while sh.tx.send(MutMsg::Crash).is_ok() {
            std::thread::yield_now();
        }
    }
}

/// Snapshot persistence: the directory-level save/load pair. See the
/// [`crate::persist`] module for the file layout and `DESIGN.md` for
/// the byte-level format.
impl<E: GridEndpoint> Engine<E> {
    /// Saves the engine to `dir` (created if absent): a manifest plus
    /// one file per shard, each CRC-framed (see [`crate::persist`]).
    ///
    /// The snapshot is **consistent**: the engine's writer lock is held
    /// for the duration, so no mutation batch can land between two
    /// shard files, and the manifest's lengths agree with the shard
    /// payloads. Queries keep running concurrently (each shard is read
    /// under its shared read lock). A loaded copy is byte-equivalent:
    /// [`Engine::run_seeded`] replays identically, and ids issued
    /// before the save stay valid after the load.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_with_stream_counter(dir, 0)
    }

    /// [`Engine::save`], recording a facade-level sample-stream counter
    /// in the manifest. The engine itself has no stream surface (it
    /// always writes 0 through [`Engine::save`]); `irs-client` passes
    /// its own counter here so that streams created after a restart
    /// derive fresh draw seeds instead of replaying pre-save streams.
    pub fn save_with_stream_counter(
        &self,
        dir: impl AsRef<Path>,
        stream_counter: u64,
    ) -> Result<(), PersistError> {
        let dir = dir.as_ref();
        let inner = &*self.inner;
        if inner.first_dead().is_some() {
            return Err(PersistError::Unsupported {
                reason: "a shard has failed; its state cannot be trusted on disk",
            });
        }
        // Freeze mutations (queries proceed): shard payloads, `len`,
        // and the router's per-shard lengths must agree.
        let writer = inner.writer.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, &e))?;
        let manifest = persist::Manifest {
            snapshot_id: persist::fresh_snapshot_id(),
            kind: inner.kind.name().to_string(),
            endpoint: E::type_name().to_string(),
            weighted: inner.weighted,
            shards: inner.shards.len(),
            seed: inner.base_seed,
            batch_counter: inner.batch_counter.load(Ordering::SeqCst),
            stream_counter,
            len: inner.len.load(Ordering::SeqCst),
            shard_lens: writer.shard_lens.clone(),
        };
        // Shard files first, manifest last (each written atomically):
        // a save that dies partway leaves the previous manifest, whose
        // snapshot id disagrees with the fresh shard files — a typed
        // `ManifestMismatch` at load, never a silent mix of two states.
        for (k, shard) in inner.shards.iter().enumerate() {
            let guard = shard.index.read().map_err(|_| PersistError::Unsupported {
                reason: "a shard lock is poisoned; its state cannot be trusted on disk",
            })?;
            let mut payload = Vec::new();
            guard.encode_snapshot(&mut payload)?;
            drop(guard);
            let header = persist::ShardHeader {
                snapshot_id: manifest.snapshot_id,
                kind: manifest.kind.clone(),
                endpoint: manifest.endpoint.clone(),
                shard: k,
                shards: manifest.shards,
                weighted: manifest.weighted,
            };
            persist::write_shard_file(dir, &header, &payload)?;
        }
        persist::write_manifest(dir, &manifest)
    }

    /// Loads an engine from a directory written by [`Engine::save`]
    /// (or by `irs-client`'s `Client::save` — the layouts are shared).
    ///
    /// Everything is validated before any shard state is trusted:
    /// magic, format version, per-section CRCs, the manifest/shard
    /// cross-checks, and each structure's own decode invariants — every
    /// failure is a typed [`PersistError`], never a panic. The loaded
    /// engine is byte-equivalent to the saved one: `run_seeded`
    /// reproduces the original's draws, the unseeded `run` stream
    /// continues where it left off, and the global-id contract
    /// (stable, never reissued) spans the restart.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let manifest = persist::read_manifest(dir)?;
        let kind = IndexKind::parse(&manifest.kind).ok_or_else(|| PersistError::UnknownKind {
            name: manifest.kind.clone(),
        })?;
        if manifest.endpoint != E::type_name() {
            return Err(PersistError::EndpointMismatch {
                stored: manifest.endpoint.clone(),
                expected: E::type_name(),
            });
        }
        let mut indexes: Vec<Box<dyn DynIndex<E>>> = Vec::with_capacity(manifest.shards);
        for k in 0..manifest.shards {
            let shard = persist::read_shard_payload(dir, &manifest, k)?;
            let mut r = irs_core::persist::Reader::new(shard.payload());
            let index = kind.decode_index::<E>(&mut r, manifest.weighted)?;
            if !r.is_empty() {
                return Err(PersistError::Corrupt {
                    what: "index section has trailing bytes",
                });
            }
            indexes.push(index);
        }
        Self::from_restored(indexes, kind, &manifest).map_err(|e| PersistError::io(dir, &e))
    }

    /// Assembles a live engine around already-decoded shard indexes:
    /// the locks, dead flags, and one mutation worker per shard — the
    /// same runtime state [`Engine::try_new`] builds, minus the index
    /// construction.
    fn from_restored(
        indexes: Vec<Box<dyn DynIndex<E>>>,
        kind: IndexKind,
        manifest: &persist::Manifest,
    ) -> std::io::Result<Self> {
        let shards = indexes.len();
        let mut shards_vec = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, index) in indexes.into_iter().enumerate() {
            let lock = Arc::new(RwLock::new(index));
            let (tx, rx) = mpsc::channel::<MutMsg<E>>();
            let dead = Arc::new(AtomicBool::new(false));
            let dead_flag = Arc::clone(&dead);
            let worker_lock = Arc::clone(&lock);
            let handle = std::thread::Builder::new()
                .name(format!("irs-shard-{shard_id}"))
                .spawn(move || {
                    // Body local: drops (raising the flag) before the
                    // captured `rx` drops (closing the channel) if the
                    // worker unwinds — see `DeadOnPanic`.
                    let _dead_guard = DeadOnPanic(dead_flag);
                    mutation_worker(&worker_lock, shard_id, shards, &rx);
                })?;
            workers.push(handle);
            shards_vec.push(Shard {
                index: lock,
                dead,
                tx,
            });
        }
        Ok(Engine {
            inner: Arc::new(EngineShared {
                shards: shards_vec,
                workers,
                kind,
                len: AtomicUsize::new(manifest.len),
                weighted: manifest.weighted,
                base_seed: manifest.seed,
                batch_counter: AtomicU64::new(manifest.batch_counter),
                writer: Mutex::new(WriterState {
                    shard_lens: manifest.shard_lens.clone(),
                }),
                scratch: ScratchPool::new(),
            }),
        })
    }
}

const ALLOC_SALT: u64 = 0xA110_CA7E_5EED_0001;

/// Merges a non-sampling query's per-shard results. Only called for
/// queries whose phase-1 partials are all `Done` (capability-checked
/// upstream); anything else contributes nothing to the merge.
fn merge_finished(phase1: &[Vec<Partial>], i: usize) -> QueryOutput {
    let mut count_sum = 0usize;
    let mut ids_merged: Option<Vec<ItemId>> = None;
    for partials in phase1 {
        match &partials[i] {
            Partial::Done(QueryOutput::Count(n)) => count_sum += n,
            Partial::Done(QueryOutput::Ids(ids)) => ids_merged
                .get_or_insert_with(Vec::new)
                .extend_from_slice(ids),
            _ => {}
        }
    }
    match ids_merged {
        Some(ids) => QueryOutput::Ids(ids),
        None => QueryOutput::Count(count_sum),
    }
}

/// The shard with the fewest live intervals (ties to the lowest id) —
/// the insert router's target.
fn least_loaded(lens: &[usize]) -> usize {
    let mut best = 0;
    for (k, &len) in lens.iter().enumerate() {
        if len < lens[best] {
            best = k;
        }
    }
    best
}

/// Fisher–Yates shuffle (the rand shim has no `seq` module).
fn shuffle(rng: &mut SmallRng, v: &mut [ItemId]) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..=i));
    }
}

/// The per-shard mutation worker: owns the write side of its shard's
/// lock and applies mutation sub-batches until shutdown. Queries never
/// pass through here — they run on caller threads under the read side.
/// Local ids are translated to global ids with the round-robin stride
/// mapping before leaving the shard.
fn mutation_worker<E: GridEndpoint>(
    lock: &RwLock<Box<dyn DynIndex<E>>>,
    shard_id: usize,
    shards: usize,
    rx: &Receiver<MutMsg<E>>,
) {
    loop {
        match rx.recv() {
            Ok(MutMsg::Mutate(job)) => {
                // Write-lock for the whole sub-batch: concurrent query
                // batches see this shard entirely before or entirely
                // after it. Only this worker ever writes the lock, and
                // a panic kills the worker, so the lock cannot be
                // poisoned by the time this succeeds — `into_inner` is
                // a formality, not a recovery path.
                let mut guard = lock.write().unwrap_or_else(|e| e.into_inner());
                apply_mut_job(guard.as_mut(), shard_id, shards, job);
            }
            // audit: allow(no-panic): deliberate crash hook, reachable only through the test-only crash_shard entry point
            Ok(MutMsg::Crash) => panic!("shard {shard_id}: crash requested by test hook"),
            Ok(MutMsg::Shutdown) | Err(_) => return,
        }
    }
}

/// Applies one shard's slice of a mutation batch, translating ids
/// between the shard-local space and the engine's global scheme
/// (`g = local·K + k`) in both directions.
fn apply_mut_job<E: GridEndpoint>(
    index: &mut dyn DynIndex<E>,
    shard_id: usize,
    shards: usize,
    job: MutJob<E>,
) {
    let MutJob {
        muts,
        buffered,
        reply,
    } = job;
    let to_global = |local: ItemId| -> ItemId { local * shards as ItemId + shard_id as ItemId };
    let entries: Vec<(usize, Result<UpdateOutput, UpdateError>)> = muts
        .into_iter()
        .map(|(pos, m)| {
            let result = match m {
                Mutation::Insert { iv } => if buffered {
                    index.insert_buffered(iv)
                } else {
                    index.insert(iv)
                }
                .map(|local| UpdateOutput::Inserted(to_global(local))),
                Mutation::InsertWeighted { iv, weight } => index
                    .insert_weighted(iv, weight)
                    .map(|local| UpdateOutput::Inserted(to_global(local))),
                Mutation::Delete { id } => index
                    .remove(id / shards as ItemId)
                    .map(|()| UpdateOutput::Removed)
                    // The wrapper names the local id; report the global
                    // one the caller actually sent.
                    .map_err(|e| match e {
                        UpdateError::UnknownId { .. } => UpdateError::UnknownId { id },
                        other => other,
                    }),
            };
            (pos, result)
        })
        .collect();
    let _ = reply.send((shard_id, entries));
}

/// Phase 1 for a single query on one shard.
fn phase1_one<'a, E: GridEndpoint>(
    index: &'a dyn DynIndex<E>,
    query: &Query<E>,
    to_global: &impl Fn(ItemId) -> ItemId,
    single_shard: bool,
) -> (Partial, Option<Box<dyn DynPreparedSampler + 'a>>) {
    match *query {
        Query::Sample { q, .. } => match index.prepare(q) {
            Some(p) => {
                // AIT-V's candidate count tallies virtual slots (an upper
                // bound); proportional allocation needs the exact count —
                // except with a single shard, where the multinomial is
                // degenerate (any positive mass sends all draws here) and
                // paying an O(|q ∩ X|) enumeration would forfeit AIT-V's
                // enumeration-free sampling.
                let mass = if p.count_is_exact() || single_shard {
                    p.candidate_count() as f64
                } else {
                    index.count(q) as f64
                };
                (Partial::Mass(mass), Some(p))
            }
            None => (Partial::Unsupported, None),
        },
        Query::SampleWeighted { q, .. } => match index.prepare_weighted(q) {
            Some(p) => match p.total_weight() {
                // Weighted handles carry their allocation mass; a handle
                // without one cannot be allocated against, so the query
                // is reported unsupported rather than mis-allocated.
                Some(mass) => (Partial::Mass(mass), Some(p)),
                None => (Partial::Unsupported, None),
            },
            None => (Partial::Unsupported, None),
        },
        Query::Count { q } => (Partial::Done(QueryOutput::Count(index.count(q))), None),
        Query::Search { q } => {
            let mut ids = Vec::new();
            index.search_into(q, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(QueryOutput::Ids(ids)), None)
        }
        Query::Stab { p } => {
            let mut ids = Vec::new();
            index.stab_into(p, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(QueryOutput::Ids(ids)), None)
        }
    }
}
