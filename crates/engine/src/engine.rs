//! The sharded engine: partitioning, worker threads, the two-phase
//! scatter-gather batch protocol, and shard-routed mutations.
//!
//! # Sharding and the global-id scheme
//!
//! The dataset is split round-robin: shard `k` of `K` owns the intervals
//! with global id `g ≡ k (mod K)`, stored locally at index `g / K`.
//! Round-robin keeps shards balanced regardless of input order (sorted
//! inputs would overload one shard under contiguous chunking) and makes
//! the local↔global id mapping arithmetic (`g = local·K + k`), so no
//! per-shard id tables are needed.
//!
//! Mutations keep that scheme alive: an insert routed to shard `k`
//! returns global id `local·K + k`, where `local` is the id the shard's
//! own (monotone, never-reusing) allocator issued. Global ids are
//! therefore **stable for the engine's lifetime** — a later
//! [`Engine::remove`] decodes the owning shard back out of the id
//! (`k = g mod K`), and query results keep reporting the same id for
//! the same interval no matter how much churn happened in between.
//!
//! # Mutation routing
//!
//! [`Engine::apply`] takes `&mut self` — the exclusive borrow *is* the
//! lifecycle contract: no query batch can be in flight while the
//! dataset changes, enforced at compile time rather than by a lock.
//! Inserts go to the **least-loaded shard** (fewest live intervals,
//! ties to the lowest shard id), which keeps shards balanced under
//! sustained ingest; deletes go to the shard decoded from the global
//! id. Each shard applies its sub-batch in order and replies with typed
//! per-mutation results; a dead worker surfaces as
//! [`UpdateError::ShardFailed`] with the same persistence semantics as
//! the query path's `ShardFailed`.
//!
//! # Batch protocol
//!
//! [`Engine::run`] scatters the whole batch to every worker. Count,
//! search, and stab queries finish in one pass (counts sum, id lists
//! concatenate). Sampling queries need two phases to stay exact:
//!
//! 1. every shard runs candidate computation (phase 1 of the paper's
//!    cost split) and reports its *allocation mass* — the exact local
//!    result-set size `c_k` (uniform) or local weight mass `w_k`
//!    (weighted);
//! 2. the engine draws the per-shard sample counts `(s_1, …, s_K)` from
//!    a multinomial with probabilities `m_k / Σm`, sends each shard its
//!    allocation, and the shards draw from the prepared handles they
//!    kept warm — no second candidate computation.
//!
//! Allocating multinomially by exact mass makes the sharded sampler
//! *distribution-identical* to a monolithic index: for any interval `x`
//! in shard `k`, `P(draw = x) = (m_k / Σm) · (w(x) / m_k) = w(x) / Σm`.
//! AIT-V reports an upper bound as its candidate count (virtual slots),
//! so its workers substitute the exact count from a range search —
//! flagged by [`DynPreparedSampler::count_is_exact`].
//!
//! # Failure model
//!
//! Nothing on the query path panics. Operations the engine's kind
//! cannot serve return [`QueryError::UnsupportedOperation`] /
//! [`QueryError::NotWeighted`], consistent with
//! [`Engine::capabilities`]. A worker thread that dies (its index code
//! panicked, or the process is tearing down) surfaces as
//! [`QueryError::ShardFailed`]: if the death is observed before phase 1
//! completes, every query of the batch errs (a partial cross-shard
//! count or merge would be silently wrong); if it happens during phase
//! 2, the batch's sampling queries err (their draws are lost) while
//! its non-sampling answers stand — they were already complete, with
//! every shard contributing, when the worker died. Every query of
//! every *subsequent* batch errs, since the dead worker's channel
//! stays closed. `Drop` never blocks on a dead worker: live workers
//! exit on the shutdown message and dead ones have already unwound, so
//! `join` returns immediately either way.

use crate::kind::{DynIndex, IndexKind};
use crate::query::{Query, QueryOutput};
use irs_core::erased::DynPreparedSampler;
use irs_core::{
    splitmix64 as mix, validate_update_weight, validate_weights, BuildError, Capabilities,
    GridEndpoint, Interval, ItemId, Mutation, Operation, QueryError, UpdateError, UpdateOutput,
};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Index structure built per shard.
    pub kind: IndexKind,
    /// Shard (= worker thread) count; clamped to ≥ 1.
    pub shards: usize,
    /// Base seed; every batch derives its draw streams from it, so an
    /// engine with a fixed config replays identically.
    pub seed: u64,
}

impl EngineConfig {
    /// A config with `kind`, one shard per available CPU, and a fixed
    /// default seed.
    pub fn new(kind: IndexKind) -> Self {
        EngineConfig {
            kind,
            shards: crate::throughput::cpu_count(),
            seed: 0x1D5_EA5E,
        }
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-query phase-1 result a worker reports.
enum Partial {
    /// Sampling query: exact allocation mass (count or weight sum).
    Mass(f64),
    /// Non-sampling query, fully answered (ids already global).
    Done(QueryOutput),
    /// The shard's index cannot serve this operation (the engine mints
    /// the matching typed error; all shards agree, sharing one kind).
    Unsupported,
}

/// One batch round-trip, scattered to every worker.
struct Job<E> {
    queries: Arc<Vec<Query<E>>>,
    /// Per-worker draw seed for this batch.
    seed: u64,
    phase1_tx: Sender<(usize, Vec<Partial>)>,
    /// Per-query sample allocation for this shard; only received when
    /// the batch contains sampling queries.
    alloc_rx: Receiver<Vec<usize>>,
    phase2_tx: Sender<(usize, Vec<Vec<ItemId>>)>,
}

/// One shard's mutation answers: `(position, result)` pairs, in order.
type MutReplies = Vec<(usize, Result<UpdateOutput, UpdateError>)>;

/// One shard's slice of a mutation batch.
struct MutJob<E> {
    /// `(position in the caller's batch, mutation)` pairs, in order.
    muts: Vec<(usize, Mutation<E>)>,
    /// Route inserts through the structure's insertion pool (the
    /// paper's batch insertion) instead of one-by-one.
    buffered: bool,
    reply: Sender<(usize, MutReplies)>,
}

enum Msg<E> {
    Batch(Job<E>),
    Mutate(MutJob<E>),
    Shutdown,
    /// Test hook: panic the worker, simulating an index bug, to
    /// exercise the [`QueryError::ShardFailed`] paths.
    #[allow(dead_code)]
    Crash,
}

/// Sharded, concurrent batch query engine over any [`IndexKind`].
///
/// ```
/// use irs_engine::{Engine, EngineConfig, IndexKind, Query, QueryOutput};
/// use irs_core::Interval;
///
/// let data: Vec<_> = (0..10_000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let engine = Engine::try_new(&data, EngineConfig::new(IndexKind::Ait).shards(4))?;
/// let out = engine.run(&[
///     Query::Count { q: Interval::new(100, 200) },
///     Query::Sample { q: Interval::new(100, 200), s: 8 },
/// ]);
/// assert_eq!(out[0], Ok(QueryOutput::Count(151)));
/// assert_eq!(out[1].as_ref().unwrap().samples().unwrap().len(), 8);
/// # Ok::<(), irs_core::BuildError>(())
/// ```
pub struct Engine<E> {
    txs: Vec<Sender<Msg<E>>>,
    workers: Vec<JoinHandle<()>>,
    kind: IndexKind,
    len: usize,
    /// Live intervals per shard, maintained by the mutation path for
    /// least-loaded insert routing.
    shard_lens: Vec<usize>,
    weighted: bool,
    base_seed: u64,
    batch_counter: AtomicU64,
    /// Serializes batches. The workers hold borrowed sampling handles
    /// across the phase-1/phase-2 round-trip of *one* batch; two batches
    /// in flight could reach the workers in different orders and
    /// deadlock on the allocation exchange. Parallelism lives *inside* a
    /// batch (across shards), so concurrent callers queue here instead —
    /// batch up rather than fanning out many tiny runs.
    in_flight: Mutex<()>,
}

impl<E: GridEndpoint> Engine<E> {
    /// Builds an engine over unweighted intervals. Shard indexes are
    /// built concurrently, one per worker thread.
    pub fn try_new(data: &[Interval<E>], config: EngineConfig) -> Result<Self, BuildError> {
        Self::build(data, None, config)
    }

    /// Builds an engine over weighted intervals (`weights[i]` belongs to
    /// `data[i]`).
    ///
    /// Weights are validated up front: a length mismatch or any
    /// non-positive / non-finite weight is rejected as a [`BuildError`]
    /// naming the offending index, before any shard index is built.
    pub fn try_new_weighted(
        data: &[Interval<E>],
        weights: &[f64],
        config: EngineConfig,
    ) -> Result<Self, BuildError> {
        validate_weights(data.len(), weights)?;
        Self::build(data, Some(weights), config)
    }

    fn build(
        data: &[Interval<E>],
        weights: Option<&[f64]>,
        config: EngineConfig,
    ) -> Result<Self, BuildError> {
        let shards = config.shards.max(1);
        let kind = config.kind;

        // Round-robin partition: shard k gets global ids k, k+K, k+2K, …
        let mut shard_data: Vec<Vec<Interval<E>>> = vec![Vec::new(); shards];
        let shard_lens: Vec<usize> = (0..shards)
            .map(|k| data.len() / shards + usize::from(k < data.len() % shards))
            .collect();
        let mut shard_weights: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (g, iv) in data.iter().enumerate() {
            shard_data[g % shards].push(*iv);
            if let Some(w) = weights {
                shard_weights[g % shards].push(w[g]);
            }
        }

        let (ready_tx, ready_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, (local, local_w)) in shard_data.into_iter().zip(shard_weights).enumerate() {
            let (tx, rx) = mpsc::channel::<Msg<E>>();
            txs.push(tx);
            let ready = ready_tx.clone();
            let has_weights = weights.is_some();
            let spawned = std::thread::Builder::new()
                .name(format!("irs-shard-{shard_id}"))
                .spawn(move || {
                    let mut index =
                        kind.build_index(&local, has_weights.then_some(local_w.as_slice()));
                    // Data and weights are owned by the index (or its
                    // wrapper) from here; the shard only needs the
                    // stride mapping.
                    let _ = ready.send(shard_id);
                    worker_loop(index.as_mut(), shard_id, shards, &rx);
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                // Dropping `txs` unblocks the already-started workers,
                // whose recv fails and whose threads then exit.
                Err(_) => return Err(BuildError::ShardDied { shard: shard_id }),
            }
        }
        drop(ready_tx);
        let mut ready = vec![false; shards];
        for _ in 0..shards {
            match ready_rx.recv() {
                Ok(shard_id) => ready[shard_id] = true,
                Err(_) => {
                    let shard = ready.iter().position(|&r| !r).unwrap_or(0);
                    return Err(BuildError::ShardDied { shard });
                }
            }
        }

        Ok(Engine {
            txs,
            workers,
            kind,
            len: data.len(),
            shard_lens,
            weighted: weights.is_some(),
            base_seed: config.seed,
            batch_counter: AtomicU64::new(0),
            in_flight: Mutex::new(()),
        })
    }

    /// The configured index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// What this engine supports, as queryable metadata:
    /// [`IndexKind::capabilities`] of its kind, given whether weights
    /// were supplied at build time. Operations denied here fail with a
    /// typed [`QueryError`]; operations claimed here succeed.
    pub fn capabilities(&self) -> Capabilities {
        self.kind.capabilities(self.weighted)
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.txs.len()
    }

    /// Live intervals indexed (build-time data plus inserts minus
    /// deletes).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Live intervals per shard — the load the insert router balances.
    pub fn shard_lens(&self) -> &[usize] {
        &self.shard_lens
    }

    /// Whether the engine holds zero intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether per-interval weights were supplied at build time.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Executes a batch: one `Result` per [`Query`], in order. An empty
    /// result set is `Ok` (empty samples / zero count), never an error.
    ///
    /// Each call advances the engine's draw stream, so samples are
    /// independent across calls; use [`Engine::run_seeded`] to pin the
    /// stream.
    ///
    /// Safe to call from many threads on a shared engine; batches
    /// serialize internally (the parallelism is across shards *within*
    /// a batch), so prefer one large batch over many concurrent small
    /// ones.
    pub fn run(&self, queries: &[Query<E>]) -> Vec<Result<QueryOutput, QueryError>> {
        let batch = self.batch_counter.fetch_add(1, Ordering::Relaxed);
        self.run_seeded(queries, self.base_seed.wrapping_add(mix(batch)))
    }

    /// [`Engine::run`] with an explicit seed: identical seed, batch,
    /// and engine config reproduce identical results.
    pub fn run_seeded(
        &self,
        queries: &[Query<E>],
        seed: u64,
    ) -> Vec<Result<QueryOutput, QueryError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        // One batch in flight at a time (see `in_flight`); a poisoned
        // lock just means another batch panicked — this one can proceed.
        let _serialized = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        let shards = self.txs.len();
        let caps = self.capabilities();
        let queries = Arc::new(queries.to_vec());
        // Workers make the same deterministic check on the raw query
        // list, so both sides agree on whether phase 2 happens — even
        // when every sampling query turns out to be unsupported.
        let has_sampling = queries.iter().any(Query::is_sampling);

        // Scatter. A send can only fail if the worker is dead; the
        // whole batch fails then (partial answers would be wrong).
        let (p1_tx, p1_rx) = mpsc::channel();
        let (p2_tx, p2_rx) = mpsc::channel();
        let mut alloc_txs = Vec::with_capacity(shards);
        for (k, tx) in self.txs.iter().enumerate() {
            let (alloc_tx, alloc_rx) = mpsc::channel();
            alloc_txs.push(alloc_tx);
            let sent = tx.send(Msg::Batch(Job {
                queries: Arc::clone(&queries),
                seed: seed ^ mix(k as u64 + 1),
                phase1_tx: p1_tx.clone(),
                alloc_rx,
                phase2_tx: p2_tx.clone(),
            }));
            if sent.is_err() {
                // Workers that already got the job see the result
                // channels close and abandon the batch.
                return vec![Err(QueryError::ShardFailed { shard: k }); queries.len()];
            }
        }
        drop(p1_tx);
        drop(p2_tx);

        // Gather phase 1. Workers drop their phase-1 senders as soon as
        // they have reported, so a dead shard shows up here as a closed
        // channel instead of a hang.
        let mut phase1: Vec<Vec<Partial>> = (0..shards).map(|_| Vec::new()).collect();
        let mut answered = vec![false; shards];
        for _ in 0..shards {
            match p1_rx.recv() {
                Ok((k, partials)) => {
                    phase1[k] = partials;
                    answered[k] = true;
                }
                Err(_) => {
                    let shard = answered.iter().position(|&a| !a).unwrap_or(0);
                    return vec![Err(QueryError::ShardFailed { shard }); queries.len()];
                }
            }
        }

        // Merge finished queries; allocate sampling queries. Capability
        // verdicts come from the engine's own metadata (all shards run
        // the same kind, so the workers' prepare checks agree with it).
        let mut rng = SmallRng::seed_from_u64(seed ^ ALLOC_SALT);
        let mut results: Vec<Option<Result<QueryOutput, QueryError>>> = vec![None; queries.len()];
        let mut allocs: Vec<Vec<usize>> = vec![vec![0; queries.len()]; shards];
        for (i, query) in queries.iter().enumerate() {
            let op = query.operation();
            if !caps.supports(op) || matches!(phase1[0][i], Partial::Unsupported) {
                results[i] = Some(Err(self.kind.unsupported_error(self.weighted, op)));
                continue;
            }
            if query.is_sampling() {
                let s = match *query {
                    Query::Sample { s, .. } | Query::SampleWeighted { s, .. } => s,
                    _ => unreachable!(),
                };
                let masses: Vec<f64> = phase1
                    .iter()
                    .map(|p| match p[i] {
                        Partial::Mass(m) => m,
                        // All shards share one kind, so capability
                        // verdicts are uniform across shards.
                        _ => 0.0,
                    })
                    .collect();
                multinomial_into(&mut rng, &masses, s, |shard, n| allocs[shard][i] = n);
            } else {
                results[i] = Some(Ok(merge_finished(&phase1, i)));
            }
        }

        // Phase 2: only sampling batches need the second round-trip.
        if has_sampling {
            for (alloc_tx, alloc) in alloc_txs.into_iter().zip(allocs) {
                // A worker that died mid-batch surfaces at the recv below.
                let _ = alloc_tx.send(alloc);
            }
            let mut drawn: Vec<Vec<Vec<ItemId>>> = (0..shards).map(|_| Vec::new()).collect();
            let mut answered = vec![false; shards];
            let mut failed: Option<usize> = None;
            for _ in 0..shards {
                match p2_rx.recv() {
                    Ok((k, v)) => {
                        drawn[k] = v;
                        answered[k] = true;
                    }
                    Err(_) => {
                        failed = Some(answered.iter().position(|&a| !a).unwrap_or(0));
                        break;
                    }
                }
            }
            for (i, slot) in results.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                if let Some(shard) = failed {
                    // Non-sampling answers from phase 1 stand (every
                    // shard contributed); only the draws are lost.
                    *slot = Some(Err(QueryError::ShardFailed { shard }));
                    continue;
                }
                let mut merged = Vec::new();
                for shard in &drawn {
                    merged.extend_from_slice(&shard[i]);
                }
                // Workers return draws grouped by shard; shuffle so the
                // output order carries no shard signal. (The draws are
                // i.i.d., so this is cosmetic, not corrective.)
                shuffle(&mut rng, &mut merged);
                *slot = Some(Ok(QueryOutput::Samples(merged)));
            }
        }

        results
            .into_iter()
            .enumerate()
            // Every slot is filled above; the fallback keeps even a
            // protocol bug from panicking the query path.
            .map(|(i, r)| r.unwrap_or(Err(QueryError::ShardFailed { shard: i % shards })))
            .collect()
    }

    /// Applies a batch of typed [`Mutation`]s: one `Result` per
    /// mutation, in order.
    ///
    /// Routing (see the module docs): inserts go to the least-loaded
    /// shard, deletes to the shard decoded from the global id
    /// (`shard = id mod K`). Returned ids follow the engine's global-id
    /// scheme (`local·K + shard`), so they are stable for the engine's
    /// lifetime and interchangeable with the ids query results report.
    ///
    /// Mutations take `&mut self` — queries take `&self` — so the
    /// borrow checker guarantees no query batch observes a half-applied
    /// mutation batch. Capability gating happens up front: on a kind
    /// with `capabilities().update == false` every mutation fails with
    /// the typed [`UpdateError::UnsupportedKind`] and no worker is
    /// contacted.
    pub fn apply(&mut self, muts: &[Mutation<E>]) -> Vec<Result<UpdateOutput, UpdateError>> {
        self.mutate(muts, false)
    }

    /// Convenience: inserts one interval immediately (one-by-one
    /// insertion), returning its stable global id.
    pub fn insert(&mut self, iv: Interval<E>) -> Result<ItemId, UpdateError> {
        match self
            .mutate(&[Mutation::Insert { iv }], false)
            .swap_remove(0)?
        {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Convenience: inserts one weighted interval (weight validated by
    /// the same gate as construction weights), returning its global id.
    pub fn insert_weighted(&mut self, iv: Interval<E>, weight: f64) -> Result<ItemId, UpdateError> {
        let muts = [Mutation::InsertWeighted { iv, weight }];
        match self.mutate(&muts, false).swap_remove(0)? {
            UpdateOutput::Inserted(id) => Ok(id),
            UpdateOutput::Removed => Err(self.mutation_protocol_error()),
        }
    }

    /// Convenience: deletes the live interval behind `id`. Deleting an
    /// id that was never issued (or already deleted) is
    /// [`UpdateError::UnknownId`]; a retired id is never reissued.
    pub fn remove(&mut self, id: ItemId) -> Result<(), UpdateError> {
        self.mutate(&[Mutation::Delete { id }], false)
            .swap_remove(0)
            .map(|_| ())
    }

    /// Inserts a batch of intervals through the structures' insertion
    /// pools (the paper's §III-D batch insertion): each interval is
    /// immediately visible to queries, while tree maintenance is
    /// amortized across pool flushes. Returns the new global ids, in
    /// input order.
    ///
    /// All-or-nothing: if any insert fails (a dead shard, an
    /// unsupported kind), the inserts that did land are rolled back
    /// (best effort — their shards answered, so their deletes route)
    /// and the first error is returned, so an `Err` never strands
    /// intervals the caller has no ids for.
    pub fn extend_batch(&mut self, ivs: &[Interval<E>]) -> Result<Vec<ItemId>, UpdateError> {
        let muts: Vec<Mutation<E>> = ivs.iter().map(|&iv| Mutation::Insert { iv }).collect();
        let mut ids = Vec::with_capacity(ivs.len());
        let mut first_err = None;
        for result in self.mutate(&muts, true) {
            match result {
                Ok(UpdateOutput::Inserted(id)) => ids.push(id),
                Ok(UpdateOutput::Removed) => {
                    first_err.get_or_insert(self.mutation_protocol_error());
                }
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(ids),
            Some(e) => {
                let rollback: Vec<Mutation<E>> =
                    ids.into_iter().map(|id| Mutation::Delete { id }).collect();
                let _ = self.mutate(&rollback, false);
                Err(e)
            }
        }
    }

    /// Routes, scatters, and gathers one mutation batch. `buffered`
    /// selects pooled insertion.
    fn mutate(
        &mut self,
        muts: &[Mutation<E>],
        buffered: bool,
    ) -> Vec<Result<UpdateOutput, UpdateError>> {
        if muts.is_empty() {
            return Vec::new();
        }
        let shards = self.txs.len();
        let mut results: Vec<Option<Result<UpdateOutput, UpdateError>>> = vec![None; muts.len()];
        let mut owner: Vec<usize> = vec![0; muts.len()];
        let mut per_shard: Vec<Vec<(usize, Mutation<E>)>> = vec![Vec::new(); shards];
        // Route against a projection of live counts, so a batch of
        // inserts spreads across shards instead of piling on one.
        let mut lens = self.shard_lens.clone();
        for (i, m) in muts.iter().enumerate() {
            let op = m.op();
            if !self.kind.supports_mutation(self.weighted, op) {
                results[i] = Some(Err(self.kind.unsupported_update_error(self.weighted, op)));
                continue;
            }
            let target = match *m {
                Mutation::Insert { .. } => least_loaded(&lens),
                Mutation::InsertWeighted { weight, .. } => {
                    if let Err(e) = validate_update_weight(weight) {
                        results[i] = Some(Err(e));
                        continue;
                    }
                    least_loaded(&lens)
                }
                Mutation::Delete { id } => id as usize % shards,
            };
            if !matches!(m, Mutation::Delete { .. }) {
                lens[target] += 1;
            }
            owner[i] = target;
            per_shard[target].push((i, *m));
        }

        // Scatter each shard its sub-batch; a send that fails means the
        // worker is dead, so its mutations fail without being applied.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut expected = 0usize;
        for (k, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let positions: Vec<usize> = batch.iter().map(|&(i, _)| i).collect();
            let sent = self.txs[k].send(Msg::Mutate(MutJob {
                muts: batch,
                buffered,
                reply: reply_tx.clone(),
            }));
            if sent.is_err() {
                for i in positions {
                    results[i] = Some(Err(UpdateError::ShardFailed { shard: k }));
                }
            } else {
                expected += 1;
            }
        }
        drop(reply_tx);

        // Gather. A shard that dies mid-batch closes the reply channel;
        // its positions fall through to the `ShardFailed` fallback.
        for _ in 0..expected {
            let Ok((k, entries)) = reply_rx.recv() else {
                break;
            };
            for (i, result) in entries {
                if let Ok(out) = &result {
                    match out {
                        UpdateOutput::Inserted(_) => {
                            self.len += 1;
                            self.shard_lens[k] += 1;
                        }
                        UpdateOutput::Removed => {
                            self.len -= 1;
                            self.shard_lens[k] = self.shard_lens[k].saturating_sub(1);
                        }
                    }
                }
                results[i] = Some(result);
            }
        }

        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or(Err(UpdateError::ShardFailed { shard: owner[i] })))
            .collect()
    }

    /// A mismatched update output can only mean an engine bug; report
    /// it as a typed error rather than panicking the caller.
    fn mutation_protocol_error(&self) -> UpdateError {
        UpdateError::UnsupportedKind {
            kind: self.kind.name(),
            reason: "engine protocol error: mismatched update output variant",
        }
    }

    /// Convenience: exact `|q ∩ X|`.
    pub fn count(&self, q: Interval<E>) -> Result<usize, QueryError> {
        match self.run(&[Query::Count { q }]).swap_remove(0)? {
            QueryOutput::Count(n) => Ok(n),
            _ => Err(self.protocol_error(Operation::Count)),
        }
    }

    /// Convenience: ids of all intervals overlapping `q`.
    pub fn search(&self, q: Interval<E>) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Search { q }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::Search)),
        }
    }

    /// Convenience: ids of all intervals containing `p`.
    pub fn stab(&self, p: E) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Stab { p }]).swap_remove(0)? {
            QueryOutput::Ids(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::Stab)),
        }
    }

    /// Convenience: `s` uniform samples from `q ∩ X` (empty if the
    /// result set is empty — that is not an error).
    pub fn sample(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::Sample { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::UniformSample)),
        }
    }

    /// Convenience: `s` weight-proportional samples from `q ∩ X`.
    pub fn sample_weighted(&self, q: Interval<E>, s: usize) -> Result<Vec<ItemId>, QueryError> {
        match self.run(&[Query::SampleWeighted { q, s }]).swap_remove(0)? {
            QueryOutput::Samples(ids) => Ok(ids),
            _ => Err(self.protocol_error(Operation::WeightedSample)),
        }
    }

    /// A mismatched output variant can only mean an engine bug; report
    /// it as an unsupported operation rather than panicking the caller.
    fn protocol_error(&self, op: Operation) -> QueryError {
        QueryError::UnsupportedOperation {
            op,
            reason: "engine protocol error: mismatched output variant",
        }
    }

    /// Test hook: kill one shard's worker thread, simulating an index
    /// bug, so suites can exercise the [`QueryError::ShardFailed`] and
    /// non-hanging `Drop` paths. Hidden, not deprecated: not part of
    /// the supported API.
    #[doc(hidden)]
    pub fn crash_shard_for_tests(&self, shard: usize) {
        if let Some(tx) = self.txs.get(shard) {
            let _ = tx.send(Msg::Crash);
        }
        // Wait for the worker to actually die, so the next `run` (and
        // not a test race) observes the closed channel.
        while self
            .txs
            .get(shard)
            .is_some_and(|tx| tx.send(Msg::Crash).is_ok())
        {
            std::thread::yield_now();
        }
    }
}

impl<E> Drop for Engine<E> {
    fn drop(&mut self) {
        for tx in &self.txs {
            // Fails only if the worker is already gone — fine either way.
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            // A panicked worker yields `Err`; there is nothing to do
            // with it here, and the join itself cannot block: live
            // workers exit on Shutdown, dead ones have already unwound.
            let _ = handle.join();
        }
    }
}

const ALLOC_SALT: u64 = 0xA110_CA7E_5EED_0001;

/// Merges a non-sampling query's per-shard results. Only called for
/// queries whose phase-1 partials are all `Done` (capability-checked
/// upstream); anything else contributes nothing to the merge.
fn merge_finished(phase1: &[Vec<Partial>], i: usize) -> QueryOutput {
    let mut count_sum = 0usize;
    let mut ids_merged: Option<Vec<ItemId>> = None;
    for partials in phase1 {
        match &partials[i] {
            Partial::Done(QueryOutput::Count(n)) => count_sum += n,
            Partial::Done(QueryOutput::Ids(ids)) => ids_merged
                .get_or_insert_with(Vec::new)
                .extend_from_slice(ids),
            _ => {}
        }
    }
    match ids_merged {
        Some(ids) => QueryOutput::Ids(ids),
        None => QueryOutput::Count(count_sum),
    }
}

/// Draws a multinomial over `masses` (s categorical draws) and reports
/// each shard's count through `set`.
fn multinomial_into(
    rng: &mut SmallRng,
    masses: &[f64],
    s: usize,
    mut set: impl FnMut(usize, usize),
) {
    let mut cumulative = Vec::with_capacity(masses.len());
    let mut total = 0.0;
    for &m in masses {
        debug_assert!(m >= 0.0 && m.is_finite(), "allocation mass {m}");
        total += m;
        cumulative.push(total);
    }
    if total <= 0.0 {
        return; // empty result set: no draws anywhere
    }
    let mut counts = vec![0usize; masses.len()];
    for _ in 0..s {
        let r = rng.random_range(0.0..total);
        let k = cumulative
            .partition_point(|&c| c <= r)
            .min(masses.len() - 1);
        counts[k] += 1;
    }
    for (k, n) in counts.into_iter().enumerate() {
        if n > 0 {
            set(k, n);
        }
    }
}

/// The shard with the fewest live intervals (ties to the lowest id) —
/// the insert router's target.
fn least_loaded(lens: &[usize]) -> usize {
    let mut best = 0;
    for (k, &len) in lens.iter().enumerate() {
        if len < lens[best] {
            best = k;
        }
    }
    best
}

/// Fisher–Yates shuffle (the rand shim has no `seq` module).
fn shuffle(rng: &mut SmallRng, v: &mut [ItemId]) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..=i));
    }
}

/// The per-shard worker: builds nothing (its index is handed in), serves
/// query batches and mutation batches until shutdown. The worker *owns*
/// the mutable index state — mutations apply here, between batches,
/// never concurrently with a query. Local ids are translated to global
/// ids with the round-robin stride mapping before leaving the shard.
fn worker_loop<E: GridEndpoint>(
    index: &mut dyn DynIndex<E>,
    shard_id: usize,
    shards: usize,
    rx: &Receiver<Msg<E>>,
) {
    let to_global = |local: ItemId| -> ItemId { local * shards as ItemId + shard_id as ItemId };
    loop {
        let job = match rx.recv() {
            Ok(Msg::Batch(job)) => job,
            Ok(Msg::Mutate(job)) => {
                apply_mut_job(index, shard_id, shards, job);
                continue;
            }
            Ok(Msg::Crash) => panic!("shard {shard_id}: crash requested by test hook"),
            Ok(Msg::Shutdown) | Err(_) => return,
        };
        let index: &dyn DynIndex<E> = index;
        let Job {
            queries,
            seed,
            phase1_tx,
            alloc_rx,
            phase2_tx,
        } = job;
        let has_sampling = queries.iter().any(Query::is_sampling);

        // Phase 1: candidate computation; keep sampling handles warm.
        let mut prepared: Vec<Option<Box<dyn DynPreparedSampler + '_>>> =
            Vec::with_capacity(queries.len());
        let mut partials = Vec::with_capacity(queries.len());
        for query in queries.iter() {
            let (partial, handle) = phase1_one(index, query, &to_global, shards == 1);
            partials.push(partial);
            prepared.push(handle);
        }
        let reported = phase1_tx.send((shard_id, partials)).is_ok();
        // Drop the phase-1 sender *now*: the engine's gather loop uses
        // channel closure to detect dead shards, which only works if
        // live shards aren't still holding their senders while blocked
        // on the allocation exchange below.
        drop(phase1_tx);
        if !reported {
            continue; // engine gave up on the batch
        }

        // Phase 2: draw exactly the allocated counts from the handles.
        if has_sampling {
            let Ok(alloc) = alloc_rx.recv() else { continue };
            let mut rng = SmallRng::seed_from_u64(seed);
            let drawn: Vec<Vec<ItemId>> = alloc
                .iter()
                .zip(&prepared)
                .map(|(&n, handle)| match (n, handle) {
                    (0, _) | (_, None) => Vec::new(),
                    (n, Some(p)) => {
                        let mut out = Vec::with_capacity(n);
                        p.sample_into_dyn(&mut rng as &mut dyn RngCore, n, &mut out);
                        for id in &mut out {
                            *id = to_global(*id);
                        }
                        out
                    }
                })
                .collect();
            let _ = phase2_tx.send((shard_id, drawn));
        }
    }
}

/// Applies one shard's slice of a mutation batch, translating ids
/// between the shard-local space and the engine's global scheme
/// (`g = local·K + k`) in both directions.
fn apply_mut_job<E: GridEndpoint>(
    index: &mut dyn DynIndex<E>,
    shard_id: usize,
    shards: usize,
    job: MutJob<E>,
) {
    let MutJob {
        muts,
        buffered,
        reply,
    } = job;
    let to_global = |local: ItemId| -> ItemId { local * shards as ItemId + shard_id as ItemId };
    let entries: Vec<(usize, Result<UpdateOutput, UpdateError>)> = muts
        .into_iter()
        .map(|(pos, m)| {
            let result = match m {
                Mutation::Insert { iv } => if buffered {
                    index.insert_buffered(iv)
                } else {
                    index.insert(iv)
                }
                .map(|local| UpdateOutput::Inserted(to_global(local))),
                Mutation::InsertWeighted { iv, weight } => index
                    .insert_weighted(iv, weight)
                    .map(|local| UpdateOutput::Inserted(to_global(local))),
                Mutation::Delete { id } => index
                    .remove(id / shards as ItemId)
                    .map(|()| UpdateOutput::Removed)
                    // The wrapper names the local id; report the global
                    // one the caller actually sent.
                    .map_err(|e| match e {
                        UpdateError::UnknownId { .. } => UpdateError::UnknownId { id },
                        other => other,
                    }),
            };
            (pos, result)
        })
        .collect();
    let _ = reply.send((shard_id, entries));
}

/// Phase 1 for a single query on one shard.
fn phase1_one<'a, E: GridEndpoint>(
    index: &'a dyn DynIndex<E>,
    query: &Query<E>,
    to_global: &impl Fn(ItemId) -> ItemId,
    single_shard: bool,
) -> (Partial, Option<Box<dyn DynPreparedSampler + 'a>>) {
    match *query {
        Query::Sample { q, .. } => match index.prepare(q) {
            Some(p) => {
                // AIT-V's candidate count tallies virtual slots (an upper
                // bound); proportional allocation needs the exact count —
                // except with a single shard, where the multinomial is
                // degenerate (any positive mass sends all draws here) and
                // paying an O(|q ∩ X|) enumeration would forfeit AIT-V's
                // enumeration-free sampling.
                let mass = if p.count_is_exact() || single_shard {
                    p.candidate_count() as f64
                } else {
                    index.count(q) as f64
                };
                (Partial::Mass(mass), Some(p))
            }
            None => (Partial::Unsupported, None),
        },
        Query::SampleWeighted { q, .. } => match index.prepare_weighted(q) {
            Some(p) => match p.total_weight() {
                // Weighted handles carry their allocation mass; a handle
                // without one cannot be allocated against, so the query
                // is reported unsupported rather than mis-allocated.
                Some(mass) => (Partial::Mass(mass), Some(p)),
                None => (Partial::Unsupported, None),
            },
            None => (Partial::Unsupported, None),
        },
        Query::Count { q } => (Partial::Done(QueryOutput::Count(index.count(q))), None),
        Query::Search { q } => {
            let mut ids = Vec::new();
            index.search_into(q, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(QueryOutput::Ids(ids)), None)
        }
        Query::Stab { p } => {
            let mut ids = Vec::new();
            index.stab_into(p, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(QueryOutput::Ids(ids)), None)
        }
    }
}
