//! The sharded engine: partitioning, worker threads, and the two-phase
//! scatter-gather batch protocol.
//!
//! # Sharding
//!
//! The dataset is split round-robin: shard `k` of `K` owns the intervals
//! with global id `g ≡ k (mod K)`, stored locally at index `g / K`.
//! Round-robin keeps shards balanced regardless of input order (sorted
//! inputs would overload one shard under contiguous chunking) and makes
//! the local↔global id mapping arithmetic (`g = local·K + k`), so no
//! per-shard id tables are needed.
//!
//! # Batch protocol
//!
//! [`Engine::execute`] scatters the whole batch to every worker. Count,
//! search, and stab requests finish in one pass (counts sum, id lists
//! concatenate). Sampling requests need two phases to stay exact:
//!
//! 1. every shard runs candidate computation (phase 1 of the paper's
//!    cost split) and reports its *allocation mass* — the exact local
//!    result-set size `c_k` (uniform) or local weight mass `w_k`
//!    (weighted);
//! 2. the engine draws the per-shard sample counts `(s_1, …, s_K)` from
//!    a multinomial with probabilities `m_k / Σm`, sends each shard its
//!    allocation, and the shards draw from the prepared handles they
//!    kept warm — no second candidate computation.
//!
//! Allocating multinomially by exact mass makes the sharded sampler
//! *distribution-identical* to a monolithic index: for any interval `x`
//! in shard `k`, `P(draw = x) = (m_k / Σm) · (w(x) / m_k) = w(x) / Σm`.
//! AIT-V reports an upper bound as its candidate count (virtual slots),
//! so its workers substitute the exact count from a range search —
//! flagged by [`DynPreparedSampler::count_is_exact`].

use crate::kind::{IndexKind, ShardIndex};
use crate::request::{Request, Response};
use irs_core::erased::DynPreparedSampler;
use irs_core::{GridEndpoint, Interval, ItemId};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Engine construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Index structure built per shard.
    pub kind: IndexKind,
    /// Shard (= worker thread) count; clamped to ≥ 1.
    pub shards: usize,
    /// Base seed; every batch derives its draw streams from it, so an
    /// engine with a fixed config replays identically.
    pub seed: u64,
}

impl EngineConfig {
    /// A config with `kind`, one shard per available CPU, and a fixed
    /// default seed.
    pub fn new(kind: IndexKind) -> Self {
        EngineConfig {
            kind,
            shards: crate::throughput::cpu_count(),
            seed: 0x1D5_EA5E,
        }
    }

    /// Sets the shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-request phase-1 result a worker reports.
enum Partial {
    /// Sampling request: exact allocation mass (count or weight sum).
    Mass(f64),
    /// Non-sampling request, fully answered (ids already global).
    Done(Response),
}

/// One batch round-trip, scattered to every worker.
struct Job<E> {
    requests: Arc<Vec<Request<E>>>,
    /// Per-worker draw seed for this batch.
    seed: u64,
    phase1_tx: Sender<(usize, Vec<Partial>)>,
    /// Per-request sample allocation for this shard; only received when
    /// the batch contains sampling requests.
    alloc_rx: Receiver<Vec<usize>>,
    phase2_tx: Sender<(usize, Vec<Vec<ItemId>>)>,
}

enum Msg<E> {
    Batch(Job<E>),
    Shutdown,
}

/// Sharded, concurrent batch query engine over any [`IndexKind`].
///
/// ```
/// use irs_engine::{Engine, EngineConfig, IndexKind, Request, Response};
/// use irs_core::Interval;
///
/// let data: Vec<_> = (0..10_000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let engine = Engine::new(&data, EngineConfig::new(IndexKind::Ait).shards(4));
/// let out = engine.execute(&[
///     Request::Count { q: Interval::new(100, 200) },
///     Request::Sample { q: Interval::new(100, 200), s: 8 },
/// ]);
/// assert_eq!(out[0], Response::Count(151));
/// assert_eq!(out[1].samples().unwrap().len(), 8);
/// ```
pub struct Engine<E> {
    txs: Vec<Sender<Msg<E>>>,
    workers: Vec<JoinHandle<()>>,
    kind: IndexKind,
    len: usize,
    weighted: bool,
    base_seed: u64,
    batch_counter: AtomicU64,
    /// Serializes batches. The workers hold borrowed sampling handles
    /// across the phase-1/phase-2 round-trip of *one* batch; two batches
    /// in flight could reach the workers in different orders and
    /// deadlock on the allocation exchange. Parallelism lives *inside* a
    /// batch (across shards), so concurrent callers queue here instead —
    /// batch up rather than fanning out many tiny executes.
    in_flight: Mutex<()>,
}

impl<E: GridEndpoint> Engine<E> {
    /// Builds an engine over unweighted intervals. Shard indexes are
    /// built concurrently, one per worker thread.
    pub fn new(data: &[Interval<E>], config: EngineConfig) -> Self {
        Self::build(data, None, config)
    }

    /// Builds an engine over weighted intervals (`weights[i]` belongs to
    /// `data[i]`; must be positive and finite).
    ///
    /// # Panics
    /// Panics if `weights` is misaligned with `data`.
    pub fn new_weighted(data: &[Interval<E>], weights: &[f64], config: EngineConfig) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        Self::build(data, Some(weights), config)
    }

    fn build(data: &[Interval<E>], weights: Option<&[f64]>, config: EngineConfig) -> Self {
        let shards = config.shards.max(1);
        let kind = config.kind;

        // Round-robin partition: shard k gets global ids k, k+K, k+2K, …
        let mut shard_data: Vec<Vec<Interval<E>>> = vec![Vec::new(); shards];
        let mut shard_weights: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (g, iv) in data.iter().enumerate() {
            shard_data[g % shards].push(*iv);
            if let Some(w) = weights {
                shard_weights[g % shards].push(w[g]);
            }
        }

        let (ready_tx, ready_rx) = mpsc::channel();
        let mut txs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, (local, local_w)) in shard_data.into_iter().zip(shard_weights).enumerate() {
            let (tx, rx) = mpsc::channel::<Msg<E>>();
            txs.push(tx);
            let ready = ready_tx.clone();
            let has_weights = weights.is_some();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("irs-shard-{shard_id}"))
                    .spawn(move || {
                        let index = kind.build(&local, has_weights.then_some(local_w.as_slice()));
                        // Data and weights are owned by the index (or its
                        // wrapper) from here; the shard only needs the
                        // stride mapping.
                        let _ = ready.send(shard_id);
                        worker_loop(&*index, shard_id, shards, &rx);
                    })
                    .expect("spawn shard worker"),
            );
        }
        drop(ready_tx);
        for _ in 0..shards {
            ready_rx
                .recv()
                .expect("shard worker died during index build");
        }

        Engine {
            txs,
            workers,
            kind,
            len: data.len(),
            weighted: weights.is_some(),
            base_seed: config.seed,
            batch_counter: AtomicU64::new(0),
            in_flight: Mutex::new(()),
        }
    }

    /// The configured index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Number of shards (= worker threads).
    pub fn shard_count(&self) -> usize {
        self.txs.len()
    }

    /// Total intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the engine holds zero intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether per-interval weights were supplied at build time.
    pub fn is_weighted(&self) -> bool {
        self.weighted
    }

    /// Executes a batch, one [`Response`] per [`Request`] in order.
    ///
    /// Each call advances the engine's draw stream, so samples are
    /// independent across calls; use [`Engine::execute_seeded`] to pin
    /// the stream.
    ///
    /// Safe to call from many threads on a shared engine; batches
    /// serialize internally (the parallelism is across shards *within*
    /// a batch), so prefer one large batch over many concurrent small
    /// ones.
    pub fn execute(&self, requests: &[Request<E>]) -> Vec<Response> {
        let batch = self.batch_counter.fetch_add(1, Ordering::Relaxed);
        self.execute_seeded(requests, self.base_seed.wrapping_add(mix(batch)))
    }

    /// [`Engine::execute`] with an explicit seed: identical seed, batch,
    /// and engine config reproduce identical responses.
    pub fn execute_seeded(&self, requests: &[Request<E>], seed: u64) -> Vec<Response> {
        if requests.is_empty() {
            return Vec::new();
        }
        // One batch in flight at a time (see `in_flight`); a poisoned
        // lock just means another batch panicked — this one can proceed.
        let _serialized = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        let shards = self.txs.len();
        let requests = Arc::new(requests.to_vec());
        let has_sampling = requests.iter().any(Request::is_sampling);

        // Scatter.
        let (p1_tx, p1_rx) = mpsc::channel();
        let (p2_tx, p2_rx) = mpsc::channel();
        let mut alloc_txs = Vec::with_capacity(shards);
        for (k, tx) in self.txs.iter().enumerate() {
            let (alloc_tx, alloc_rx) = mpsc::channel();
            alloc_txs.push(alloc_tx);
            tx.send(Msg::Batch(Job {
                requests: Arc::clone(&requests),
                seed: seed ^ mix(k as u64 + 1),
                phase1_tx: p1_tx.clone(),
                alloc_rx,
                phase2_tx: p2_tx.clone(),
            }))
            .expect("shard worker alive");
        }
        drop(p1_tx);
        drop(p2_tx);

        // Gather phase 1.
        let mut phase1: Vec<Vec<Partial>> = (0..shards).map(|_| Vec::new()).collect();
        for _ in 0..shards {
            let (k, partials) = p1_rx.recv().expect("shard worker answered phase 1");
            phase1[k] = partials;
        }

        // Merge finished requests; allocate sampling requests.
        let mut rng = SmallRng::seed_from_u64(seed ^ ALLOC_SALT);
        let mut responses: Vec<Option<Response>> = vec![None; requests.len()];
        let mut allocs: Vec<Vec<usize>> = vec![vec![0; requests.len()]; shards];
        for (i, req) in requests.iter().enumerate() {
            if req.is_sampling() {
                let s = match *req {
                    Request::Sample { s, .. } | Request::SampleWeighted { s, .. } => s,
                    _ => unreachable!(),
                };
                // All shards run the same kind, so capability verdicts
                // agree; shard 0 speaks for all.
                if let Partial::Done(resp) = &phase1[0][i] {
                    responses[i] = Some(resp.clone());
                    continue;
                }
                let masses: Vec<f64> = phase1
                    .iter()
                    .map(|p| match p[i] {
                        Partial::Mass(m) => m,
                        Partial::Done(_) => unreachable!("kind-uniform capability"),
                    })
                    .collect();
                multinomial_into(&mut rng, &masses, s, |shard, n| allocs[shard][i] = n);
            } else {
                responses[i] = Some(merge_finished(&phase1, i));
            }
        }

        // Phase 2: only sampling batches need the second round-trip (the
        // workers make the same deterministic check on the request list).
        if has_sampling {
            for (alloc_tx, alloc) in alloc_txs.into_iter().zip(allocs) {
                // A worker that died mid-batch surfaces at the recv below.
                let _ = alloc_tx.send(alloc);
            }
            let mut drawn: Vec<Vec<Vec<ItemId>>> = (0..shards).map(|_| Vec::new()).collect();
            for _ in 0..shards {
                let (k, v) = p2_rx.recv().expect("shard worker answered phase 2");
                drawn[k] = v;
            }
            for (i, resp) in responses.iter_mut().enumerate() {
                if resp.is_some() {
                    continue;
                }
                let mut merged = Vec::new();
                for shard in &drawn {
                    merged.extend_from_slice(&shard[i]);
                }
                // Workers return draws grouped by shard; shuffle so the
                // output order carries no shard signal. (The draws are
                // i.i.d., so this is cosmetic, not corrective.)
                shuffle(&mut rng, &mut merged);
                *resp = Some(Response::Samples(merged));
            }
        }

        responses
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect()
    }

    /// Convenience: exact `|q ∩ X|`.
    pub fn count(&self, q: Interval<E>) -> usize {
        match &self.execute(&[Request::Count { q }])[0] {
            Response::Count(n) => *n,
            other => unreachable!("count returned {other:?}"),
        }
    }

    /// Convenience: ids of all intervals overlapping `q`.
    pub fn search(&self, q: Interval<E>) -> Vec<ItemId> {
        match self.execute(&[Request::Search { q }]).swap_remove(0) {
            Response::Ids(ids) => ids,
            other => unreachable!("search returned {other:?}"),
        }
    }

    /// Convenience: ids of all intervals containing `p`.
    pub fn stab(&self, p: E) -> Vec<ItemId> {
        match self.execute(&[Request::Stab { p }]).swap_remove(0) {
            Response::Ids(ids) => ids,
            other => unreachable!("stab returned {other:?}"),
        }
    }

    /// Convenience: `s` uniform samples from `q ∩ X`.
    ///
    /// # Panics
    /// Panics if the engine's kind cannot sample uniformly (AWIT built
    /// with non-uniform weights) — use [`Engine::execute`] to handle
    /// [`Response::Unsupported`] gracefully.
    pub fn sample(&self, q: Interval<E>, s: usize) -> Vec<ItemId> {
        match self.execute(&[Request::Sample { q, s }]).swap_remove(0) {
            Response::Samples(ids) => ids,
            Response::Unsupported(why) => panic!("uniform sampling unsupported: {why}"),
            other => unreachable!("sample returned {other:?}"),
        }
    }

    /// Convenience: `s` weight-proportional samples from `q ∩ X`.
    ///
    /// # Panics
    /// Panics if the kind cannot sample by weight (AIT, AIT-V) or the
    /// engine was built without weights.
    pub fn sample_weighted(&self, q: Interval<E>, s: usize) -> Vec<ItemId> {
        match self
            .execute(&[Request::SampleWeighted { q, s }])
            .swap_remove(0)
        {
            Response::Samples(ids) => ids,
            Response::Unsupported(why) => panic!("weighted sampling unsupported: {why}"),
            other => unreachable!("sample_weighted returned {other:?}"),
        }
    }
}

impl<E> Drop for Engine<E> {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

const ALLOC_SALT: u64 = 0xA110_CA7E_5EED_0001;

/// SplitMix64 finalizer: decorrelates seed/shard/batch indices.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Merges a non-sampling request's per-shard results.
fn merge_finished(phase1: &[Vec<Partial>], i: usize) -> Response {
    let mut count_sum = 0usize;
    let mut ids_merged: Option<Vec<ItemId>> = None;
    for partials in phase1 {
        match &partials[i] {
            Partial::Done(Response::Count(n)) => count_sum += n,
            Partial::Done(Response::Ids(ids)) => ids_merged
                .get_or_insert_with(Vec::new)
                .extend_from_slice(ids),
            Partial::Done(other) => return other.clone(),
            Partial::Mass(_) => unreachable!("non-sampling request got a mass"),
        }
    }
    match ids_merged {
        Some(ids) => Response::Ids(ids),
        None => Response::Count(count_sum),
    }
}

/// Draws a multinomial over `masses` (s categorical draws) and reports
/// each shard's count through `set`.
fn multinomial_into(
    rng: &mut SmallRng,
    masses: &[f64],
    s: usize,
    mut set: impl FnMut(usize, usize),
) {
    let mut cumulative = Vec::with_capacity(masses.len());
    let mut total = 0.0;
    for &m in masses {
        debug_assert!(m >= 0.0 && m.is_finite(), "allocation mass {m}");
        total += m;
        cumulative.push(total);
    }
    if total <= 0.0 {
        return; // empty result set: no draws anywhere
    }
    let mut counts = vec![0usize; masses.len()];
    for _ in 0..s {
        let r = rng.random_range(0.0..total);
        let k = cumulative
            .partition_point(|&c| c <= r)
            .min(masses.len() - 1);
        counts[k] += 1;
    }
    for (k, n) in counts.into_iter().enumerate() {
        if n > 0 {
            set(k, n);
        }
    }
}

/// Fisher–Yates shuffle (the rand shim has no `seq` module).
fn shuffle(rng: &mut SmallRng, v: &mut [ItemId]) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.random_range(0..=i));
    }
}

/// The per-shard worker: builds nothing (its index is handed in), serves
/// batches until shutdown. Local ids are translated to global ids with
/// the round-robin stride mapping before leaving the shard.
fn worker_loop<E: GridEndpoint>(
    index: &dyn ShardIndex<E>,
    shard_id: usize,
    shards: usize,
    rx: &Receiver<Msg<E>>,
) {
    let to_global = |local: ItemId| -> ItemId { local * shards as ItemId + shard_id as ItemId };
    while let Ok(Msg::Batch(job)) = rx.recv() {
        let Job {
            requests,
            seed,
            phase1_tx,
            alloc_rx,
            phase2_tx,
        } = job;
        let has_sampling = requests.iter().any(Request::is_sampling);

        // Phase 1: candidate computation; keep sampling handles warm.
        let mut prepared: Vec<Option<Box<dyn DynPreparedSampler + '_>>> =
            Vec::with_capacity(requests.len());
        let mut partials = Vec::with_capacity(requests.len());
        for req in requests.iter() {
            let (partial, handle) = phase1_one(index, req, &to_global, shards == 1);
            partials.push(partial);
            prepared.push(handle);
        }
        if phase1_tx.send((shard_id, partials)).is_err() {
            continue; // engine gave up on the batch
        }

        // Phase 2: draw exactly the allocated counts from the handles.
        if has_sampling {
            let Ok(alloc) = alloc_rx.recv() else { continue };
            let mut rng = SmallRng::seed_from_u64(seed);
            let drawn: Vec<Vec<ItemId>> = alloc
                .iter()
                .zip(&prepared)
                .map(|(&n, handle)| match (n, handle) {
                    (0, _) | (_, None) => Vec::new(),
                    (n, Some(p)) => {
                        let mut out = Vec::with_capacity(n);
                        p.sample_into_dyn(&mut rng as &mut dyn RngCore, n, &mut out);
                        for id in &mut out {
                            *id = to_global(*id);
                        }
                        out
                    }
                })
                .collect();
            let _ = phase2_tx.send((shard_id, drawn));
        }
    }
}

/// Phase 1 for a single request on one shard.
fn phase1_one<'a, E: GridEndpoint>(
    index: &'a dyn ShardIndex<E>,
    req: &Request<E>,
    to_global: &impl Fn(ItemId) -> ItemId,
    single_shard: bool,
) -> (Partial, Option<Box<dyn DynPreparedSampler + 'a>>) {
    match *req {
        Request::Sample { q, .. } => match index.prepare(q) {
            Some(p) => {
                // AIT-V's candidate count tallies virtual slots (an upper
                // bound); proportional allocation needs the exact count —
                // except with a single shard, where the multinomial is
                // degenerate (any positive mass sends all draws here) and
                // paying an O(|q ∩ X|) enumeration would forfeit AIT-V's
                // enumeration-free sampling.
                let mass = if p.count_is_exact() || single_shard {
                    p.candidate_count() as f64
                } else {
                    index.count(q) as f64
                };
                (Partial::Mass(mass), Some(p))
            }
            None => (
                Partial::Done(Response::Unsupported(
                    "this index kind cannot sample uniformly (AWIT holds non-uniform weights)",
                )),
                None,
            ),
        },
        Request::SampleWeighted { q, .. } => match index.prepare_weighted(q) {
            Some(p) => {
                let mass = p
                    .total_weight()
                    .expect("weighted handles carry their allocation mass");
                (Partial::Mass(mass), Some(p))
            }
            None => (
                Partial::Done(Response::Unsupported(
                    "this index kind cannot sample by weight (or the engine was built \
                     without weights)",
                )),
                None,
            ),
        },
        Request::Count { q } => (Partial::Done(Response::Count(index.count(q))), None),
        Request::Search { q } => {
            let mut ids = Vec::new();
            index.search_into(q, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(Response::Ids(ids)), None)
        }
        Request::Stab { p } => {
            let mut ids = Vec::new();
            index.stab_into(p, &mut ids);
            for id in &mut ids {
                *id = to_global(*id);
            }
            (Partial::Done(Response::Ids(ids)), None)
        }
    }
}
