//! Typed queries and outputs of the fallible batch API.
//!
//! One [`Query`] in, one `Result<QueryOutput, QueryError>` out, in batch
//! order — see [`crate::Engine::run`]. Failure is carried by
//! [`irs_core::QueryError`], never by a panic or a sentinel variant; an
//! empty result set is `Ok` (an empty sample vector / `Ok(0)` count),
//! not an error.

use irs_core::{Interval, ItemId, Operation};

/// One query in a batch submitted to [`crate::Engine::run`].
///
/// All variants are `Copy`, so batches can be assembled and re-submitted
/// cheaply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query<E> {
    /// `s` uniform, independent samples from `q ∩ X` (Problem 1).
    Sample {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// `s` weight-proportional, independent samples from `q ∩ X`
    /// (Problem 2). Requires a backend built with per-interval weights
    /// and an index kind that supports weighted sampling — check
    /// [`crate::Engine::capabilities`] or handle the typed error.
    SampleWeighted {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// Exact `|q ∩ X|`.
    Count {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals overlapping `q`.
    Search {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals containing the point `p`.
    Stab {
        /// Stabbing point.
        p: E,
    },
}

impl<E> Query<E> {
    /// The [`Operation`] this query exercises, for matching against a
    /// backend's [`irs_core::Capabilities`].
    pub fn operation(&self) -> Operation {
        match self {
            Query::Sample { .. } => Operation::UniformSample,
            Query::SampleWeighted { .. } => Operation::WeightedSample,
            Query::Count { .. } => Operation::Count,
            Query::Search { .. } => Operation::Search,
            Query::Stab { .. } => Operation::Stab,
        }
    }

    /// Whether this query draws samples — i.e. needs the two-phase
    /// (prepare → allocate → draw) path and an RNG stream, rather than
    /// being answerable in one read-only pass.
    pub fn is_sampling(&self) -> bool {
        matches!(self, Query::Sample { .. } | Query::SampleWeighted { .. })
    }
}

/// Successful result of one [`Query`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutput {
    /// Ids drawn by [`Query::Sample`] / [`Query::SampleWeighted`].
    /// Length equals the requested `s` unless the result set is empty,
    /// in which case it is empty (matching [`irs_core::RangeSampler`]).
    Samples(Vec<ItemId>),
    /// Answer to [`Query::Count`].
    Count(usize),
    /// Answer to [`Query::Search`] / [`Query::Stab`]; order is
    /// unspecified, as with the single-index structures.
    Ids(Vec<ItemId>),
}

impl QueryOutput {
    /// The sample ids, if this is a `Samples` output.
    pub fn samples(&self) -> Option<&[ItemId]> {
        match self {
            QueryOutput::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// The count, if this is a `Count` output.
    pub fn count(&self) -> Option<usize> {
        match self {
            QueryOutput::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The result ids, if this is an `Ids` output.
    pub fn ids(&self) -> Option<&[ItemId]> {
        match self {
            QueryOutput::Ids(ids) => Some(ids),
            _ => None,
        }
    }

    /// Consumes the output, returning the sample ids of a `Samples`
    /// variant (sparing the clone `samples()` would force on callers
    /// that own the output).
    pub fn into_samples(self) -> Option<Vec<ItemId>> {
        match self {
            QueryOutput::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// Consumes the output, returning the ids of an `Ids` variant.
    pub fn into_ids(self) -> Option<Vec<ItemId>> {
        match self {
            QueryOutput::Ids(ids) => Some(ids),
            _ => None,
        }
    }
}
