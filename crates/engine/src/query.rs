//! Typed queries and outputs of the fallible batch API.
//!
//! One [`Query`] in, one `Result<QueryOutput, QueryError>` out, in batch
//! order — see [`crate::Engine::run`]. Failure is carried by
//! [`irs_core::QueryError`], never by a panic or a sentinel variant; an
//! empty result set is `Ok` (an empty sample vector / `Ok(0)` count),
//! not an error.

use irs_core::persist::{Codec, PersistError, Reader};
use irs_core::{GridEndpoint, Interval, ItemId, Operation};

/// One query in a batch submitted to [`crate::Engine::run`].
///
/// All variants are `Copy`, so batches can be assembled and re-submitted
/// cheaply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query<E> {
    /// `s` uniform, independent samples from `q ∩ X` (Problem 1).
    Sample {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// `s` weight-proportional, independent samples from `q ∩ X`
    /// (Problem 2). Requires a backend built with per-interval weights
    /// and an index kind that supports weighted sampling — check
    /// [`crate::Engine::capabilities`] or handle the typed error.
    SampleWeighted {
        /// Query interval.
        q: Interval<E>,
        /// Sample size.
        s: usize,
    },
    /// Exact `|q ∩ X|`.
    Count {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals overlapping `q`.
    Search {
        /// Query interval.
        q: Interval<E>,
    },
    /// All ids of intervals containing the point `p`.
    Stab {
        /// Stabbing point.
        p: E,
    },
}

impl<E> Query<E> {
    /// The [`Operation`] this query exercises, for matching against a
    /// backend's [`irs_core::Capabilities`].
    pub fn operation(&self) -> Operation {
        match self {
            Query::Sample { .. } => Operation::UniformSample,
            Query::SampleWeighted { .. } => Operation::WeightedSample,
            Query::Count { .. } => Operation::Count,
            Query::Search { .. } => Operation::Search,
            Query::Stab { .. } => Operation::Stab,
        }
    }

    /// Whether this query draws samples — i.e. needs the two-phase
    /// (prepare → allocate → draw) path and an RNG stream, rather than
    /// being answerable in one read-only pass.
    pub fn is_sampling(&self) -> bool {
        matches!(self, Query::Sample { .. } | Query::SampleWeighted { .. })
    }
}

/// Successful result of one [`Query`], in batch order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutput {
    /// Ids drawn by [`Query::Sample`] / [`Query::SampleWeighted`].
    /// Length equals the requested `s` unless the result set is empty,
    /// in which case it is empty (matching [`irs_core::RangeSampler`]).
    Samples(Vec<ItemId>),
    /// Answer to [`Query::Count`].
    Count(usize),
    /// Answer to [`Query::Search`] / [`Query::Stab`]; order is
    /// unspecified, as with the single-index structures.
    Ids(Vec<ItemId>),
}

impl QueryOutput {
    /// The sample ids, if this is a `Samples` output.
    pub fn samples(&self) -> Option<&[ItemId]> {
        match self {
            QueryOutput::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// The count, if this is a `Count` output.
    pub fn count(&self) -> Option<usize> {
        match self {
            QueryOutput::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The result ids, if this is an `Ids` output.
    pub fn ids(&self) -> Option<&[ItemId]> {
        match self {
            QueryOutput::Ids(ids) => Some(ids),
            _ => None,
        }
    }

    /// Consumes the output, returning the sample ids of a `Samples`
    /// variant (sparing the clone `samples()` would force on callers
    /// that own the output).
    pub fn into_samples(self) -> Option<Vec<ItemId>> {
        match self {
            QueryOutput::Samples(ids) => Some(ids),
            _ => None,
        }
    }

    /// Consumes the output, returning the ids of an `Ids` variant.
    pub fn into_ids(self) -> Option<Vec<ItemId>> {
        match self {
            QueryOutput::Ids(ids) => Some(ids),
            _ => None,
        }
    }
}

// Wire form of the query vocabulary, so batches travel through
// `irs-wire` frames with the same codec the snapshot format uses (the
// mutation vocabulary's impls live in `irs_core::wire`).

impl<E: GridEndpoint> Codec for Query<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Query::Sample { q, s } => {
                out.push(1);
                q.encode_into(out);
                s.encode_into(out);
            }
            Query::SampleWeighted { q, s } => {
                out.push(2);
                q.encode_into(out);
                s.encode_into(out);
            }
            Query::Count { q } => {
                out.push(3);
                q.encode_into(out);
            }
            Query::Search { q } => {
                out.push(4);
                q.encode_into(out);
            }
            Query::Stab { p } => {
                out.push(5);
                p.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            1 => Ok(Query::Sample {
                q: Interval::decode(r)?,
                s: usize::decode(r)?,
            }),
            2 => Ok(Query::SampleWeighted {
                q: Interval::decode(r)?,
                s: usize::decode(r)?,
            }),
            3 => Ok(Query::Count {
                q: Interval::decode(r)?,
            }),
            4 => Ok(Query::Search {
                q: Interval::decode(r)?,
            }),
            5 => Ok(Query::Stab { p: E::decode(r)? }),
            _ => Err(PersistError::Corrupt {
                what: "unknown query tag",
            }),
        }
    }
}

impl Codec for QueryOutput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            QueryOutput::Samples(ids) => {
                out.push(1);
                ids.encode_into(out);
            }
            QueryOutput::Count(n) => {
                out.push(2);
                n.encode_into(out);
            }
            QueryOutput::Ids(ids) => {
                out.push(3);
                ids.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            1 => Ok(QueryOutput::Samples(Vec::decode(r)?)),
            2 => Ok(QueryOutput::Count(usize::decode(r)?)),
            3 => Ok(QueryOutput::Ids(Vec::decode(r)?)),
            _ => Err(PersistError::Corrupt {
                what: "unknown query-output tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_and_outputs_roundtrip() {
        let queries = [
            Query::Sample {
                q: Interval::new(1i64, 5),
                s: 10,
            },
            Query::SampleWeighted {
                q: Interval::new(-9i64, 0),
                s: 3,
            },
            Query::Count {
                q: Interval::new(0i64, 0),
            },
            Query::Search {
                q: Interval::new(2i64, 7),
            },
            Query::Stab { p: -42i64 },
        ];
        let outputs = [
            QueryOutput::Samples(vec![1, 2, 3]),
            QueryOutput::Count(99),
            QueryOutput::Ids(vec![]),
        ];
        let mut buf = Vec::new();
        for q in &queries {
            q.encode_into(&mut buf);
        }
        for o in &outputs {
            o.encode_into(&mut buf);
        }
        let mut r = Reader::new(&buf);
        for q in &queries {
            assert_eq!(&Query::<i64>::decode(&mut r).unwrap(), q);
        }
        for o in &outputs {
            assert_eq!(&QueryOutput::decode(&mut r).unwrap(), o);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn garbage_query_tags_are_corrupt_not_panics() {
        let mut r = Reader::new(&[0u8]);
        assert!(matches!(
            Query::<i64>::decode(&mut r),
            Err(PersistError::Corrupt { .. })
        ));
        let mut r = Reader::new(&[7u8]);
        assert!(matches!(
            QueryOutput::decode(&mut r),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
