//! The array-backed kd-tree and the KDS sampling algorithm.

use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSampler, RangeSearch, WeightedRangeSampler,
};
use irs_sampling::{prefetch_read, sample_prefix_range_eytzinger, AliasTable, Eytzinger};

/// How many draws each batched sampling pass resolves at once: enough
/// to amortize the alias table and RNG plumbing across a chunk, small
/// enough that the per-chunk scratch lives in two stack cache lines.
const DRAW_CHUNK: usize = 64;

/// A 2-D point `(lo, hi)` with its dataset id.
#[derive(Clone, Copy, Debug)]
struct Point<E> {
    lo: E,
    hi: E,
    id: ItemId,
}

const NIL: u32 = u32::MAX;

/// A kd-tree node over the contiguous point range `[begin, end)`, with the
/// bounding box of its points.
#[derive(Clone, Copy, Debug)]
struct KdNode<E> {
    begin: u32,
    end: u32,
    min_lo: E,
    max_lo: E,
    min_hi: E,
    max_hi: E,
    left: u32,
    right: u32,
}

impl<E: Endpoint> KdNode<E> {
    /// Box fully inside the query rectangle `lo ≤ qhi ∧ hi ≥ qlo`.
    #[inline]
    fn inside(&self, q: &Interval<E>) -> bool {
        self.max_lo <= q.hi && self.min_hi >= q.lo
    }

    /// Box disjoint from the query rectangle.
    #[inline]
    fn disjoint(&self, q: &Interval<E>) -> bool {
        self.min_lo > q.hi || self.max_hi < q.lo
    }
}

/// Default leaf bucket size (points per unsplit node). Small enough that
/// boundary-leaf scans stay cheap, large enough to keep the node count and
/// build time down; the `kds_leaf_size` bench sweeps this.
pub const DEFAULT_LEAF_SIZE: usize = 16;

/// The KDS index: a static kd-tree over interval endpoints supporting
/// independent range sampling, range search, and range counting.
///
/// ```
/// use irs_kds::Kds;
/// use irs_core::{Interval, RangeSampler, RangeCount};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let data: Vec<_> = (0..1000i64).map(|i| Interval::new(i, i + 50)).collect();
/// let kds = Kds::new(&data);
/// let q = Interval::new(200, 240);
/// assert_eq!(kds.range_count(q), 91);
/// let mut rng = StdRng::seed_from_u64(1);
/// assert_eq!(kds.sample(q, 10, &mut rng).len(), 10);
/// ```
#[derive(Debug)]
pub struct Kds<E> {
    points: Vec<Point<E>>,
    nodes: Vec<KdNode<E>>,
    root: u32,
    leaf_size: usize,
    /// Prefix sums of weights in `points` order (weighted variant only):
    /// `prefix[i] = Σ_{k≤i} w(points[k])`.
    weight_prefix: Vec<f64>,
    /// Per-point weights in `points` order, for boundary-leaf filtering.
    point_weights: Vec<f64>,
    /// Derived Eytzinger layout of `weight_prefix` for branchless
    /// cumulative-weight searches. Never serialized: rebuilt from the
    /// prefix array at build and decode time (see DESIGN.md, "Hot-path
    /// memory layout"). Empty iff the index is unweighted.
    ey_weight_prefix: Eytzinger<f64>,
}

impl<E: Endpoint> Kds<E> {
    /// Builds the kd-tree with [`DEFAULT_LEAF_SIZE`].
    pub fn new(data: &[Interval<E>]) -> Self {
        Self::with_leaf_size(data, DEFAULT_LEAF_SIZE)
    }

    /// Builds the weighted variant.
    pub fn new_weighted(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        let mut kds = Self::with_leaf_size(data, DEFAULT_LEAF_SIZE);
        // Weights follow the kd-tree's point permutation.
        let mut point_weights = Vec::with_capacity(kds.points.len());
        let mut prefix = Vec::with_capacity(kds.points.len());
        let mut acc = 0.0;
        for p in &kds.points {
            let w = weights[p.id as usize];
            point_weights.push(w);
            acc += w;
            prefix.push(acc);
        }
        kds.point_weights = point_weights;
        kds.weight_prefix = prefix;
        kds.finalize();
        kds
    }

    /// Rebuilds the derived hot-path state (the Eytzinger layout of the
    /// weight prefix array). `O(n)`; called after weighted construction
    /// and by snapshot decoding.
    fn finalize(&mut self) {
        self.ey_weight_prefix = Eytzinger::from_sorted(&self.weight_prefix);
    }

    /// Builds with an explicit leaf bucket size (ablation hook).
    pub fn with_leaf_size(data: &[Interval<E>], leaf_size: usize) -> Self {
        assert!(leaf_size >= 1, "leaf size must be at least 1");
        let mut points: Vec<Point<E>> = data
            .iter()
            .enumerate()
            .map(|(i, iv)| Point {
                lo: iv.lo,
                hi: iv.hi,
                id: i as ItemId,
            })
            .collect();
        let mut kds = Kds {
            points: Vec::new(),
            nodes: Vec::new(),
            root: NIL,
            leaf_size,
            weight_prefix: Vec::new(),
            point_weights: Vec::new(),
            ey_weight_prefix: Eytzinger::default(),
        };
        if !points.is_empty() {
            let n = points.len();
            kds.root = build(&mut points, 0, n, 0, leaf_size, &mut kds.nodes);
        }
        kds.points = points;
        kds
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Leaf bucket size the tree was built with.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Whether the index carries per-interval weights (built with
    /// [`Kds::new_weighted`], or decoded from a weighted snapshot).
    /// Empty indexes report `false` either way.
    pub fn is_weighted(&self) -> bool {
        !self.weight_prefix.is_empty()
    }

    /// Canonical decomposition of the query rectangle: fully covered
    /// subtrees are kept as array ranges; boundary leaves are scanned and
    /// their qualifying point positions collected.
    fn decompose(&self, q: Interval<E>, full: &mut Vec<(u32, u32)>, partial: &mut Vec<u32>) {
        if self.root == NIL {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(at) = stack.pop() {
            let node = &self.nodes[at as usize];
            // Pull both children toward L1 while this node's box tests
            // run; boundary descents visit most pushed nodes anyway.
            if node.left != NIL {
                prefetch_read(&self.nodes[node.left as usize]);
                prefetch_read(&self.nodes[node.right as usize]);
            }
            if node.disjoint(&q) {
                continue;
            }
            if node.inside(&q) {
                full.push((node.begin, node.end));
                continue;
            }
            if node.left == NIL {
                // Boundary leaf: filter its bucket point by point.
                for pos in node.begin..node.end {
                    let p = &self.points[pos as usize];
                    if p.lo <= q.hi && p.hi >= q.lo {
                        partial.push(pos);
                    }
                }
                continue;
            }
            stack.push(node.left);
            stack.push(node.right);
        }
    }
}

fn build<E: Endpoint>(
    points: &mut [Point<E>],
    begin: usize,
    end: usize,
    depth: usize,
    leaf_size: usize,
    nodes: &mut Vec<KdNode<E>>,
) -> u32 {
    let slice = &points[begin..end];
    let mut min_lo = slice[0].lo;
    let mut max_lo = slice[0].lo;
    let mut min_hi = slice[0].hi;
    let mut max_hi = slice[0].hi;
    for p in &slice[1..] {
        min_lo = min_lo.min(p.lo);
        max_lo = max_lo.max(p.lo);
        min_hi = min_hi.min(p.hi);
        max_hi = max_hi.max(p.hi);
    }
    let idx = nodes.len() as u32;
    nodes.push(KdNode {
        begin: begin as u32,
        end: end as u32,
        min_lo,
        max_lo,
        min_hi,
        max_hi,
        left: NIL,
        right: NIL,
    });
    if end - begin > leaf_size {
        let mid = (end - begin) / 2;
        // Alternate split axis; in-place median partition keeps every
        // subtree a contiguous array range (the property O(1) piece
        // sampling relies on).
        if depth.is_multiple_of(2) {
            points[begin..end].select_nth_unstable_by_key(mid, |p| (p.lo, p.hi, p.id));
        } else {
            points[begin..end].select_nth_unstable_by_key(mid, |p| (p.hi, p.lo, p.id));
        }
        let left = build(points, begin, begin + mid, depth + 1, leaf_size, nodes);
        let right = build(points, begin + mid, end, depth + 1, leaf_size, nodes);
        nodes[idx as usize].left = left;
        nodes[idx as usize].right = right;
    }
    idx
}

impl<E: Endpoint> irs_core::StabbingQuery<E> for Kds<E> {
    /// Stabbing as a degenerate range query (`q.lo = q.hi = p`).
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        self.range_search_into(Interval::point(p), out);
    }
}

impl<E: Endpoint> RangeSearch<E> for Kds<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        self.decompose(q, &mut full, &mut partial);
        for (b, e) in full {
            out.extend(self.points[b as usize..e as usize].iter().map(|p| p.id));
        }
        out.extend(partial.iter().map(|&pos| self.points[pos as usize].id));
    }
}

impl<E: Endpoint> RangeCount<E> for Kds<E> {
    /// `O(√n)` range counting: full pieces contribute their size, boundary
    /// leaves are scanned.
    fn range_count(&self, q: Interval<E>) -> usize {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        self.decompose(q, &mut full, &mut partial);
        full.iter().map(|&(b, e)| (e - b) as usize).sum::<usize>() + partial.len()
    }
}

/// Phase-2 handle of KDS: the canonical decomposition. Sampling builds an
/// alias over pieces (boundary matches pooled as one pseudo-piece), then
/// draws `O(1)` per sample (unweighted) or `O(log n)` (weighted).
pub struct KdsPrepared<'a, E> {
    kds: &'a Kds<E>,
    full: Vec<(u32, u32)>,
    partial: Vec<u32>,
    weighted: bool,
}

impl<E: Endpoint> KdsPrepared<'_, E> {
    /// Total result-set weight `Σ_{x ∈ q∩X} w(x)`, read off the canonical
    /// decomposition: `O(pieces)` via the weight prefix sums — no
    /// enumeration of the result set. Unweighted handles count 1 per
    /// candidate.
    pub fn total_weight(&self) -> f64 {
        if !self.weighted {
            return self.candidate_count() as f64;
        }
        let prefix = &self.kds.weight_prefix;
        let full: f64 = self
            .full
            .iter()
            .map(|&(b, e)| {
                let base = if b == 0 { 0.0 } else { prefix[b as usize - 1] };
                prefix[e as usize - 1] - base
            })
            .sum();
        let partial: f64 = self
            .partial
            .iter()
            .map(|&pos| self.kds.point_weights[pos as usize])
            .sum();
        full + partial
    }
}

impl<E: Endpoint> PreparedSampler for KdsPrepared<'_, E> {
    fn candidate_count(&self) -> usize {
        self.full
            .iter()
            .map(|&(b, e)| (e - b) as usize)
            .sum::<usize>()
            + self.partial.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        let n_full = self.full.len();
        let has_partial = !self.partial.is_empty();
        if n_full == 0 && !has_partial {
            return;
        }
        let mut weights: Vec<f64> = Vec::with_capacity(n_full + 1);
        let mut partial_cum: Vec<f64> = Vec::new();
        if self.weighted {
            let prefix = &self.kds.weight_prefix;
            for &(b, e) in &self.full {
                let base = if b == 0 { 0.0 } else { prefix[b as usize - 1] };
                weights.push(prefix[e as usize - 1] - base);
            }
            if has_partial {
                let mut acc = 0.0;
                partial_cum.reserve(self.partial.len());
                for &pos in &self.partial {
                    acc += self.kds.point_weights[pos as usize];
                    partial_cum.push(acc);
                }
                weights.push(acc);
            }
        } else {
            weights.extend(self.full.iter().map(|&(b, e)| (e - b) as f64));
            if has_partial {
                weights.push(self.partial.len() as f64);
            }
        }
        let alias = AliasTable::new(&weights);
        // Per-query layout over the pooled boundary matches: O(|partial|)
        // to build, and every draw that lands in the pseudo-piece becomes
        // a branchless search instead of a branchy binary search.
        let ey_partial = if self.weighted && has_partial {
            Eytzinger::from_sorted(&partial_cum)
        } else {
            Eytzinger::default()
        };
        out.reserve(s);
        // Chunked three-pass draw loop: (1) batched alias draws while the
        // table's cells are hot, (2) per-draw position resolution issuing
        // a prefetch for the point each draw resolved, (3) id gather in
        // draw order. RNG consumption order is identical to a draw-at-a-
        // time loop, so seeded replay is chunk-size independent.
        let mut ks = [0u32; DRAW_CHUNK];
        let mut poss = [0usize; DRAW_CHUNK];
        let mut done = 0;
        while done < s {
            let c = DRAW_CHUNK.min(s - done);
            alias.sample_fill(rng, &mut ks[..c]);
            for i in 0..c {
                let k = ks[i] as usize;
                let pos = if k < n_full {
                    let (b, e) = self.full[k];
                    if self.weighted {
                        sample_prefix_range_eytzinger(
                            &self.kds.ey_weight_prefix,
                            &self.kds.weight_prefix,
                            b as usize,
                            e as usize - 1,
                            rng,
                        )
                    } else {
                        rand::Rng::random_range(&mut *rng, b as usize..e as usize)
                    }
                } else {
                    let j = if self.weighted {
                        sample_prefix_range_eytzinger(
                            &ey_partial,
                            &partial_cum,
                            0,
                            partial_cum.len() - 1,
                            rng,
                        )
                    } else {
                        rand::Rng::random_range(&mut *rng, 0..self.partial.len())
                    };
                    self.partial[j] as usize
                };
                prefetch_read(&self.kds.points[pos]);
                poss[i] = pos;
            }
            for &pos in &poss[..c] {
                out.push(self.kds.points[pos].id);
            }
            done += c;
        }
    }
}

impl<E: Endpoint> RangeSampler<E> for Kds<E> {
    type Prepared<'a> = KdsPrepared<'a, E>;

    fn prepare(&self, q: Interval<E>) -> KdsPrepared<'_, E> {
        let mut full = Vec::new();
        let mut partial = Vec::new();
        self.decompose(q, &mut full, &mut partial);
        KdsPrepared {
            kds: self,
            full,
            partial,
            weighted: false,
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for Kds<E> {
    type Prepared<'a> = KdsPrepared<'a, E>;

    fn prepare_weighted(&self, q: Interval<E>) -> KdsPrepared<'_, E> {
        assert!(
            !self.weight_prefix.is_empty() || self.is_empty(),
            "weighted sampling requires Kds::new_weighted"
        );
        let mut full = Vec::new();
        let mut partial = Vec::new();
        self.decompose(q, &mut full, &mut partial);
        KdsPrepared {
            kds: self,
            full,
            partial,
            weighted: true,
        }
    }
}

impl<E: Endpoint> MemoryFootprint for Kds<E> {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.points)
            + vec_bytes(&self.nodes)
            + vec_bytes(&self.weight_prefix)
            + vec_bytes(&self.point_weights)
            + self.ey_weight_prefix.heap_bytes()
    }
}

// ---------------------------------------------------------------------
// On-disk codec (see DESIGN.md, "On-disk snapshot format").

use irs_core::persist::{check_arena_link, Codec, PersistError, Reader};

impl<E: Endpoint + Codec> Codec for Point<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.lo.encode_into(out);
        self.hi.encode_into(out);
        self.id.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(Point {
            lo: E::decode(r)?,
            hi: E::decode(r)?,
            id: ItemId::decode(r)?,
        })
    }
}

impl<E: Endpoint + Codec> Codec for KdNode<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.begin.encode_into(out);
        self.end.encode_into(out);
        self.min_lo.encode_into(out);
        self.max_lo.encode_into(out);
        self.min_hi.encode_into(out);
        self.max_hi.encode_into(out);
        self.left.encode_into(out);
        self.right.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(KdNode {
            begin: u32::decode(r)?,
            end: u32::decode(r)?,
            min_lo: E::decode(r)?,
            max_lo: E::decode(r)?,
            min_hi: E::decode(r)?,
            max_hi: E::decode(r)?,
            left: u32::decode(r)?,
            right: u32::decode(r)?,
        })
    }
}

impl<E: Endpoint + Codec> Codec for Kds<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.points.encode_into(out);
        self.nodes.encode_into(out);
        self.root.encode_into(out);
        self.leaf_size.encode_into(out);
        self.weight_prefix.encode_into(out);
        self.point_weights.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let points: Vec<Point<E>> = Vec::decode(r)?;
        if points.iter().any(|p| p.id as usize >= points.len()) {
            return Err(PersistError::Corrupt {
                what: "kd-tree point id out of range",
            });
        }
        let nodes: Vec<KdNode<E>> = Vec::decode(r)?;
        let root = u32::decode(r)?;
        check_arena_link(root, nodes.len(), "kd-tree link out of range")?;
        for n in &nodes {
            check_arena_link(n.left, nodes.len(), "kd-tree link out of range")?;
            check_arena_link(n.right, nodes.len(), "kd-tree link out of range")?;
        }
        if nodes
            .iter()
            .any(|n| n.begin > n.end || n.end as usize > points.len())
        {
            return Err(PersistError::Corrupt {
                what: "kd-tree node range outside the point array",
            });
        }
        let leaf_size = usize::decode(r)?;
        if leaf_size == 0 {
            return Err(PersistError::Corrupt {
                what: "kd-tree leaf size is zero",
            });
        }
        let weight_prefix: Vec<f64> = Vec::decode(r)?;
        let point_weights: Vec<f64> = Vec::decode(r)?;
        if !weight_prefix.is_empty()
            && (weight_prefix.len() != points.len() || point_weights.len() != points.len())
        {
            return Err(PersistError::Corrupt {
                what: "kd-tree weight arrays do not match the point array",
            });
        }
        // Hot-path layouts are derived in memory on decode; the snapshot
        // stays layout-independent.
        let mut kds = Kds {
            points,
            nodes,
            root,
            leaf_size,
            weight_prefix,
            point_weights,
            ey_weight_prefix: Eytzinger::default(),
        };
        kds.finalize();
        Ok(kds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use irs_sampling::stats::{chi_square_ok, chi_square_uniformity_ok};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let kds = Kds::<i64>::new(&[]);
        assert!(kds.is_empty());
        assert!(kds.range_search(iv(0, 10)).is_empty());
        assert_eq!(kds.range_count(iv(0, 10)), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(kds.sample(iv(0, 10), 5, &mut rng).is_empty());
    }

    #[test]
    fn matches_oracle_on_fixture() {
        let data: Vec<_> = (0..777)
            .map(|i| iv((i * 31) % 500, (i * 31) % 500 + i % 40))
            .collect();
        let kds = Kds::new(&data);
        let bf = BruteForce::new(&data);
        for q in [
            iv(0, 550),
            iv(100, 101),
            iv(499, 520),
            iv(-10, -1),
            iv(250, 250),
        ] {
            assert_eq!(
                sorted(kds.range_search(q)),
                sorted(bf.range_search(q)),
                "query {q:?}"
            );
            assert_eq!(kds.range_count(q), bf.range_count(q), "count {q:?}");
        }
    }

    #[test]
    fn leaf_size_one_still_correct() {
        let data: Vec<_> = (0..100).map(|i| iv(i, i + 7)).collect();
        let kds = Kds::with_leaf_size(&data, 1);
        let bf = BruteForce::new(&data);
        let q = iv(20, 40);
        assert_eq!(sorted(kds.range_search(q)), sorted(bf.range_search(q)));
    }

    #[test]
    fn uniform_sampling_chi_square() {
        let data: Vec<_> = (0..400).map(|i| iv(i, i + 60)).collect();
        let kds = Kds::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(150, 200);
        let support = sorted(bf.range_search(q));
        let mut rng = StdRng::seed_from_u64(21);
        let draws = 200_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in kds.sample(q, draws, &mut rng) {
            counts[irs_sampling::stats::expect_in_support(&support, &id)] += 1;
        }
        assert!(
            chi_square_uniformity_ok(&counts, draws as u64),
            "KDS sampling not uniform"
        );
    }

    #[test]
    fn weighted_sampling_matches_weights() {
        let data: Vec<_> = (0..60).map(|i| iv(i, i + 30)).collect();
        let weights: Vec<f64> = (0..60).map(|i| 1.0 + (i % 5) as f64 * 7.0).collect();
        let kds = Kds::new_weighted(&data, &weights);
        let bf = BruteForce::new_weighted(&data, &weights);
        let q = iv(25, 45);
        let support = sorted(bf.range_search(q));
        let total: f64 = support.iter().map(|&id| weights[id as usize]).sum();
        let expected: Vec<f64> = support
            .iter()
            .map(|&id| weights[id as usize] / total)
            .collect();
        let mut rng = StdRng::seed_from_u64(22);
        let draws = 250_000usize;
        let mut counts = vec![0u64; support.len()];
        for id in kds.sample_weighted(q, draws, &mut rng) {
            counts[irs_sampling::stats::expect_in_support(&support, &id)] += 1;
        }
        assert!(
            chi_square_ok(&counts, &expected, draws as u64),
            "KDS weighted sampling off"
        );
    }

    #[test]
    fn decomposition_is_sublinear_for_large_queries() {
        let data: Vec<_> = (0..65_536).map(|i| iv(i, i + 20)).collect();
        let kds = Kds::new(&data);
        let prepared = kds.prepare(iv(10_000, 50_000));
        // O(√n) pieces: for n = 65536 expect on the order of hundreds,
        // certainly far below n / leaf_size = 4096.
        let pieces = prepared.full.len() + prepared.partial.len().div_ceil(DEFAULT_LEAF_SIZE);
        assert!(
            pieces < 1500,
            "{pieces} canonical pieces — decomposition not sublinear"
        );
        assert_eq!(
            prepared.candidate_count(),
            kds.range_count(iv(10_000, 50_000))
        );
    }

    #[test]
    fn duplicate_points() {
        let data = vec![iv(5, 10); 50];
        let kds = Kds::new(&data);
        assert_eq!(kds.range_count(iv(7, 8)), 50);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = kds.sample(iv(0, 20), 500, &mut rng);
        assert_eq!(samples.len(), 500);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_oracle(
            raw in prop::collection::vec((-500i64..500, 0i64..300), 1..300),
            queries in prop::collection::vec((-600i64..600, 0i64..500), 12),
            leaf in 1usize..40,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let kds = Kds::with_leaf_size(&data, leaf);
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(kds.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(kds.range_count(q), bf.range_count(q));
            }
        }
    }
}
