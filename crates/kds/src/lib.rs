//! KDS — kd-tree based spatial independent range sampling (Xie, Phillips,
//! Matheny, Li; SIGMOD 2021), the paper's strongest sampling competitor.
//!
//! Intervals map to 2-D points `x ↦ (x.lo, x.hi)`; a range query maps to
//! the quadrant-like rectangle `lo ≤ q.hi ∧ hi ≥ q.lo` (Fig. 4 of the
//! paper). KDS decomposes that rectangle over a static kd-tree into
//! `O(√n)` *canonical pieces*: subtrees fully inside the rectangle plus
//! boundary leaves that are scanned point-by-point. Because the kd-tree is
//! built by in-place partitioning of one point array, every subtree is a
//! contiguous array range — so uniform sampling inside a canonical piece is
//! a single `O(1)` index draw, giving `O(√n + s)` expected per query.
//! The weighted variant keeps a global prefix-sum of weights in array
//! order, sampling inside a piece in `O(log n)` via the cumulative-sum
//! method: `O(√n + s log n)` expected.
//!
//! The same decomposition yields `O(√n)` range counting — the kd-tree
//! comparator of Table X.
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n log n)` | in-place median partitioning |
//! | Uniform IRS | `O(√n + s)` expected | §V baseline, paper's Table VI |
//! | Weighted IRS | `O(√n + s log n)` expected | prefix-sum draws, Table IX |
//! | Range count | `O(√n)` | canonical pieces, Table X |
//! | Range search | `O(√n + \|q ∩ X\|)` | piece enumeration |
//! | Space | `O(n)` | point array + node arena |
//!
//! Snapshots: [`Kds`] implements [`irs_core::persist::Codec`], storing
//! the point permutation, node arena, and weight arrays verbatim (see
//! `DESIGN.md`, "On-disk snapshot format").

#![deny(missing_docs)]

mod tree;

pub use tree::{Kds, KdsPrepared, DEFAULT_LEAF_SIZE};
