//! Seed derivation shared by the engine and the client facade.

/// SplitMix64 finalizer: decorrelates batch/shard/stream indices from a
/// base seed. The one copy both `irs-engine` (per-batch and per-shard
/// draw seeds) and `irs-client` (per-stream seeds) use, so the two
/// layers cannot drift onto different mixers.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_decorrelates_consecutive_inputs() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert_ne!(a ^ b, 3, "outputs must not preserve input deltas");
        assert_eq!(splitmix64(1), a, "pure function");
    }
}
