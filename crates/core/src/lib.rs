//! Core types and traits for independent range sampling (IRS) on interval data.
//!
//! This crate defines the vocabulary shared by every index structure in the
//! workspace:
//!
//! - [`Interval`] and the [`Endpoint`] trait — closed intervals `[lo, hi]`
//!   over an ordered scalar, with the overlap predicate used throughout the
//!   paper (`x ∩ q  ⇔  q.lo ≤ x.hi ∧ x.lo ≤ q.hi`).
//! - Query traits ([`RangeSearch`], [`RangeCount`], [`RangeSampler`],
//!   [`WeightedRangeSampler`], [`StabbingQuery`]) implemented by the AIT
//!   family and by every baseline, so benchmarks and examples can treat all
//!   of them uniformly.
//! - [`erased::DynPreparedSampler`] — object-safe erasure of the phase-2
//!   handle, so heterogeneous indexes can sit behind one `dyn` type (the
//!   sharded `irs-engine` builds on this).
//! - [`query`] — the fallible query vocabulary shared by every backend:
//!   typed [`QueryError`]/[`BuildError`] taxonomies, the [`Capabilities`]
//!   descriptor, and the one weight-validation gate
//!   ([`validate_weights`]) used at every construction site.
//! - [`mutation`] — the fallible *mutation* vocabulary: typed
//!   [`Mutation`] operations, [`UpdateOutput`]s carrying stable ids, and
//!   the [`UpdateError`] taxonomy shared by every mutable backend.
//! - [`persist`] — the versioned, endian-fixed snapshot codec: the
//!   [`Codec`] trait every index structure implements, CRC-framed
//!   sections, and the [`PersistError`] taxonomy behind the engine's
//!   and client's `save(dir)` / `load(dir)`.
//! - [`wal`] — the append-only write-ahead mutation log behind
//!   replication and point-in-time recovery: CRC-framed [`LogRecord`]s
//!   with monotone sequence numbers, fsync-on-append writers, tailing
//!   readers, and the [`ReplicationError`] taxonomy mapped into the
//!   `7xx` wire-code block.
//! - [`wire`] — the error↔wire mapping behind `irs-server`/`irs-wire`:
//!   every [`QueryError`]/[`UpdateError`]/[`PersistError`] variant is
//!   assigned a stable numeric [`ErrorCode`], and [`WireError`] carries
//!   code + message across process boundaries.
//! - [`catalog`] — the multi-tenant vocabulary shared with `irs-catalog`:
//!   the [`CatalogError`] taxonomy (budget refusals, naming rules,
//!   re-index conflicts) mapped into the append-only `6xx` wire-code
//!   block, and the one collection-name validation gate.
//! - [`MemoryFootprint`] — deterministic deep-size accounting used to
//!   reproduce the paper's memory tables without allocator hooks.
//! - [`oracle::BruteForce`] — the linear-scan reference implementation each
//!   index is property-tested against.
//!
//! Index structures identify intervals by their position in the dataset
//! slice they were built from ([`ItemId`]); samples and search results are
//! returned as ids so callers can recover payloads they keep alongside.

#![deny(missing_docs)]

pub mod catalog;
pub mod dataset;
pub mod erased;
pub mod footprint;
pub mod interval;
pub mod mutation;
pub mod oracle;
pub mod persist;
pub mod query;
pub mod seed;
pub mod traits;
pub mod wal;
pub mod wire;

pub use catalog::{validate_collection_name, CatalogError};
pub use dataset::{candidates_weight, domain_bounds, pair_sort_indices, pair_sorted};
pub use erased::{DynPreparedSampler, Erased, ErasedUpperBound};
pub use footprint::{slice_bytes, vec_bytes, MemoryFootprint};
pub use interval::{Endpoint, GridEndpoint, Interval, Interval64, ItemId};
pub use mutation::{validate_update_weight, Mutation, UpdateError, UpdateOp, UpdateOutput};
pub use oracle::BruteForce;
pub use persist::{Codec, PersistError};
pub use query::{validate_weights, BuildError, Capabilities, Operation, QueryError};
pub use seed::splitmix64;
pub use traits::{
    PreparedSampler, RangeCount, RangeSampler, RangeSearch, StabbingQuery, WeightedRangeSampler,
};
pub use wal::{LogRecord, ReplicationError, WalReplay, WalTailer, WalWriter};
pub use wire::{ErrorCode, WireError};
