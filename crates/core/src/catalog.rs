//! The catalog error taxonomy: everything a multi-tenant [`Catalog`]
//! operation can refuse with, as typed variants.
//!
//! The catalog layer (crate `irs-catalog`) manages *named collections*
//! — each an independent backend with its own index kind, shard count,
//! and seed — behind one shared handle with a global memory budget.
//! Its failures follow the same discipline as [`QueryError`] /
//! [`UpdateError`] / [`PersistError`]: every refusal is a typed variant
//! with a stable wire code (the append-only `6xx` block in
//! [`crate::wire::ErrorCode`]), nothing panics, and budget exhaustion
//! is a refusal — never an abort or an OOM.
//!
//! Two variants wrap inner taxonomies ([`CatalogError::Persist`],
//! [`CatalogError::Update`]) so a snapshot failure or a per-mutation
//! failure surfaced through a catalog operation keeps its *original*
//! stable code instead of being flattened into a catalog-shaped one.
//!
//! [`Catalog`]: https://docs.rs/irs-catalog
//! [`QueryError`]: crate::QueryError
//! [`UpdateError`]: crate::UpdateError
//! [`PersistError`]: crate::PersistError

use crate::mutation::UpdateError;
use crate::persist::PersistError;
use std::fmt;

/// A typed refusal from a catalog operation (create / drop / describe /
/// reindex / budgeted mutation / catalog save & load).
#[derive(Clone, Debug, PartialEq)]
pub enum CatalogError {
    /// No collection with this name exists in the catalog.
    UnknownCollection {
        /// The name the caller asked for.
        name: String,
    },
    /// A collection with this name already exists (create refuses to
    /// overwrite; drop it first).
    CollectionExists {
        /// The conflicting name.
        name: String,
    },
    /// The name violates the catalog's naming rules (lowercase ASCII
    /// letters, digits, `-` and `_`; must start with a letter or digit;
    /// 1–64 bytes). Names double as snapshot subdirectory names, so
    /// the rules are deliberately filesystem-safe.
    InvalidName {
        /// The rejected name.
        name: String,
        /// Which rule it broke.
        reason: &'static str,
    },
    /// Admitting this collection (or this insert batch) would push the
    /// catalog past its global memory budget. The operation is refused
    /// up front — existing collections are untouched and nothing was
    /// allocated toward the request.
    BudgetExceeded {
        /// The collection whose growth was refused.
        name: String,
        /// Estimated bytes the refused operation would have added.
        requested_bytes: usize,
        /// Estimated bytes the catalog currently holds (summed
        /// per-collection `heap_bytes`).
        used_bytes: usize,
        /// The configured global budget.
        budget_bytes: usize,
    },
    /// A re-index of this collection is already in flight; one rebuild
    /// per collection at a time.
    ReindexInProgress {
        /// The busy collection.
        name: String,
    },
    /// The requested index kind cannot serve this collection's data or
    /// declared workload (e.g. re-indexing a weighted collection onto a
    /// kind without weighted sampling, or a churning collection onto a
    /// static snapshot kind).
    IncompatibleKind {
        /// The collection in question.
        name: String,
        /// The refused kind's stable name.
        kind: String,
        /// Why the kind cannot serve it.
        reason: &'static str,
    },
    /// The collection spec itself is invalid (bad weights, malformed
    /// hints), independent of any name or budget.
    InvalidSpec {
        /// What was wrong with it.
        reason: String,
    },
    /// The request needs a catalog-serving endpoint, but this server
    /// (or handle) serves a single collection. The single-collection
    /// request vocabulary keeps working on both.
    NotServingCatalog,
    /// Snapshot plumbing under a catalog operation failed (catalog
    /// save/load, the re-index snapshot step). Keeps the inner
    /// [`PersistError`]'s stable `3xx` wire code.
    Persist(PersistError),
    /// A mutation surfaced through a catalog convenience failed in the
    /// backend. Keeps the inner [`UpdateError`]'s stable `2xx` wire
    /// code.
    Update(UpdateError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownCollection { name } => {
                write!(f, "no collection named `{name}` exists in the catalog")
            }
            CatalogError::CollectionExists { name } => {
                write!(f, "a collection named `{name}` already exists")
            }
            CatalogError::InvalidName { name, reason } => {
                write!(f, "invalid collection name `{name}`: {reason}")
            }
            CatalogError::BudgetExceeded {
                name,
                requested_bytes,
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "growing collection `{name}` by ~{requested_bytes} bytes would exceed \
                 the catalog budget ({used_bytes} of {budget_bytes} bytes in use)"
            ),
            CatalogError::ReindexInProgress { name } => {
                write!(f, "collection `{name}` is already being re-indexed")
            }
            CatalogError::IncompatibleKind { name, kind, reason } => {
                write!(
                    f,
                    "kind `{kind}` cannot serve collection `{name}`: {reason}"
                )
            }
            CatalogError::InvalidSpec { reason } => {
                write!(f, "invalid collection spec: {reason}")
            }
            CatalogError::NotServingCatalog => {
                write!(f, "this endpoint serves a single collection, not a catalog")
            }
            CatalogError::Persist(e) => write!(f, "catalog snapshot failure: {e}"),
            CatalogError::Update(e) => write!(f, "catalog mutation failure: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<PersistError> for CatalogError {
    fn from(e: PersistError) -> Self {
        CatalogError::Persist(e)
    }
}

impl From<UpdateError> for CatalogError {
    fn from(e: UpdateError) -> Self {
        CatalogError::Update(e)
    }
}

/// Validates a collection name against the catalog naming rules:
/// 1–64 bytes of lowercase ASCII letters, digits, `-`, `_`, starting
/// with a letter or digit. The single gate every creation path (local
/// or over the wire) goes through.
pub fn validate_collection_name(name: &str) -> Result<(), CatalogError> {
    let invalid = |reason| {
        Err(CatalogError::InvalidName {
            name: name.to_string(),
            reason,
        })
    };
    if name.is_empty() {
        return invalid("the name is empty");
    }
    if name.len() > 64 {
        return invalid("the name is longer than 64 bytes");
    }
    let mut chars = name.chars();
    let first = chars.next().expect("non-empty");
    if !first.is_ascii_lowercase() && !first.is_ascii_digit() {
        return invalid("the name must start with a lowercase letter or digit");
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
    {
        return invalid("only lowercase ASCII letters, digits, `-` and `_` are allowed");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_rules() {
        for good in ["a", "taxi", "tenant-7", "a_b-c", "0day", &"x".repeat(64)] {
            assert!(validate_collection_name(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "Taxi",
            "-lead",
            "_lead",
            "sp ace",
            "dot.dot",
            "slash/",
            "..",
            &"x".repeat(65),
        ] {
            assert!(
                matches!(
                    validate_collection_name(bad),
                    Err(CatalogError::InvalidName { .. })
                ),
                "{bad:?} should be refused"
            );
        }
    }

    #[test]
    fn wrapped_errors_render_their_inner_message() {
        let e = CatalogError::from(PersistError::Corrupt { what: "w" });
        assert!(e.to_string().contains("catalog snapshot failure"));
        let e = CatalogError::from(UpdateError::UnknownId { id: 7 });
        assert!(e.to_string().contains("catalog mutation failure"));
    }
}
