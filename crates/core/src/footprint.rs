//! Deterministic deep-size accounting.
//!
//! The paper's Tables IV and VIII report resident memory of each index.
//! Instead of hooking the global allocator (noisy, allocator-dependent),
//! every index implements [`MemoryFootprint`] and reports the bytes of heap
//! memory it retains — capacity, not length, so over-allocation is visible.

/// Deep memory accounting: `heap_bytes` is retained heap memory,
/// `total_bytes` additionally counts the inline size of `self`.
pub trait MemoryFootprint {
    /// Bytes of heap memory retained by `self` (recursively).
    fn heap_bytes(&self) -> usize;

    /// `size_of_val(self) + heap_bytes()`.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of_val(self) + self.heap_bytes()
    }
}

/// Heap bytes retained by a `Vec` of plain-old-data elements
/// (elements themselves own no heap memory).
#[inline]
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes retained by a boxed slice of plain-old-data elements.
#[inline]
pub fn slice_bytes<T>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

impl<T> MemoryFootprint for Vec<T> {
    fn heap_bytes(&self) -> usize {
        vec_bytes(self)
    }
}

impl<T> MemoryFootprint for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of_val(&**self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_accounts_capacity_not_length() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        assert_eq!(v.heap_bytes(), 16 * 8);
        assert_eq!(v.total_bytes(), 16 * 8 + std::mem::size_of::<Vec<u64>>());
    }

    #[test]
    fn boxed_slice_accounts_exact_len() {
        let b: Box<[u32]> = vec![1, 2, 3].into_boxed_slice();
        assert_eq!(b.heap_bytes(), 12);
    }

    #[test]
    fn empty_vec_is_free() {
        let v: Vec<u128> = Vec::new();
        assert_eq!(v.heap_bytes(), 0);
    }
}
