//! The append-only write-ahead mutation log behind replication and
//! point-in-time recovery.
//!
//! A log file reuses the snapshot primitives from [`persist`]: the
//! standard header ([`MAGIC`](persist::MAGIC) /
//! [`FORMAT_VERSION`](persist::FORMAT_VERSION) / [`persist::ROLE_LOG`]),
//! then a CRC-framed *log manifest* section (the endpoint type name and
//! the sequence number the log starts at), then one CRC-framed section
//! per [`LogRecord`]. Records carry a **monotonically increasing
//! sequence number**, the collection name when the writer serves a
//! catalog (`None` under single-tenant backing), and the acked mutation
//! batch itself.
//!
//! The contract the replication tests pin:
//!
//! - **Log before apply, fsync before ack.** [`WalWriter::append`]
//!   writes the framed record and fsyncs it *before* the caller applies
//!   the batch, so every acked mutation is on disk even if the process
//!   dies immediately after the ack.
//! - **Recoverable tail, typed everything else.** [`read_log`] replays
//!   the longest valid prefix; whatever stopped the scan — a truncated
//!   record, a flipped CRC, a partial trailing frame, a future format
//!   version, an out-of-order sequence number — is reported as the
//!   exact [`ReplicationError`] / [`PersistError`] variant alongside the
//!   prefix, and [`WalWriter::recover`] truncates the file back to that
//!   prefix so the writer never appends after garbage.
//! - **Streamable.** [`WalTailer`] incrementally decodes records as a
//!   live writer appends them (a partial trailing frame means "wait",
//!   not "corrupt"), which is how a primary feeds its subscribers.

use crate::interval::GridEndpoint;
use crate::mutation::Mutation;
use crate::persist::{self, Codec, PersistError, Reader};
use std::fmt;
use std::fs::File;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};

/// File name of the checkpoint sidecar written next to a snapshot taken
/// by a log-keeping server (see [`write_checkpoint`]).
pub const CHECKPOINT_FILE: &str = "checkpoint.irs";

/// Why a replication operation could not proceed.
///
/// The replication twin of [`PersistError`]: typed variants with
/// payloads, a one-sentence `Display`, no panics on any decode path.
/// Log corruption surfaces as [`ReplicationError::Persist`] wrapping
/// the exact persistence variant, so callers branch on the root cause.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicationError {
    /// The log (or a snapshot it ships) failed to read or write; the
    /// wrapped variant says exactly how.
    Persist(PersistError),
    /// A log record's sequence number is not the successor of the
    /// previous record — the log was reordered or spliced.
    OutOfOrderSequence {
        /// The sequence number the scan expected next.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// The server is a following replica: mutations and snapshots-of
    /// -record are refused until it is promoted.
    ReadOnlyReplica,
    /// The request only makes sense against a log-keeping primary
    /// (subscribe, snapshot-fetch), but this server is not one.
    NotPrimary,
    /// `promote` was sent to a server that is not a following replica.
    NotReplica,
    /// The subscriber asked for a sequence number older than the log's
    /// first record — it must re-bootstrap from a snapshot instead.
    StaleSubscribe {
        /// The first sequence number the subscriber asked for.
        requested: u64,
        /// The sequence number the log actually starts at.
        start: u64,
    },
    /// The operation is not supported under replication (for example
    /// catalog DDL, which the mutation log cannot carry).
    Unsupported {
        /// Why, in one sentence.
        reason: &'static str,
    },
}

impl fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationError::Persist(inner) => write!(f, "replication log: {inner}"),
            ReplicationError::OutOfOrderSequence { expected, found } => write!(
                f,
                "log sequence out of order: expected {expected}, found {found}"
            ),
            ReplicationError::ReadOnlyReplica => {
                write!(f, "server is a read-only replica; promote it to accept writes")
            }
            ReplicationError::NotPrimary => {
                write!(f, "server is not a log-keeping primary")
            }
            ReplicationError::NotReplica => {
                write!(f, "server is not a following replica")
            }
            ReplicationError::StaleSubscribe { requested, start } => write!(
                f,
                "subscription from sequence {requested} predates the log (starts at {start}); re-bootstrap from a snapshot"
            ),
            ReplicationError::Unsupported { reason } => {
                write!(f, "unsupported under replication: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<PersistError> for ReplicationError {
    fn from(e: PersistError) -> Self {
        ReplicationError::Persist(e)
    }
}

/// One acked mutation batch, as logged.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord<E> {
    /// Monotonically increasing sequence number (no gaps within a log).
    pub seq: u64,
    /// Collection the batch targeted under catalog backing; `None` for
    /// a single-tenant server.
    pub collection: Option<String>,
    /// The batch, in the order the writer seat acked it.
    pub muts: Vec<Mutation<E>>,
}

impl<E: GridEndpoint> Codec for LogRecord<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.seq.encode_into(out);
        self.collection.encode_into(out);
        self.muts.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(LogRecord {
            seq: u64::decode(r)?,
            collection: Option::<String>::decode(r)?,
            muts: Vec::<Mutation<E>>::decode(r)?,
        })
    }
}

/// The result of scanning a log: the longest valid prefix plus, when
/// the scan did not reach a clean end of file, the exact error that
/// stopped it. A reader must not serve state past `records` — that is
/// the "recover to the last valid record" contract.
#[derive(Debug)]
pub struct WalReplay<E> {
    /// Sequence number the log starts at (from the log manifest).
    pub start_seq: u64,
    /// Every record in the valid prefix, in sequence order.
    pub records: Vec<LogRecord<E>>,
    /// Byte offset of the end of the valid prefix — the length
    /// [`WalWriter::recover`] truncates the file to.
    pub valid_bytes: u64,
    /// `None` if the scan reached a clean end of file; otherwise the
    /// typed reason it stopped (truncation, checksum flip, out-of-order
    /// sequence, …).
    pub stopped: Option<ReplicationError>,
}

impl<E> WalReplay<E> {
    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.start_seq.saturating_add(self.records.len() as u64)
    }

    /// The last sequence number in the valid prefix; `start_seq - 1`
    /// (saturating) when the log holds no records yet.
    pub fn last_seq(&self) -> u64 {
        self.next_seq().saturating_sub(1)
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> ReplicationError {
    ReplicationError::Persist(PersistError::io(path, e))
}

fn encode_log_header<E: GridEndpoint>(start_seq: u64) -> Vec<u8> {
    let mut out = Vec::new();
    persist::write_header(&mut out, persist::ROLE_LOG);
    persist::encode_section(&mut out, &(E::type_name().to_string(), start_seq));
    out
}

/// Decodes the header + log-manifest prefix, returning
/// `(start_seq, bytes_consumed)`.
fn read_log_header<E: GridEndpoint>(bytes: &[u8]) -> Result<(u64, usize), ReplicationError> {
    let mut r = Reader::new(bytes);
    persist::read_header(&mut r, persist::ROLE_LOG).map_err(ReplicationError::Persist)?;
    let (endpoint, start_seq): (String, u64) =
        persist::decode_section(&mut r, "log-manifest").map_err(ReplicationError::Persist)?;
    if endpoint != E::type_name() {
        return Err(ReplicationError::Persist(PersistError::EndpointMismatch {
            stored: endpoint,
            expected: E::type_name(),
        }));
    }
    Ok((start_seq, bytes.len() - r.remaining()))
}

/// Scans a log file, replaying the longest valid prefix.
///
/// Header-level failures (not a log file, future format version, wrong
/// endpoint type) are returned as `Err` — there is no prefix to
/// salvage. Record-level failures end the scan and are reported in
/// [`WalReplay::stopped`] next to the records that *did* decode.
pub fn read_log<E: GridEndpoint>(path: &Path) -> Result<WalReplay<E>, ReplicationError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, &e))?;
    let (start_seq, header_len) = read_log_header::<E>(&bytes)?;
    let total = bytes.len();
    let mut r = Reader::new(&bytes);
    // Re-consume the already-validated prefix.
    r.take(header_len).map_err(ReplicationError::Persist)?;
    let mut records: Vec<LogRecord<E>> = Vec::new();
    let mut valid = header_len as u64;
    let mut expected = start_seq;
    let mut stopped = None;
    while !r.is_empty() {
        match persist::decode_section::<LogRecord<E>>(&mut r, "log-record") {
            Err(e) => {
                stopped = Some(ReplicationError::Persist(e));
                break;
            }
            Ok(rec) => {
                if rec.seq != expected {
                    stopped = Some(ReplicationError::OutOfOrderSequence {
                        expected,
                        found: rec.seq,
                    });
                    break;
                }
                expected = expected.saturating_add(1);
                records.push(rec);
                valid = (total - r.remaining()) as u64;
            }
        }
    }
    Ok(WalReplay {
        start_seq,
        records,
        valid_bytes: valid,
        stopped,
    })
}

/// The writer seat's handle on the log: assigns sequence numbers,
/// appends framed records, and fsyncs each append before returning —
/// the fsync-on-ack half of the replication contract.
#[derive(Debug)]
pub struct WalWriter<E> {
    file: File,
    path: PathBuf,
    start_seq: u64,
    next_seq: u64,
    _endpoint: PhantomData<E>,
}

impl<E: GridEndpoint> WalWriter<E> {
    /// Creates (or truncates) a log starting at `start_seq` — sequence
    /// `1` for a fresh primary, `snapshot_seq + 1` for a replica
    /// bootstrapping from a snapshot. The header is fsynced before this
    /// returns.
    pub fn create(path: impl AsRef<Path>, start_seq: u64) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path).map_err(|e| PersistError::io(&path, &e))?;
        file.write_all(&encode_log_header::<E>(start_seq))
            .and_then(|()| file.sync_all())
            .map_err(|e| PersistError::io(&path, &e))?;
        Ok(WalWriter {
            file,
            path,
            start_seq,
            next_seq: start_seq,
            _endpoint: PhantomData,
        })
    }

    /// Opens an existing log for append, replaying its valid prefix and
    /// **truncating the file back to it** (so a torn final record from
    /// a crash mid-append is discarded, never appended after). A
    /// missing file becomes a fresh log starting at sequence `1`.
    ///
    /// The replay is returned so the caller can re-apply the surviving
    /// records and inspect [`WalReplay::stopped`].
    pub fn recover(path: impl AsRef<Path>) -> Result<(Self, WalReplay<E>), ReplicationError> {
        let path = path.as_ref().to_path_buf();
        if !path.exists() {
            let writer = Self::create(&path, 1).map_err(ReplicationError::Persist)?;
            let header = encode_log_header::<E>(1).len() as u64;
            return Ok((
                writer,
                WalReplay {
                    start_seq: 1,
                    records: Vec::new(),
                    valid_bytes: header,
                    stopped: None,
                },
            ));
        }
        let replay = read_log::<E>(&path)?;
        let mut file = File::options()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        file.set_len(replay.valid_bytes)
            .and_then(|()| file.sync_all())
            .and_then(|()| file.seek(SeekFrom::End(0)).map(|_| ()))
            .map_err(|e| io_err(&path, &e))?;
        let writer = WalWriter {
            file,
            path,
            start_seq: replay.start_seq,
            next_seq: replay.next_seq(),
            _endpoint: PhantomData,
        };
        Ok((writer, replay))
    }

    /// Appends one mutation batch as a framed record and fsyncs it.
    /// Returns the sequence number the record was assigned. Nothing may
    /// be acked — let alone applied — until this returns `Ok`.
    pub fn append(
        &mut self,
        collection: Option<&str>,
        muts: &[Mutation<E>],
    ) -> Result<u64, PersistError> {
        let seq = self.next_seq;
        let record = LogRecord {
            seq,
            collection: collection.map(str::to_string),
            muts: muts.to_vec(),
        };
        let mut frame = Vec::new();
        persist::encode_section(&mut frame, &record);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| PersistError::io(&self.path, &e))?;
        self.next_seq = seq.saturating_add(1);
        Ok(seq)
    }

    /// The sequence number the log starts at.
    pub fn start_seq(&self) -> u64 {
        self.start_seq
    }

    /// The sequence number the next [`append`](Self::append) will
    /// assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The last sequence number appended (and fsynced) so far;
    /// `start_seq - 1` (saturating) when nothing has been appended.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.saturating_sub(1)
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// An incremental reader over a log a live writer may still be
/// appending to: decodes complete records as they land, treats a
/// partial trailing frame as "not yet" rather than corruption, and
/// verifies CRC + sequence order on everything it emits. This is how a
/// primary streams its log to subscribers.
#[derive(Debug)]
pub struct WalTailer<E> {
    file: File,
    path: PathBuf,
    offset: u64,
    emit_from: u64,
    expected_seq: u64,
    _endpoint: PhantomData<E>,
}

impl<E: GridEndpoint> WalTailer<E> {
    /// Opens the log and positions after its manifest. Records with a
    /// sequence number below `from_seq` are decoded (and order-checked)
    /// but not emitted; a `from_seq` older than the log's start is a
    /// typed [`ReplicationError::StaleSubscribe`] refusal.
    pub fn open(path: impl AsRef<Path>, from_seq: u64) -> Result<Self, ReplicationError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, &e))?;
        let (start_seq, header_len) = read_log_header::<E>(&bytes)?;
        if from_seq < start_seq {
            return Err(ReplicationError::StaleSubscribe {
                requested: from_seq,
                start: start_seq,
            });
        }
        let file = File::open(&path).map_err(|e| io_err(&path, &e))?;
        Ok(WalTailer {
            file,
            path,
            offset: header_len as u64,
            emit_from: from_seq,
            expected_seq: start_seq,
            _endpoint: PhantomData,
        })
    }

    /// Decodes every *complete* record appended since the last poll,
    /// returning `(seq, framed payload bytes)` pairs for records at or
    /// past the subscription point. The payload bytes are exactly the
    /// record's section payload, so they re-frame onto the wire (and
    /// into a replica's own log) without re-encoding.
    pub fn poll(&mut self) -> Result<Vec<(u64, Vec<u8>)>, ReplicationError> {
        self.file
            .seek(SeekFrom::Start(self.offset))
            .map_err(|e| io_err(&self.path, &e))?;
        let mut buf = Vec::new();
        self.file
            .read_to_end(&mut buf)
            .map_err(|e| io_err(&self.path, &e))?;
        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            let rest = buf.get(consumed..).unwrap_or(&[]);
            if rest.is_empty() {
                break;
            }
            let Some(len_bytes) = rest.get(..8) else {
                break; // partial length prefix — wait for the writer
            };
            let mut len_arr = [0u8; 8];
            len_arr.copy_from_slice(len_bytes);
            let len = match usize::try_from(u64::from_le_bytes(len_arr)) {
                Ok(v) => v,
                Err(_) => {
                    return Err(ReplicationError::Persist(PersistError::Corrupt {
                        what: "log record length exceeds this host's address space",
                    }))
                }
            };
            let Some(total) = len.checked_add(12) else {
                return Err(ReplicationError::Persist(PersistError::Corrupt {
                    what: "log record length overflows its frame",
                }));
            };
            if rest.len() < total {
                break; // partial trailing frame — wait for the writer
            }
            let (payload, stored_crc) = match (rest.get(8..8 + len), rest.get(8 + len..total)) {
                (Some(p), Some(c)) => (p, c),
                _ => break,
            };
            let mut crc_arr = [0u8; 4];
            crc_arr.copy_from_slice(stored_crc);
            let stored = u32::from_le_bytes(crc_arr);
            let computed = persist::crc32(payload);
            if stored != computed {
                return Err(ReplicationError::Persist(PersistError::ChecksumMismatch {
                    section: "log-record",
                    stored,
                    computed,
                }));
            }
            let mut pr = Reader::new(payload);
            let rec = LogRecord::<E>::decode(&mut pr).map_err(ReplicationError::Persist)?;
            if !pr.is_empty() {
                return Err(ReplicationError::Persist(PersistError::Corrupt {
                    what: "section has trailing bytes after its value",
                }));
            }
            if rec.seq != self.expected_seq {
                return Err(ReplicationError::OutOfOrderSequence {
                    expected: self.expected_seq,
                    found: rec.seq,
                });
            }
            self.expected_seq = self.expected_seq.saturating_add(1);
            consumed += total;
            if rec.seq >= self.emit_from {
                out.push((rec.seq, payload.to_vec()));
            }
        }
        self.offset = self.offset.saturating_add(consumed as u64);
        Ok(out)
    }

    /// The sequence number the next emitted record will carry (records
    /// being skipped up to the subscription point count as emitted).
    pub fn next_seq(&self) -> u64 {
        self.expected_seq.max(self.emit_from)
    }
}

/// Decodes one streamed log-record payload (as produced by
/// [`WalTailer::poll`] and shipped in a log-record wire frame),
/// verifying it is exactly one record.
pub fn decode_record_payload<E: GridEndpoint>(
    payload: &[u8],
) -> Result<LogRecord<E>, PersistError> {
    let mut r = Reader::new(payload);
    let rec = LogRecord::<E>::decode(&mut r)?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "section has trailing bytes after its value",
        });
    }
    Ok(rec)
}

/// Writes the checkpoint sidecar into a snapshot directory: the last
/// log sequence number reflected in that snapshot. A bootstrap loads
/// the snapshot, reads the checkpoint, and replays the log strictly
/// after it — point-in-time recovery is the same walk with a shorter
/// log prefix.
pub fn write_checkpoint(dir: &Path, seq: u64) -> Result<(), PersistError> {
    let mut out = Vec::new();
    persist::write_header(&mut out, persist::ROLE_LOG);
    persist::encode_section(&mut out, &seq);
    persist::write_file_atomic(&dir.join(CHECKPOINT_FILE), &out)
}

/// Reads the checkpoint sidecar; `Ok(None)` when the directory has
/// none (a snapshot taken by a server that kept no log).
pub fn read_checkpoint(dir: &Path) -> Result<Option<u64>, PersistError> {
    let path = dir.join(CHECKPOINT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PersistError::io(&path, &e)),
    };
    let mut r = Reader::new(&bytes);
    persist::read_header(&mut r, persist::ROLE_LOG)?;
    let seq = persist::decode_section::<u64>(&mut r, "checkpoint")?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "checkpoint has trailing bytes after its value",
        });
    }
    Ok(Some(seq))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("irs-wal-{tag}-{}.irs", std::process::id()))
    }

    fn batch(lo: i64) -> Vec<Mutation<i64>> {
        vec![
            Mutation::Insert {
                iv: Interval::new(lo, lo + 10),
            },
            Mutation::Delete { id: lo as u32 },
        ]
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::<i64>::create(&path, 1).unwrap();
        assert_eq!(w.append(None, &batch(0)).unwrap(), 1);
        assert_eq!(w.append(Some("taxi"), &batch(5)).unwrap(), 2);
        assert_eq!(w.next_seq(), 3);
        let replay = read_log::<i64>(&path).unwrap();
        assert_eq!(replay.start_seq, 1);
        assert_eq!(replay.records.len(), 2);
        assert!(replay.stopped.is_none());
        assert_eq!(replay.records[0].seq, 1);
        assert_eq!(replay.records[0].collection, None);
        assert_eq!(replay.records[1].collection.as_deref(), Some("taxi"));
        assert_eq!(replay.records[1].muts, batch(5));
        assert_eq!(replay.next_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_truncates_torn_tail_and_appends_cleanly() {
        let path = temp_path("torn");
        let mut w = WalWriter::<i64>::create(&path, 1).unwrap();
        w.append(None, &batch(0)).unwrap();
        w.append(None, &batch(1)).unwrap();
        drop(w);
        // Tear the final record: drop its last 3 bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        let (mut w, replay) = WalWriter::<i64>::recover(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(matches!(
            replay.stopped,
            Some(ReplicationError::Persist(PersistError::Truncated { .. }))
        ));
        assert_eq!(w.next_seq(), 2);
        w.append(None, &batch(9)).unwrap();
        let replay = read_log::<i64>(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.stopped.is_none());
        assert_eq!(replay.records[1].muts, batch(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tailer_streams_and_waits_on_partial_frames() {
        let path = temp_path("tail");
        let mut w = WalWriter::<i64>::create(&path, 4).unwrap();
        w.append(None, &batch(0)).unwrap(); // seq 4
        w.append(None, &batch(1)).unwrap(); // seq 5
        let mut t = WalTailer::<i64>::open(&path, 5).unwrap();
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 5);
        let rec = decode_record_payload::<i64>(&got[0].1).unwrap();
        assert_eq!(rec.muts, batch(1));
        assert!(t.poll().unwrap().is_empty());
        w.append(None, &batch(2)).unwrap(); // seq 6
        let got = t.poll().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 6);
        // Subscribing before the log's start is a typed refusal.
        assert!(matches!(
            WalTailer::<i64>::open(&path, 3),
            Err(ReplicationError::StaleSubscribe {
                requested: 3,
                start: 4
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn endpoint_mismatch_is_typed() {
        let path = temp_path("endpoint");
        let mut w = WalWriter::<i64>::create(&path, 1).unwrap();
        w.append(None, &batch(0)).unwrap();
        assert!(matches!(
            read_log::<u32>(&path),
            Err(ReplicationError::Persist(
                PersistError::EndpointMismatch { .. }
            ))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = std::env::temp_dir().join(format!("irs-wal-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), None);
        write_checkpoint(&dir, 41).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap(), Some(41));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
