//! Dataset-level helpers shared by the index structures.

use crate::interval::{Endpoint, Interval, ItemId};

/// Returns `(min lo, max hi)` over the dataset, or `None` if it is empty.
///
/// This is the "domain" the paper's query generator draws from.
pub fn domain_bounds<E: Endpoint>(data: &[Interval<E>]) -> Option<(E, E)> {
    let first = data.first()?;
    let mut lo = first.lo;
    let mut hi = first.hi;
    for iv in &data[1..] {
        if iv.lo < lo {
            lo = iv.lo;
        }
        if iv.hi > hi {
            hi = iv.hi;
        }
    }
    Some((lo, hi))
}

/// Ids of `data` in *pair-sort* order: ascending left endpoint, ties broken
/// by ascending right endpoint (§III-C of the paper; this is the order
/// AIT-V buckets along, approximating a z-curve over `(lo, hi)` space).
pub fn pair_sort_indices<E: Endpoint>(data: &[Interval<E>]) -> Vec<ItemId> {
    let mut ids: Vec<ItemId> = (0..data.len() as ItemId).collect();
    ids.sort_unstable_by_key(|&i| {
        let iv = &data[i as usize];
        (iv.lo, iv.hi)
    });
    ids
}

/// The dataset's intervals in pair-sort order (copy; see
/// [`pair_sort_indices`] to keep ids instead).
pub fn pair_sorted<E: Endpoint>(data: &[Interval<E>]) -> Vec<Interval<E>> {
    let mut sorted = data.to_vec();
    sorted.sort_unstable_by_key(|iv| (iv.lo, iv.hi));
    sorted
}

/// Total weight of a materialized candidate set: `Σ weights[id]`, or one
/// per candidate when `weights` is `None` (the uniform convention used
/// throughout the workspace). Shared by the enumeration-based samplers'
/// `total_weight` accessors.
pub fn candidates_weight(candidates: &[ItemId], weights: Option<&[f64]>) -> f64 {
    match weights {
        None => candidates.len() as f64,
        Some(w) => candidates.iter().map(|&id| w[id as usize]).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    #[test]
    fn domain_bounds_covers_all_endpoints() {
        let data = vec![iv(5, 9), iv(-3, 1), iv(0, 42)];
        assert_eq!(domain_bounds(&data), Some((-3, 42)));
        assert_eq!(domain_bounds::<i64>(&[]), None);
    }

    #[test]
    fn pair_sort_orders_by_lo_then_hi() {
        let data = vec![iv(2, 9), iv(0, 5), iv(2, 3), iv(0, 1)];
        let ids = pair_sort_indices(&data);
        assert_eq!(ids, vec![3, 1, 2, 0]);
        let sorted = pair_sorted(&data);
        assert_eq!(sorted, vec![iv(0, 1), iv(0, 5), iv(2, 3), iv(2, 9)]);
    }

    #[test]
    fn pair_sort_is_permutation() {
        let data = vec![iv(1, 2), iv(1, 2), iv(0, 7)];
        let ids = pair_sort_indices(&data);
        let mut seen = ids.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
