//! Closed intervals over ordered scalar endpoints.

use std::fmt;

/// Identifier of an interval inside the dataset slice an index was built
/// from: `id = i` refers to `data[i as usize]`.
///
/// `u32` bounds datasets at ~4.29 billion intervals, far beyond the paper's
/// largest dataset (Taxi, 106.7M), and halves the id-array footprint
/// compared with `usize` on 64-bit targets.
pub type ItemId = u32;

/// Scalar endpoint type: any totally ordered `Copy` value.
///
/// Index construction and querying only ever *compare* endpoints, so no
/// arithmetic is required here. Structures that need arithmetic on the
/// domain (HINTm's bit-prefix hierarchy) additionally require
/// [`GridEndpoint`].
pub trait Endpoint: Copy + Ord + fmt::Debug + Send + Sync + 'static {}

impl<T: Copy + Ord + fmt::Debug + Send + Sync + 'static> Endpoint for T {}

/// Endpoints that embed into an unsigned integer grid, required by HINTm.
///
/// `grid_offset(min)` must be the number of representable values between
/// `min` and `self` (`self ≥ min`), i.e. a strictly monotone mapping of the
/// domain onto `0..=u64::MAX`.
///
/// `GridEndpoint` also requires [`crate::persist::Codec`]: every
/// endpoint type an engine can be built over must have a stable on-disk
/// encoding, so any engine (and any index behind the `DynIndex` facade)
/// can be snapshotted. All integer scalar types qualify.
pub trait GridEndpoint: Endpoint + crate::persist::Codec {
    /// Distance from `min` to `self` on the integer grid. `self` must not be
    /// smaller than `min`.
    fn grid_offset(self, min: Self) -> u64;
}

macro_rules! impl_grid_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl GridEndpoint for $t {
            #[inline]
            fn grid_offset(self, min: Self) -> u64 {
                debug_assert!(self >= min, "grid_offset: value below domain min");
                (self as $u).wrapping_sub(min as $u) as u64
            }
        }
    )*};
}
macro_rules! impl_grid_unsigned {
    ($($t:ty),*) => {$(
        impl GridEndpoint for $t {
            #[inline]
            fn grid_offset(self, min: Self) -> u64 {
                debug_assert!(self >= min, "grid_offset: value below domain min");
                (self - min) as u64
            }
        }
    )*};
}
impl_grid_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);
impl_grid_unsigned!(u8, u16, u32, u64, usize);

/// A closed interval `[lo, hi]` with `lo ≤ hi`.
///
/// This is the paper's `x = [x.l, x.r]`; queries are intervals too. The
/// type is `#[repr(C)]` and two scalars wide, so sorted interval lists are
/// cache-dense.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(C)]
pub struct Interval<E> {
    /// Left endpoint (`x.l`).
    pub lo: E,
    /// Right endpoint (`x.r`).
    pub hi: E,
}

/// Interval over `i64` endpoints, the concrete type used by the examples,
/// generators, and benchmarks.
pub type Interval64 = Interval<i64>;

impl<E: Endpoint> Interval<E> {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: E, hi: E) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: {lo:?} > {hi:?}");
        Self { lo, hi }
    }

    /// Creates `[p, p]`, the degenerate interval of a stabbing query.
    #[inline]
    pub fn point(p: E) -> Self {
        Self { lo: p, hi: p }
    }

    /// The overlap predicate of the paper:
    /// `x ∩ q  ⇔  (x.lo ≤ q.hi) ∧ (q.lo ≤ x.hi)`.
    ///
    /// Closed on both sides, so touching endpoints overlap.
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Whether `p` lies inside `[lo, hi]` (a stabbing test).
    #[inline]
    pub fn contains_point(&self, p: E) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }
}

impl<E: fmt::Debug> fmt::Debug for Interval<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}, {:?}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_closed() {
        let a = Interval::new(0i64, 10);
        let b = Interval::new(10, 20);
        let c = Interval::new(11, 20);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    fn degenerate_intervals_overlap_like_points() {
        let p = Interval::point(5i64);
        assert!(p.overlaps(&Interval::new(0, 5)));
        assert!(p.overlaps(&Interval::new(5, 9)));
        assert!(!p.overlaps(&Interval::new(6, 9)));
        assert!(p.contains_point(5));
        assert!(!p.contains_point(4));
    }

    #[test]
    fn containment() {
        let outer = Interval::new(0i64, 100);
        assert!(outer.contains(&Interval::new(0, 100)));
        assert!(outer.contains(&Interval::new(10, 90)));
        assert!(!outer.contains(&Interval::new(-1, 50)));
        assert!(!outer.contains(&Interval::new(50, 101)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_endpoints_panic() {
        let _ = Interval::new(3i64, 2);
    }

    #[test]
    fn grid_offset_signed_spans_zero() {
        assert_eq!((5i64).grid_offset(-5), 10);
        assert_eq!(i64::MAX.grid_offset(i64::MIN), u64::MAX);
        assert_eq!(0i32.grid_offset(0), 0);
    }

    #[test]
    fn grid_offset_unsigned() {
        assert_eq!(7u32.grid_offset(2), 5);
        assert_eq!(u64::MAX.grid_offset(0), u64::MAX);
    }
}
