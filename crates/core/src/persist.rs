//! Durable, versioned snapshots: the hand-rolled binary codec every
//! index structure (and the sharded engine) persists itself through.
//!
//! The workspace is offline, so there is no serde and no external
//! format crate — the codec here is deliberately small and fully
//! specified (see `DESIGN.md`, "On-disk snapshot format"):
//!
//! - **Endian-fixed primitives.** Every scalar is written little-endian
//!   at a fixed width ([`Codec`] impls for the integer endpoint types,
//!   `f64` via its IEEE-754 bit pattern, `bool` as one byte, `usize`
//!   as `u64` so snapshots move between 32- and 64-bit hosts).
//! - **Length-prefixed composites.** `Vec<T>`, tuples, `Option<T>`,
//!   and [`Interval`] compose structurally; decoding validates lengths
//!   against the bytes actually remaining, so a corrupt length yields
//!   [`PersistError::Truncated`], never an allocation blow-up.
//! - **Framed sections.** A snapshot file is a fixed header
//!   ([`MAGIC`], [`FORMAT_VERSION`], a role byte) followed by sections,
//!   each `u64` payload length + payload + CRC-32 ([`crc32`]) of the
//!   payload. [`write_section`] / [`read_section`] implement the frame;
//!   a flipped payload byte surfaces as
//!   [`PersistError::ChecksumMismatch`] before any structural decoding
//!   runs.
//! - **Typed failures.** Everything is fallible into [`PersistError`],
//!   following the same taxonomy conventions as
//!   [`QueryError`](crate::QueryError) /
//!   [`BuildError`](crate::BuildError): variants carry payloads, display
//!   one-sentence diagnostics, and nothing on the decode path panics —
//!   corruption tests pin truncation, bad magic, checksum flips, and
//!   future versions each to their variant.
//!
//! Index structures implement [`Codec`] next to their definitions (the
//! layouts are part of the format spec); `irs-engine` and `irs-client`
//! build their `save(dir)` / `load(dir)` manifests on top.

use crate::interval::{Endpoint, Interval};
use std::fmt;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"IRSSNAP\0";

/// Current on-disk format version. Decoders accept exactly this version
/// (the format promises compatibility *within* a version; a bump means
/// the layout changed and old readers must refuse, not misread).
pub const FORMAT_VERSION: u16 = 1;

/// File role byte: the engine/client manifest.
pub const ROLE_MANIFEST: u8 = 0x01;
/// File role byte: one shard's index snapshot.
pub const ROLE_SHARD: u8 = 0x02;
/// File role byte: the catalog manifest covering every collection
/// (`irs-catalog`'s `catalog.irs`).
pub const ROLE_CATALOG: u8 = 0x03;
/// File role byte: the append-only write-ahead mutation log (and its
/// checkpoint sidecar) defined in [`wal`](crate::wal).
pub const ROLE_LOG: u8 = 0x04;

/// Why a snapshot could not be written or read back.
///
/// The persistence twin of [`QueryError`](crate::QueryError) /
/// [`BuildError`](crate::BuildError): typed variants with payloads, a
/// one-sentence `Display`, and no panics on any decode path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// The operating system refused a file operation.
    Io {
        /// The file (or directory) the operation targeted.
        path: String,
        /// The OS error kind.
        kind: std::io::ErrorKind,
    },
    /// The file does not start with [`MAGIC`] — it is not a snapshot
    /// (or its header was overwritten).
    BadMagic {
        /// The eight bytes actually found.
        found: [u8; 8],
    },
    /// The snapshot was written by a different (usually newer) format
    /// version than this build can decode.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u16,
        /// Version this build reads and writes.
        supported: u16,
    },
    /// A section's stored CRC-32 does not match its payload — the bytes
    /// were corrupted after writing.
    ChecksumMismatch {
        /// Which section failed (e.g. `"manifest"`, `"index"`).
        section: &'static str,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload actually read.
        computed: u32,
    },
    /// The file ended before the declared data did (a partial write or
    /// a truncation).
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The bytes passed framing and checksum but violate the format's
    /// structural invariants (an impossible enum tag, an out-of-range
    /// child index, endpoints out of order).
    Corrupt {
        /// Which invariant failed, in one phrase.
        what: &'static str,
    },
    /// The manifest names an index kind this build does not know.
    UnknownKind {
        /// The kind name found in the manifest.
        name: String,
    },
    /// The snapshot was written for a different endpoint type than the
    /// one it is being loaded as (e.g. saved as `i64`, loaded as `u32`)
    /// — decoding would misread every scalar.
    EndpointMismatch {
        /// Endpoint type name stored in the manifest.
        stored: String,
        /// Endpoint type name of the loading code.
        expected: &'static str,
    },
    /// A shard file disagrees with the manifest it was loaded under
    /// (different kind, shard id, shard count, or weighted flag) — the
    /// directory mixes snapshots.
    ManifestMismatch {
        /// Which field disagreed.
        what: &'static str,
    },
    /// The backend cannot snapshot itself (an out-of-tree `DynIndex`
    /// that never implemented the snapshot surface).
    Unsupported {
        /// Why, in one sentence.
        reason: &'static str,
    },
}

impl PersistError {
    /// Wraps an OS error with the path it occurred on.
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> Self {
        PersistError::Io {
            path: path.display().to_string(),
            kind: err.kind(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, kind } => write!(f, "i/o error on `{path}`: {kind}"),
            PersistError::BadMagic { found } => {
                write!(f, "not a snapshot file: bad magic {found:02x?}")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads {supported})"
            ),
            PersistError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in section `{section}`: stored {stored:#010x}, computed {computed:#010x}"
            ),
            PersistError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, found {remaining}"
            ),
            PersistError::Corrupt { what } => write!(f, "snapshot corrupt: {what}"),
            PersistError::UnknownKind { name } => {
                write!(f, "snapshot names unknown index kind `{name}`")
            }
            PersistError::EndpointMismatch { stored, expected } => write!(
                f,
                "endpoint type mismatch: snapshot holds `{stored}`, loading as `{expected}`"
            ),
            PersistError::ManifestMismatch { what } => {
                write!(f, "shard file disagrees with manifest: {what}")
            }
            PersistError::Unsupported { reason } => {
                write!(f, "snapshot unsupported: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// A cursor over a byte buffer being decoded. Every read is
/// bounds-checked into [`PersistError::Truncated`].
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let out =
            self.buf
                .get(self.pos..self.pos.saturating_add(n))
                .ok_or(PersistError::Truncated {
                    needed: n,
                    remaining: self.remaining(),
                })?;
        self.pos += n;
        Ok(out)
    }

    /// Consumes a fixed-width array.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

/// A value with a stable little-endian byte encoding.
///
/// Implementations must be *self-framing*: `decode` consumes exactly
/// the bytes `encode_into` produced, so codecs compose by
/// concatenation. Encoding is infallible (it only appends to a buffer);
/// decoding is fallible into [`PersistError`] and must validate its
/// structural invariants rather than trust the bytes.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes one value, consuming its bytes from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError>;

    /// Stable name of the type, stamped into manifests so a snapshot
    /// cannot be decoded as a different scalar of the same width.
    /// Composites keep the default; only the scalar endpoint types
    /// override it.
    fn type_name() -> &'static str {
        "composite"
    }
}

macro_rules! impl_codec_int {
    ($($t:ty => $name:literal),*) => {$(
        impl Codec for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }

            fn type_name() -> &'static str {
                $name
            }
        }
    )*};
}

impl_codec_int!(
    u8 => "u8", u16 => "u16", u32 => "u32", u64 => "u64",
    i8 => "i8", i16 => "i16", i32 => "i32", i64 => "i64"
);

// `usize`/`isize` travel as 8 bytes so snapshots are portable across
// word sizes; decoding on a 32-bit host rejects out-of-range values.
impl Codec for usize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as u64).encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        usize::try_from(u64::decode(r)?).map_err(|_| PersistError::Corrupt {
            what: "length exceeds this host's address space",
        })
    }

    fn type_name() -> &'static str {
        "usize"
    }
}

impl Codec for isize {
    fn encode_into(&self, out: &mut Vec<u8>) {
        (*self as i64).encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        isize::try_from(i64::decode(r)?).map_err(|_| PersistError::Corrupt {
            what: "value exceeds this host's address space",
        })
    }

    fn type_name() -> &'static str {
        "isize"
    }
}

impl Codec for f64 {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.to_bits().encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }

    fn type_name() -> &'static str {
        "f64"
    }
}

impl Codec for bool {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Corrupt {
                what: "boolean byte is neither 0 nor 1",
            }),
        }
    }
}

impl Codec for String {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.len().encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupt {
            what: "string is not valid UTF-8",
        })
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.len().encode_into(out);
        for item in self {
            item.encode_into(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let len = usize::decode(r)?;
        // Every element encodes to ≥ 1 byte, so a length beyond the
        // remaining bytes is corrupt — checked *before* reserving, so a
        // forged length cannot force a huge allocation.
        if len > r.remaining() {
            return Err(PersistError::Truncated {
                needed: len,
                remaining: r.remaining(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(PersistError::Corrupt {
                what: "option tag is neither 0 nor 1",
            }),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<E: Endpoint + Codec> Codec for Interval<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.lo.encode_into(out);
        self.hi.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let lo = E::decode(r)?;
        let hi = E::decode(r)?;
        if lo > hi {
            return Err(PersistError::Corrupt {
                what: "interval endpoints out of order",
            });
        }
        Ok(Interval { lo, hi })
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes`.
///
/// Table-driven, one table built at first use. This is an integrity
/// check against torn writes and bit rot, not an authenticity check.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        // audit: allow(no-index): index is masked with & 0xFF into a 256-entry table
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends the file header: [`MAGIC`], [`FORMAT_VERSION`], and the
/// file's role byte ([`ROLE_MANIFEST`] / [`ROLE_SHARD`]).
pub fn write_header(out: &mut Vec<u8>, role: u8) {
    out.extend_from_slice(&MAGIC);
    FORMAT_VERSION.encode_into(out);
    out.push(role);
}

/// Validates the file header, returning the format version actually
/// read — or an error naming exactly what is wrong: not a snapshot
/// ([`PersistError::BadMagic`]), a future format
/// ([`PersistError::UnsupportedVersion`]), or the wrong file role
/// ([`PersistError::Corrupt`]).
pub fn read_header(r: &mut Reader<'_>, role: u8) -> Result<u16, PersistError> {
    let found: [u8; 8] = r.take_array()?;
    if found != MAGIC {
        return Err(PersistError::BadMagic { found });
    }
    let version = u16::decode(r)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if u8::decode(r)? != role {
        return Err(PersistError::Corrupt {
            what: "file role byte does not match its expected role",
        });
    }
    Ok(version)
}

/// Writes `bytes` to `path` atomically and durably: the bytes land in
/// a sibling temporary file, are fsynced, and are renamed over the
/// target (with a best-effort fsync of the parent directory), so a
/// crash — even a power loss — never leaves a truncated file at `path`
/// (the previous file, if any, survives intact).
pub fn write_file_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), PersistError> {
    use std::io::Write;
    let tmp = path.with_extension("irs.tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, &e))?;
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(|e| PersistError::io(&tmp, &e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| PersistError::io(path, &e))?;
    // Persist the rename itself. Directory fsync is a Unix notion;
    // where the open fails (or the platform has no directory handles),
    // the rename's atomicity still holds — only power-loss durability
    // of the *rename* is best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Validates an arena link: `link` must be the `u32::MAX` nil sentinel
/// (shared by every tree codec in the workspace) or a valid index into
/// an arena of `nodes` entries. The one place the rule lives, so the
/// per-structure decoders cannot drift.
pub fn check_arena_link(link: u32, nodes: usize, what: &'static str) -> Result<(), PersistError> {
    if link != u32::MAX && link as usize >= nodes {
        return Err(PersistError::Corrupt { what });
    }
    Ok(())
}

/// Appends one framed section: `u64` payload length, the payload, and
/// the payload's [`crc32`].
pub fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    payload.len().encode_into(out);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads one framed section, verifying its CRC before returning the
/// payload. `section` names the section in error payloads.
pub fn read_section<'a>(
    r: &mut Reader<'a>,
    section: &'static str,
) -> Result<&'a [u8], PersistError> {
    let len = usize::decode(r)?;
    let payload = r.take(len)?;
    let stored = u32::from_le_bytes(r.take_array()?);
    let computed = crc32(payload);
    if stored != computed {
        return Err(PersistError::ChecksumMismatch {
            section,
            stored,
            computed,
        });
    }
    Ok(payload)
}

/// Encodes `value` and frames it as one section in a single call.
pub fn encode_section<T: Codec>(out: &mut Vec<u8>, value: &T) {
    let mut payload = Vec::new();
    value.encode_into(&mut payload);
    write_section(out, &payload);
}

/// Reads one framed section and decodes `T` from its entire payload
/// (trailing bytes inside the section are corrupt).
pub fn decode_section<T: Codec>(
    r: &mut Reader<'_>,
    section: &'static str,
) -> Result<T, PersistError> {
    let payload = read_section(r, section)?;
    let mut pr = Reader::new(payload);
    let value = T::decode(&mut pr)?;
    if !pr.is_empty() {
        return Err(PersistError::Corrupt {
            what: "section has trailing bytes after its value",
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        42u8.encode_into(&mut buf);
        0xBEEFu16.encode_into(&mut buf);
        (-7i64).encode_into(&mut buf);
        3.25f64.encode_into(&mut buf);
        true.encode_into(&mut buf);
        usize::MAX.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u16::decode(&mut r).unwrap(), 0xBEEF);
        assert_eq!(i64::decode(&mut r).unwrap(), -7);
        assert_eq!(f64::decode(&mut r).unwrap(), 3.25);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(usize::decode(&mut r).unwrap(), usize::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn composites_roundtrip() {
        let v: Vec<(u32, f64)> = vec![(1, 1.5), (2, -0.25)];
        let o: Option<Vec<i64>> = Some(vec![-1, 0, 1]);
        let iv = Interval::new(-5i64, 9);
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        o.encode_into(&mut buf);
        iv.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(Vec::<(u32, f64)>::decode(&mut r).unwrap(), v);
        assert_eq!(Option::<Vec<i64>>::decode(&mut r).unwrap(), o);
        assert_eq!(Interval::<i64>::decode(&mut r).unwrap(), iv);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].encode_into(&mut buf);
        buf.truncate(buf.len() - 3);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn forged_length_cannot_allocate() {
        let mut buf = Vec::new();
        u64::MAX.encode_into(&mut buf); // a Vec claiming 2^64−1 elements
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Vec::<u8>::decode(&mut r),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn reversed_interval_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        9i64.encode_into(&mut buf);
        (-5i64).encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(
            Interval::<i64>::decode(&mut r),
            Err(PersistError::Corrupt {
                what: "interval endpoints out of order"
            })
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sections_detect_flips_and_headers_detect_versions() {
        let mut file = Vec::new();
        write_header(&mut file, ROLE_MANIFEST);
        encode_section(&mut file, &vec![7u64, 8, 9]);

        // Clean read.
        let mut r = Reader::new(&file);
        read_header(&mut r, ROLE_MANIFEST).unwrap();
        assert_eq!(
            decode_section::<Vec<u64>>(&mut r, "test").unwrap(),
            vec![7, 8, 9]
        );

        // Flip one payload byte → checksum mismatch.
        let mut bad = file.clone();
        let flip = bad.len() - 8; // inside the payload, before the CRC
        bad[flip] ^= 0xFF;
        let mut r = Reader::new(&bad);
        read_header(&mut r, ROLE_MANIFEST).unwrap();
        assert!(matches!(
            decode_section::<Vec<u64>>(&mut r, "test"),
            Err(PersistError::ChecksumMismatch {
                section: "test",
                ..
            })
        ));

        // Future version → typed refusal.
        let mut future = file.clone();
        future[8] = 0xFF;
        future[9] = 0xFF;
        let mut r = Reader::new(&future);
        assert_eq!(
            read_header(&mut r, ROLE_MANIFEST),
            Err(PersistError::UnsupportedVersion {
                found: 0xFFFF,
                supported: FORMAT_VERSION
            })
        );

        // Wrong magic → typed refusal.
        let mut nonsnap = file;
        nonsnap[0] = b'X';
        let mut r = Reader::new(&nonsnap);
        assert!(matches!(
            read_header(&mut r, ROLE_MANIFEST),
            Err(PersistError::BadMagic { .. })
        ));
    }
}
