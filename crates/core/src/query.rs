//! The fallible query vocabulary: typed errors and capability metadata.
//!
//! Every query surface in the workspace — the single-index structures
//! behind `irs-client`'s monolithic backend, and the sharded
//! `irs-engine` — reports failures through one taxonomy instead of
//! panics or stringly-typed sentinels:
//!
//! - [`QueryError`] — why one *query* could not be answered. An **empty
//!   result set is not an error**: sampling an empty `q ∩ X` yields
//!   `Ok` with an empty sample vector, and counting it yields `Ok(0)`.
//!   Errors are reserved for operations the backend genuinely cannot
//!   serve ([`QueryError::UnsupportedOperation`],
//!   [`QueryError::NotWeighted`]) and for infrastructure failures
//!   ([`QueryError::ShardFailed`]).
//! - [`BuildError`] — why an index, engine, or client could not be
//!   *constructed*, chiefly weight-validation failures caught up front
//!   (see [`validate_weights`]) so bad weights never corrupt alias
//!   tables or cumulative arrays downstream.
//! - [`Capabilities`] — which [`Operation`]s a backend supports, as
//!   queryable metadata. Callers can branch on
//!   [`Capabilities::supports`] instead of probing with a query and
//!   matching on the error.

use std::fmt;

/// One operation a query surface may (or may not) support.
///
/// [`Capabilities`] reports support per operation; [`QueryError`]
/// carries the operation that failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Uniform independent range sampling (the paper's Problem 1).
    UniformSample,
    /// Weighted independent range sampling (the paper's Problem 2).
    WeightedSample,
    /// Exact result-set counting, `|q ∩ X|`.
    Count,
    /// Full result-set enumeration.
    Search,
    /// Stabbing: all intervals containing a point.
    Stab,
    /// In-place insertion/deletion after construction.
    Update,
}

impl Operation {
    /// All operations, for capability matrices and property tests.
    pub const ALL: [Operation; 6] = [
        Operation::UniformSample,
        Operation::WeightedSample,
        Operation::Count,
        Operation::Search,
        Operation::Stab,
        Operation::Update,
    ];

    /// Stable lowercase name (log/JSON field value).
    pub fn name(self) -> &'static str {
        match self {
            Operation::UniformSample => "uniform-sample",
            Operation::WeightedSample => "weighted-sample",
            Operation::Count => "count",
            Operation::Search => "search",
            Operation::Stab => "stab",
            Operation::Update => "update",
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a query backend can do, as queryable metadata.
///
/// Reported per structure (each `IndexKind` × whether weights were
/// supplied at build time) by `irs-engine` and `irs-client`, replacing
/// the old doc-comment fallback table. The contract, pinned by the
/// workspace's capability property tests: an operation claimed here
/// succeeds, and an operation denied here fails with
/// [`QueryError::UnsupportedOperation`] / [`QueryError::NotWeighted`]
/// — never with a panic or a silently wrong answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Capabilities {
    /// Uniform IRS ([`Operation::UniformSample`]).
    pub uniform_sample: bool,
    /// Weighted IRS ([`Operation::WeightedSample`]).
    pub weighted_sample: bool,
    /// Exact counting ([`Operation::Count`]). Always exact when
    /// supported; structures without a counting substructure may pay an
    /// enumeration (AIT-V) but never approximate.
    pub exact_count: bool,
    /// Full enumeration ([`Operation::Search`]).
    pub search: bool,
    /// Stabbing queries ([`Operation::Stab`]).
    pub stab: bool,
    /// Post-construction updates ([`Operation::Update`]).
    pub update: bool,
}

impl Capabilities {
    /// Whether `op` is claimed supported.
    pub fn supports(self, op: Operation) -> bool {
        match op {
            Operation::UniformSample => self.uniform_sample,
            Operation::WeightedSample => self.weighted_sample,
            Operation::Count => self.exact_count,
            Operation::Search => self.search,
            Operation::Stab => self.stab,
            Operation::Update => self.update,
        }
    }

    /// The supported subset of [`Operation::ALL`].
    pub fn supported_ops(self) -> impl Iterator<Item = Operation> {
        Operation::ALL
            .into_iter()
            .filter(move |&op| self.supports(op))
    }
}

/// Why one query could not be answered.
///
/// An empty result set is **not** an error — see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The backend's index structure cannot serve this operation at
    /// all, regardless of how it was built (e.g. weighted sampling on
    /// an AIT, or updates on a static snapshot). `reason` says why in
    /// one sentence.
    UnsupportedOperation {
        /// The operation that was requested.
        op: Operation,
        /// Why this backend cannot serve it.
        reason: &'static str,
    },
    /// Weighted sampling was requested from a backend built without
    /// per-interval weights (or whose weights the structure discards).
    /// Rebuild with weights to enable [`Operation::WeightedSample`].
    NotWeighted,
    /// A shard worker died (its thread panicked or its channel closed)
    /// before answering. The batch's results cannot be trusted, so
    /// every query in the affected batch reports this error; subsequent
    /// batches on the same engine keep reporting it rather than
    /// silently dropping the dead shard's data.
    ShardFailed {
        /// The shard whose worker was first observed dead.
        shard: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnsupportedOperation { op, reason } => {
                write!(f, "unsupported operation `{op}`: {reason}")
            }
            QueryError::NotWeighted => write!(
                f,
                "weighted sampling requested, but the backend was built without weights"
            ),
            QueryError::ShardFailed { shard } => {
                write!(f, "shard {shard} failed: its worker thread died")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Why an index, engine, or client could not be constructed.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// `weights.len()` does not match the dataset length.
    WeightCountMismatch {
        /// Number of intervals supplied.
        data: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A weight is not a positive finite number (NaN, ±∞, zero, or
    /// negative). Caught before any structure is built, so bad weights
    /// can never corrupt alias tables or cumulative arrays.
    InvalidWeight {
        /// Index of the offending weight in the input slice.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A shard worker died while building its index. The dataset is
    /// released and no engine is returned.
    ShardDied {
        /// The shard whose builder thread was first observed dead.
        shard: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::WeightCountMismatch { data, weights } => write!(
                f,
                "weight count mismatch: {data} intervals but {weights} weights"
            ),
            BuildError::InvalidWeight { index, value } => write!(
                f,
                "invalid weight at index {index}: {value} (weights must be positive and finite)"
            ),
            BuildError::ShardDied { shard } => {
                write!(f, "shard {shard} died while building its index")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Validates a weight vector against a dataset up front: the length
/// must match and every weight must be positive and finite.
///
/// The one shared gate used by `irs-engine`'s `try_new_weighted` and
/// `irs-client`'s builder, so the rejection policy (and its error
/// payloads, naming the offending index) cannot drift between layers.
pub fn validate_weights(data_len: usize, weights: &[f64]) -> Result<(), BuildError> {
    if weights.len() != data_len {
        return Err(BuildError::WeightCountMismatch {
            data: data_len,
            weights: weights.len(),
        });
    }
    for (index, &value) in weights.iter().enumerate() {
        // The comparison is false for NaN, so NaN is rejected too.
        if !value.is_finite() || value <= 0.0 {
            return Err(BuildError::InvalidWeight { index, value });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_weights_accepts_positive_finite() {
        assert_eq!(validate_weights(3, &[1.0, 0.5, 2e9]), Ok(()));
        assert_eq!(validate_weights(0, &[]), Ok(()));
    }

    #[test]
    fn validate_weights_rejects_misalignment() {
        assert_eq!(
            validate_weights(2, &[1.0]),
            Err(BuildError::WeightCountMismatch {
                data: 2,
                weights: 1
            })
        );
    }

    #[test]
    fn validate_weights_names_the_offending_index() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.5] {
            match validate_weights(3, &[1.0, bad, 1.0]) {
                Err(BuildError::InvalidWeight { index: 1, value }) => {
                    assert!(value.is_nan() == bad.is_nan() && (value == bad || bad.is_nan()));
                }
                other => panic!("{bad}: expected InvalidWeight at 1, got {other:?}"),
            }
        }
    }

    #[test]
    fn capabilities_supports_matches_fields() {
        let caps = Capabilities {
            uniform_sample: true,
            weighted_sample: false,
            exact_count: true,
            search: true,
            stab: false,
            update: false,
        };
        assert!(caps.supports(Operation::UniformSample));
        assert!(!caps.supports(Operation::WeightedSample));
        assert!(!caps.supports(Operation::Stab));
        let supported: Vec<_> = caps.supported_ops().collect();
        assert_eq!(
            supported,
            vec![
                Operation::UniformSample,
                Operation::Count,
                Operation::Search
            ]
        );
    }

    #[test]
    fn errors_display_their_payloads() {
        let e = QueryError::ShardFailed { shard: 3 };
        assert!(e.to_string().contains("shard 3"));
        let e = BuildError::InvalidWeight {
            index: 7,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("index 7"));
        let e = QueryError::UnsupportedOperation {
            op: Operation::WeightedSample,
            reason: "AIT stores no weights",
        };
        assert!(e.to_string().contains("weighted-sample"));
    }
}
