//! Query traits implemented by every index structure in the workspace.
//!
//! The paper measures two phases separately (Tables V, VI, IX):
//!
//! 1. **Candidate computation** — for search-based baselines this collects
//!    `q ∩ X`; for the AIT family it computes the node-record set `R`; for
//!    KDS it decomposes the query rectangle into canonical pieces.
//! 2. **Sampling** — alias construction (where needed) plus `s` draws.
//!
//! [`RangeSampler::prepare`] performs phase 1 and returns a borrowed
//! [`PreparedSampler`] that performs phase 2, so benchmarks can time the two
//! phases exactly as the paper does while normal callers just use
//! [`RangeSampler::sample`].

use crate::interval::{Endpoint, Interval, ItemId};
use rand::Rng;

/// Range search: report every interval overlapping `q` (the classic
/// operator the paper's baselines are built on).
pub trait RangeSearch<E: Endpoint> {
    /// Appends the ids of all intervals overlapping `q` to `out`.
    ///
    /// `out` is caller-provided so repeated queries can reuse its
    /// allocation; it is *not* cleared first.
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>);

    /// Convenience wrapper returning a fresh `Vec`.
    fn range_search(&self, q: Interval<E>) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.range_search_into(q, &mut out);
        out
    }
}

/// Range counting: `|q ∩ X|` without enumerating the result set
/// (Corollary 1 of the paper for the AIT; Table X compares baselines).
pub trait RangeCount<E: Endpoint> {
    /// Returns the number of intervals overlapping `q`.
    fn range_count(&self, q: Interval<E>) -> usize;
}

/// Stabbing query: report every interval containing the point `p`
/// (the operator Edelsbrunner's interval tree was designed for).
pub trait StabbingQuery<E: Endpoint> {
    /// Appends the ids of all intervals with `lo ≤ p ≤ hi` to `out`.
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>);

    /// Convenience wrapper returning a fresh `Vec`.
    fn stab(&self, p: E) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.stab_into(p, &mut out);
        out
    }
}

/// Phase-2 handle produced by [`RangeSampler::prepare`] /
/// [`WeightedRangeSampler::prepare_weighted`]: knows the result-set
/// size (or an equivalent summary) and draws samples.
pub trait PreparedSampler {
    /// `|q ∩ X|` for exact structures. For AIT-V this counts *candidate*
    /// virtual slots, an upper bound on the true result size.
    fn candidate_count(&self) -> usize;

    /// Draws `s` samples (with replacement, independent across calls) and
    /// appends them to `out`. Draws nothing if the result set is empty.
    ///
    /// Generic over the RNG so the per-draw hot loop monomorphizes (no
    /// virtual dispatch on the ~3 RNG calls a draw costs).
    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>);
}

/// Independent range sampling, Problem 1 of the paper: `s` uniform,
/// independent samples from `q ∩ X`.
pub trait RangeSampler<E: Endpoint> {
    /// The phase-2 handle; borrows the index.
    type Prepared<'a>: PreparedSampler
    where
        Self: 'a;

    /// Phase 1: candidate computation for query `q`.
    fn prepare(&self, q: Interval<E>) -> Self::Prepared<'_>;

    /// Runs both phases: returns `s` uniform samples from `q ∩ X`
    /// (empty if nothing overlaps `q`).
    fn sample<R: Rng>(&self, q: Interval<E>, s: usize, rng: &mut R) -> Vec<ItemId> {
        let prepared = self.prepare(q);
        let mut out = Vec::with_capacity(s);
        prepared.sample_into(rng, s, &mut out);
        out
    }
}

/// Independent range sampling on weighted intervals, Problem 2 of the
/// paper: each `x ∈ q ∩ X` is drawn with probability
/// `w(x) / Σ_{x' ∈ q∩X} w(x')`.
pub trait WeightedRangeSampler<E: Endpoint> {
    /// The phase-2 handle; borrows the index.
    type Prepared<'a>: PreparedSampler
    where
        Self: 'a;

    /// Phase 1: candidate computation for query `q`.
    fn prepare_weighted(&self, q: Interval<E>) -> Self::Prepared<'_>;

    /// Runs both phases: returns `s` weight-proportional samples from
    /// `q ∩ X` (empty if nothing overlaps `q`).
    fn sample_weighted<R: Rng>(&self, q: Interval<E>, s: usize, rng: &mut R) -> Vec<ItemId> {
        let prepared = self.prepare_weighted(q);
        let mut out = Vec::with_capacity(s);
        prepared.sample_into(rng, s, &mut out);
        out
    }
}
