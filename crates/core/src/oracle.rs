//! Linear-scan reference implementation.
//!
//! Every index structure in the workspace is property-tested against this
//! oracle: its results are trivially correct (a direct transcription of the
//! problem definitions in §II-A), just slow — `O(n)` per query.

use crate::interval::{Endpoint, Interval, ItemId};
use crate::traits::{
    PreparedSampler, RangeCount, RangeSampler, RangeSearch, StabbingQuery, WeightedRangeSampler,
};
use rand::Rng;

/// Brute-force oracle over a dataset (and optional per-interval weights).
///
/// Owns a copy of the data so tests can freely mutate their own copies.
#[derive(Clone, Debug)]
pub struct BruteForce<E> {
    data: Vec<Interval<E>>,
    weights: Option<Vec<f64>>,
}

impl<E: Endpoint> BruteForce<E> {
    /// Oracle for the unweighted problem.
    pub fn new(data: &[Interval<E>]) -> Self {
        Self {
            data: data.to_vec(),
            weights: None,
        }
    }

    /// Oracle for the weighted problem. `weights` must be positive and
    /// aligned with `data`.
    pub fn new_weighted(data: &[Interval<E>], weights: &[f64]) -> Self {
        assert_eq!(data.len(), weights.len(), "weights must align with data");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive"
        );
        Self {
            data: data.to_vec(),
            weights: Some(weights.to_vec()),
        }
    }

    /// The dataset the oracle answers over.
    pub fn data(&self) -> &[Interval<E>] {
        &self.data
    }

    /// Exact result-set weight `Σ_{x ∈ q∩X} w(x)` (unweighted intervals
    /// count 1 each).
    pub fn result_weight(&self, q: Interval<E>) -> f64 {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, iv)| iv.overlaps(&q))
            .map(|(i, _)| self.weights.as_ref().map_or(1.0, |w| w[i]))
            .sum()
    }
}

impl<E: Endpoint> RangeSearch<E> for BruteForce<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        for (i, iv) in self.data.iter().enumerate() {
            if iv.overlaps(&q) {
                out.push(i as ItemId);
            }
        }
    }
}

impl<E: Endpoint> RangeCount<E> for BruteForce<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        self.data.iter().filter(|iv| iv.overlaps(&q)).count()
    }
}

impl<E: Endpoint> StabbingQuery<E> for BruteForce<E> {
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        for (i, iv) in self.data.iter().enumerate() {
            if iv.contains_point(p) {
                out.push(i as ItemId);
            }
        }
    }
}

/// Phase-2 handle of the oracle: the fully materialized result set, with
/// per-candidate weights in the weighted case.
pub struct BruteForcePrepared {
    candidates: Vec<ItemId>,
    /// Cumulative weights aligned with `candidates`; `None` for uniform.
    cum_weights: Option<Vec<f64>>,
}

impl PreparedSampler for BruteForcePrepared {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.candidates.is_empty() {
            return;
        }
        match &self.cum_weights {
            None => {
                for _ in 0..s {
                    let k = rng.random_range(0..self.candidates.len());
                    out.push(self.candidates[k]);
                }
            }
            Some(cum) => {
                let total = *cum.last().expect("non-empty");
                for _ in 0..s {
                    let w = rng.random_range(0.0..total);
                    let k = cum.partition_point(|&c| c <= w).min(cum.len() - 1);
                    out.push(self.candidates[k]);
                }
            }
        }
    }
}

impl<E: Endpoint> RangeSampler<E> for BruteForce<E> {
    type Prepared<'a> = BruteForcePrepared;

    fn prepare(&self, q: Interval<E>) -> BruteForcePrepared {
        BruteForcePrepared {
            candidates: self.range_search(q),
            cum_weights: None,
        }
    }
}

impl<E: Endpoint> WeightedRangeSampler<E> for BruteForce<E> {
    type Prepared<'a> = BruteForcePrepared;

    fn prepare_weighted(&self, q: Interval<E>) -> BruteForcePrepared {
        let weights = self
            .weights
            .as_ref()
            .expect("weighted sampling requires BruteForce::new_weighted");
        let candidates = self.range_search(q);
        let mut cum = Vec::with_capacity(candidates.len());
        let mut acc = 0.0;
        for &id in &candidates {
            acc += weights[id as usize];
            cum.push(acc);
        }
        BruteForcePrepared {
            candidates,
            cum_weights: Some(cum),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn fixture() -> Vec<Interval<i64>> {
        vec![iv(0, 10), iv(5, 6), iv(11, 20), iv(-5, -1), iv(8, 30)]
    }

    #[test]
    fn range_search_matches_definition() {
        let bf = BruteForce::new(&fixture());
        assert_eq!(bf.range_search(iv(6, 9)), vec![0, 1, 4]);
        assert_eq!(bf.range_search(iv(-100, 100)), vec![0, 1, 2, 3, 4]);
        assert!(bf.range_search(iv(40, 50)).is_empty());
    }

    #[test]
    fn count_matches_search() {
        let bf = BruteForce::new(&fixture());
        for q in [iv(6, 9), iv(-100, 100), iv(40, 50), iv(10, 11)] {
            assert_eq!(bf.range_count(q), bf.range_search(q).len());
        }
    }

    #[test]
    fn stab_is_degenerate_range() {
        let bf = BruteForce::new(&fixture());
        assert_eq!(bf.stab(9), bf.range_search(iv(9, 9)));
        assert_eq!(bf.stab(-3), vec![3]);
    }

    #[test]
    fn samples_come_from_result_set() {
        let bf = BruteForce::new(&fixture());
        let mut rng = StdRng::seed_from_u64(7);
        let q = iv(6, 9);
        let expect = bf.range_search(q);
        for id in bf.sample(q, 200, &mut rng) {
            assert!(expect.contains(&id));
        }
    }

    #[test]
    fn empty_result_set_yields_no_samples() {
        let bf = BruteForce::new(&fixture());
        let mut rng = StdRng::seed_from_u64(7);
        assert!(bf.sample(iv(100, 200), 10, &mut rng).is_empty());
    }

    #[test]
    fn weighted_samples_respect_support() {
        let data = fixture();
        let weights = vec![1.0, 100.0, 1.0, 1.0, 1.0];
        let bf = BruteForce::new_weighted(&data, &weights);
        let mut rng = StdRng::seed_from_u64(42);
        let q = iv(6, 9);
        let samples = bf.sample_weighted(q, 500, &mut rng);
        assert_eq!(samples.len(), 500);
        // id 1 has weight 100 of total 102 → expect the vast majority.
        let heavy = samples.iter().filter(|&&s| s == 1).count();
        assert!(
            heavy > 400,
            "weight-100 item sampled only {heavy}/500 times"
        );
        assert!(samples.iter().all(|&s| [0, 1, 4].contains(&s)));
    }

    #[test]
    fn result_weight_sums_weights() {
        let data = fixture();
        let weights = vec![2.0, 3.0, 5.0, 7.0, 11.0];
        let bf = BruteForce::new_weighted(&data, &weights);
        assert_eq!(bf.result_weight(iv(6, 9)), 2.0 + 3.0 + 11.0);
        let unweighted = BruteForce::new(&data);
        assert_eq!(unweighted.result_weight(iv(6, 9)), 3.0);
    }
}
