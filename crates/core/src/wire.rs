//! The error↔wire mapping: every typed error the library can produce,
//! assigned a **stable numeric code** so remote callers see the same
//! taxonomy as in-process callers.
//!
//! `irs-server` serves the engine over a hand-rolled TCP protocol (crate
//! `irs-wire`); a failure that crosses the wire cannot carry a Rust enum,
//! so each variant of [`QueryError`],
//! [`UpdateError`], and
//! [`PersistError`] — plus the protocol-level
//! failures only a network server can have — maps to one [`ErrorCode`].
//! The codes are part of the wire format: **numbers never change meaning
//! and are never reused** (like the snapshot format, additions bump the
//! protocol version; see `DESIGN.md`, "Wire protocol").
//!
//! [`WireError`] is the transported form: a code plus the original
//! error's one-sentence rendering. The conversion is centralized here —
//! next to the error taxonomies themselves — so a new error variant
//! fails to compile until it is assigned a code, rather than silently
//! falling into a catch-all.

use crate::catalog::CatalogError;
use crate::mutation::UpdateError;
use crate::persist::{Codec, PersistError, Reader};
use crate::query::QueryError;
use crate::wal::ReplicationError;
use std::fmt;

/// Stable numeric identity of one error variant, as sent over the wire.
///
/// Code space (decimal, mirroring HTTP's century convention):
///
/// - `1xx` — [`QueryError`] variants
/// - `2xx` — [`UpdateError`] variants
/// - `3xx` — [`PersistError`] variants
/// - `4xx` — protocol-level failures (framing, decoding, routing)
/// - `5xx` — server-side failures
/// - `6xx` — [`CatalogError`] variants (multi-tenant catalog refusals)
/// - `7xx` — [`ReplicationError`] variants (write-ahead log and
///   primary/replica role refusals)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    // --- 1xx: QueryError ---
    /// [`QueryError::UnsupportedOperation`].
    QueryUnsupportedOperation = 100,
    /// [`QueryError::NotWeighted`].
    QueryNotWeighted = 101,
    /// [`QueryError::ShardFailed`].
    QueryShardFailed = 102,

    // --- 2xx: UpdateError ---
    /// [`UpdateError::UnsupportedKind`].
    UpdateUnsupportedKind = 200,
    /// [`UpdateError::NotWeighted`].
    UpdateNotWeighted = 201,
    /// [`UpdateError::UnknownId`].
    UpdateUnknownId = 202,
    /// [`UpdateError::InvalidWeight`].
    UpdateInvalidWeight = 203,
    /// [`UpdateError::ShardFailed`].
    UpdateShardFailed = 204,

    // --- 3xx: PersistError ---
    /// [`PersistError::Io`].
    PersistIo = 300,
    /// [`PersistError::BadMagic`].
    PersistBadMagic = 301,
    /// [`PersistError::UnsupportedVersion`].
    PersistUnsupportedVersion = 302,
    /// [`PersistError::ChecksumMismatch`].
    PersistChecksumMismatch = 303,
    /// [`PersistError::Truncated`].
    PersistTruncated = 304,
    /// [`PersistError::Corrupt`].
    PersistCorrupt = 305,
    /// [`PersistError::UnknownKind`].
    PersistUnknownKind = 306,
    /// [`PersistError::EndpointMismatch`].
    PersistEndpointMismatch = 307,
    /// [`PersistError::ManifestMismatch`].
    PersistManifestMismatch = 308,
    /// [`PersistError::Unsupported`].
    PersistUnsupported = 309,

    // --- 4xx: protocol ---
    /// A frame did not start with the wire magic — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadFrame = 400,
    /// A frame declared a payload longer than the protocol's hard cap;
    /// refused before any allocation.
    FrameTooLarge = 401,
    /// A frame's payload failed its CRC-32 — bytes were corrupted in
    /// transit.
    FrameChecksum = 402,
    /// The connection closed (or stalled past the grace period) in the
    /// middle of a frame.
    FrameTruncated = 403,
    /// The frame payload is not a decodable message (bad tag payload,
    /// truncated body, garbage bytes).
    BadMessage = 404,
    /// The message tag names no request this server knows.
    UnknownMessage = 405,
    /// The request carries intervals of a different endpoint type than
    /// the one the server indexes.
    WrongEndpoint = 406,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown = 410,

    // --- 5xx: server ---
    /// The server failed in a way that has no more specific code; the
    /// message says what happened.
    Internal = 500,

    // --- 6xx: CatalogError ---
    /// [`CatalogError::UnknownCollection`].
    CatalogUnknownCollection = 600,
    /// [`CatalogError::CollectionExists`].
    CatalogCollectionExists = 601,
    /// [`CatalogError::InvalidName`].
    CatalogInvalidName = 602,
    /// [`CatalogError::BudgetExceeded`].
    CatalogBudgetExceeded = 603,
    /// [`CatalogError::ReindexInProgress`].
    CatalogReindexInProgress = 604,
    /// [`CatalogError::IncompatibleKind`].
    CatalogIncompatibleKind = 605,
    /// [`CatalogError::InvalidSpec`].
    CatalogInvalidSpec = 606,
    /// [`CatalogError::NotServingCatalog`].
    CatalogNotServing = 607,

    // --- 7xx: ReplicationError ---
    /// [`ReplicationError::OutOfOrderSequence`].
    ReplicationOutOfOrder = 700,
    /// [`ReplicationError::ReadOnlyReplica`].
    ReplicationReadOnly = 701,
    /// [`ReplicationError::NotPrimary`].
    ReplicationNotPrimary = 702,
    /// [`ReplicationError::NotReplica`].
    ReplicationNotReplica = 703,
    /// [`ReplicationError::StaleSubscribe`].
    ReplicationStaleSubscribe = 704,
    /// [`ReplicationError::Unsupported`].
    ReplicationUnsupported = 705,
}

impl ErrorCode {
    /// Every assigned code, for exhaustiveness tests and docs tables.
    pub const ALL: [ErrorCode; 41] = [
        ErrorCode::QueryUnsupportedOperation,
        ErrorCode::QueryNotWeighted,
        ErrorCode::QueryShardFailed,
        ErrorCode::UpdateUnsupportedKind,
        ErrorCode::UpdateNotWeighted,
        ErrorCode::UpdateUnknownId,
        ErrorCode::UpdateInvalidWeight,
        ErrorCode::UpdateShardFailed,
        ErrorCode::PersistIo,
        ErrorCode::PersistBadMagic,
        ErrorCode::PersistUnsupportedVersion,
        ErrorCode::PersistChecksumMismatch,
        ErrorCode::PersistTruncated,
        ErrorCode::PersistCorrupt,
        ErrorCode::PersistUnknownKind,
        ErrorCode::PersistEndpointMismatch,
        ErrorCode::PersistManifestMismatch,
        ErrorCode::PersistUnsupported,
        ErrorCode::BadFrame,
        ErrorCode::FrameTooLarge,
        ErrorCode::FrameChecksum,
        ErrorCode::FrameTruncated,
        ErrorCode::BadMessage,
        ErrorCode::UnknownMessage,
        ErrorCode::WrongEndpoint,
        ErrorCode::ShuttingDown,
        ErrorCode::Internal,
        ErrorCode::CatalogUnknownCollection,
        ErrorCode::CatalogCollectionExists,
        ErrorCode::CatalogInvalidName,
        ErrorCode::CatalogBudgetExceeded,
        ErrorCode::CatalogReindexInProgress,
        ErrorCode::CatalogIncompatibleKind,
        ErrorCode::CatalogInvalidSpec,
        ErrorCode::CatalogNotServing,
        ErrorCode::ReplicationOutOfOrder,
        ErrorCode::ReplicationReadOnly,
        ErrorCode::ReplicationNotPrimary,
        ErrorCode::ReplicationNotReplica,
        ErrorCode::ReplicationStaleSubscribe,
        ErrorCode::ReplicationUnsupported,
    ];

    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Parses a wire code; `None` for numbers this build has not
    /// assigned (a newer peer's code travels as [`ErrorCode::Internal`]
    /// would — callers should treat unknown codes as opaque failures).
    pub fn from_u16(code: u16) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_u16() == code)
    }

    /// Stable kebab-case name (log/JSON field value, docs tables).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::QueryUnsupportedOperation => "query-unsupported-operation",
            ErrorCode::QueryNotWeighted => "query-not-weighted",
            ErrorCode::QueryShardFailed => "query-shard-failed",
            ErrorCode::UpdateUnsupportedKind => "update-unsupported-kind",
            ErrorCode::UpdateNotWeighted => "update-not-weighted",
            ErrorCode::UpdateUnknownId => "update-unknown-id",
            ErrorCode::UpdateInvalidWeight => "update-invalid-weight",
            ErrorCode::UpdateShardFailed => "update-shard-failed",
            ErrorCode::PersistIo => "persist-io",
            ErrorCode::PersistBadMagic => "persist-bad-magic",
            ErrorCode::PersistUnsupportedVersion => "persist-unsupported-version",
            ErrorCode::PersistChecksumMismatch => "persist-checksum-mismatch",
            ErrorCode::PersistTruncated => "persist-truncated",
            ErrorCode::PersistCorrupt => "persist-corrupt",
            ErrorCode::PersistUnknownKind => "persist-unknown-kind",
            ErrorCode::PersistEndpointMismatch => "persist-endpoint-mismatch",
            ErrorCode::PersistManifestMismatch => "persist-manifest-mismatch",
            ErrorCode::PersistUnsupported => "persist-unsupported",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::FrameTooLarge => "frame-too-large",
            ErrorCode::FrameChecksum => "frame-checksum",
            ErrorCode::FrameTruncated => "frame-truncated",
            ErrorCode::BadMessage => "bad-message",
            ErrorCode::UnknownMessage => "unknown-message",
            ErrorCode::WrongEndpoint => "wrong-endpoint",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::CatalogUnknownCollection => "catalog-unknown-collection",
            ErrorCode::CatalogCollectionExists => "catalog-collection-exists",
            ErrorCode::CatalogInvalidName => "catalog-invalid-name",
            ErrorCode::CatalogBudgetExceeded => "catalog-budget-exceeded",
            ErrorCode::CatalogReindexInProgress => "catalog-reindex-in-progress",
            ErrorCode::CatalogIncompatibleKind => "catalog-incompatible-kind",
            ErrorCode::CatalogInvalidSpec => "catalog-invalid-spec",
            ErrorCode::CatalogNotServing => "catalog-not-serving",
            ErrorCode::ReplicationOutOfOrder => "replication-out-of-order",
            ErrorCode::ReplicationReadOnly => "replication-read-only",
            ErrorCode::ReplicationNotPrimary => "replication-not-primary",
            ErrorCode::ReplicationNotReplica => "replication-not-replica",
            ErrorCode::ReplicationStaleSubscribe => "replication-stale-subscribe",
            ErrorCode::ReplicationUnsupported => "replication-unsupported",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.as_u16(), self.name())
    }
}

// The three From impls below are the **authoritative mapping**: they
// match exhaustively (no catch-all), so adding an error variant without
// assigning it a code is a compile error here, not a silent `Internal`.

impl From<&QueryError> for ErrorCode {
    fn from(e: &QueryError) -> ErrorCode {
        match e {
            QueryError::UnsupportedOperation { .. } => ErrorCode::QueryUnsupportedOperation,
            QueryError::NotWeighted => ErrorCode::QueryNotWeighted,
            QueryError::ShardFailed { .. } => ErrorCode::QueryShardFailed,
        }
    }
}

impl From<&UpdateError> for ErrorCode {
    fn from(e: &UpdateError) -> ErrorCode {
        match e {
            UpdateError::UnsupportedKind { .. } => ErrorCode::UpdateUnsupportedKind,
            UpdateError::NotWeighted => ErrorCode::UpdateNotWeighted,
            UpdateError::UnknownId { .. } => ErrorCode::UpdateUnknownId,
            UpdateError::InvalidWeight { .. } => ErrorCode::UpdateInvalidWeight,
            UpdateError::ShardFailed { .. } => ErrorCode::UpdateShardFailed,
        }
    }
}

impl From<&PersistError> for ErrorCode {
    fn from(e: &PersistError) -> ErrorCode {
        match e {
            PersistError::Io { .. } => ErrorCode::PersistIo,
            PersistError::BadMagic { .. } => ErrorCode::PersistBadMagic,
            PersistError::UnsupportedVersion { .. } => ErrorCode::PersistUnsupportedVersion,
            PersistError::ChecksumMismatch { .. } => ErrorCode::PersistChecksumMismatch,
            PersistError::Truncated { .. } => ErrorCode::PersistTruncated,
            PersistError::Corrupt { .. } => ErrorCode::PersistCorrupt,
            PersistError::UnknownKind { .. } => ErrorCode::PersistUnknownKind,
            PersistError::EndpointMismatch { .. } => ErrorCode::PersistEndpointMismatch,
            PersistError::ManifestMismatch { .. } => ErrorCode::PersistManifestMismatch,
            PersistError::Unsupported { .. } => ErrorCode::PersistUnsupported,
        }
    }
}

impl From<&CatalogError> for ErrorCode {
    fn from(e: &CatalogError) -> ErrorCode {
        match e {
            CatalogError::UnknownCollection { .. } => ErrorCode::CatalogUnknownCollection,
            CatalogError::CollectionExists { .. } => ErrorCode::CatalogCollectionExists,
            CatalogError::InvalidName { .. } => ErrorCode::CatalogInvalidName,
            CatalogError::BudgetExceeded { .. } => ErrorCode::CatalogBudgetExceeded,
            CatalogError::ReindexInProgress { .. } => ErrorCode::CatalogReindexInProgress,
            CatalogError::IncompatibleKind { .. } => ErrorCode::CatalogIncompatibleKind,
            CatalogError::InvalidSpec { .. } => ErrorCode::CatalogInvalidSpec,
            CatalogError::NotServingCatalog => ErrorCode::CatalogNotServing,
            // The wrappers surface the inner taxonomy's own stable code
            // so callers branch on the root cause, not the layer it
            // crossed.
            CatalogError::Persist(inner) => inner.into(),
            CatalogError::Update(inner) => inner.into(),
        }
    }
}

impl From<&ReplicationError> for ErrorCode {
    fn from(e: &ReplicationError) -> ErrorCode {
        match e {
            // The wrapper surfaces the persistence taxonomy's own
            // stable code — a corrupt log record reports as the exact
            // corruption shape, not a generic replication failure.
            ReplicationError::Persist(inner) => inner.into(),
            ReplicationError::OutOfOrderSequence { .. } => ErrorCode::ReplicationOutOfOrder,
            ReplicationError::ReadOnlyReplica => ErrorCode::ReplicationReadOnly,
            ReplicationError::NotPrimary => ErrorCode::ReplicationNotPrimary,
            ReplicationError::NotReplica => ErrorCode::ReplicationNotReplica,
            ReplicationError::StaleSubscribe { .. } => ErrorCode::ReplicationStaleSubscribe,
            ReplicationError::Unsupported { .. } => ErrorCode::ReplicationUnsupported,
        }
    }
}

/// A typed error in transportable form: the variant's stable
/// [`ErrorCode`] plus the original error's one-sentence rendering.
///
/// This is what `irs-server` sends in error responses and what
/// `irs-wire`'s `RemoteClient` returns — the remote twin of the
/// in-process `Result<_, QueryError>` / `Result<_, UpdateError>`
/// surfaces. Match on [`WireError::code`] to branch on the taxonomy;
/// [`WireError::message`] is for humans and logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// The failed variant's stable code.
    pub code: ErrorCode,
    /// The original error's `Display` rendering (one sentence).
    pub message: String,
}

impl WireError {
    /// Wraps a protocol- or server-level failure.
    pub fn protocol(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl From<&QueryError> for WireError {
    fn from(e: &QueryError) -> WireError {
        WireError {
            code: e.into(),
            message: e.to_string(),
        }
    }
}

impl From<&UpdateError> for WireError {
    fn from(e: &UpdateError) -> WireError {
        WireError {
            code: e.into(),
            message: e.to_string(),
        }
    }
}

impl From<&PersistError> for WireError {
    fn from(e: &PersistError) -> WireError {
        WireError {
            code: e.into(),
            message: e.to_string(),
        }
    }
}

impl From<&CatalogError> for WireError {
    fn from(e: &CatalogError) -> WireError {
        WireError {
            code: e.into(),
            message: e.to_string(),
        }
    }
}

impl From<&ReplicationError> for WireError {
    fn from(e: &ReplicationError) -> WireError {
        WireError {
            code: e.into(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl Codec for ErrorCode {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.as_u16().encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let raw = u16::decode(r)?;
        ErrorCode::from_u16(raw).ok_or(PersistError::Corrupt {
            what: "unassigned wire error code",
        })
    }
}

impl Codec for WireError {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.code.encode_into(out);
        self.message.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(WireError {
            code: ErrorCode::decode(r)?,
            message: String::decode(r)?,
        })
    }
}

// `Result<T, WireError>` frames per-query / per-mutation outcomes inside
// batch responses: tag byte 1 = Ok, 0 = Err.
impl<T: Codec> Codec for Result<T, WireError> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(1);
                v.encode_into(out);
            }
            Err(e) => {
                out.push(0);
                e.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            1 => Ok(Ok(T::decode(r)?)),
            0 => Ok(Err(WireError::decode(r)?)),
            _ => Err(PersistError::Corrupt {
                what: "result tag is neither 0 nor 1",
            }),
        }
    }
}

// Wire form of the mutation vocabulary (the query vocabulary's Codec
// impls live in `irs-engine`, next to `Query`/`QueryOutput`).

impl<E: crate::GridEndpoint> Codec for crate::Mutation<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            crate::Mutation::Insert { iv } => {
                out.push(1);
                iv.encode_into(out);
            }
            crate::Mutation::InsertWeighted { iv, weight } => {
                out.push(2);
                iv.encode_into(out);
                weight.encode_into(out);
            }
            crate::Mutation::Delete { id } => {
                out.push(3);
                id.encode_into(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            1 => Ok(crate::Mutation::Insert {
                iv: crate::Interval::decode(r)?,
            }),
            2 => Ok(crate::Mutation::InsertWeighted {
                iv: crate::Interval::decode(r)?,
                weight: f64::decode(r)?,
            }),
            3 => Ok(crate::Mutation::Delete {
                id: crate::ItemId::decode(r)?,
            }),
            _ => Err(PersistError::Corrupt {
                what: "unknown mutation tag",
            }),
        }
    }
}

impl Codec for crate::UpdateOutput {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            crate::UpdateOutput::Inserted(id) => {
                out.push(1);
                id.encode_into(out);
            }
            crate::UpdateOutput::Removed => out.push(2),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        match u8::decode(r)? {
            1 => Ok(crate::UpdateOutput::Inserted(crate::ItemId::decode(r)?)),
            2 => Ok(crate::UpdateOutput::Removed),
            _ => Err(PersistError::Corrupt {
                what: "unknown update-output tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interval, Mutation, UpdateOutput};

    #[test]
    fn codes_are_distinct_and_roundtrip() {
        for (i, &a) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(ErrorCode::from_u16(a.as_u16()), Some(a));
            for &b in &ErrorCode::ALL[i + 1..] {
                assert_ne!(a.as_u16(), b.as_u16(), "{a} and {b} collide");
                assert_ne!(a.name(), b.name(), "{a} and {b} share a name");
            }
        }
        assert_eq!(ErrorCode::from_u16(9999), None);
    }

    #[test]
    fn every_query_error_variant_has_a_code() {
        let cases = [
            (
                QueryError::UnsupportedOperation {
                    op: crate::Operation::Stab,
                    reason: "r",
                },
                ErrorCode::QueryUnsupportedOperation,
            ),
            (QueryError::NotWeighted, ErrorCode::QueryNotWeighted),
            (
                QueryError::ShardFailed { shard: 3 },
                ErrorCode::QueryShardFailed,
            ),
        ];
        for (err, code) in cases {
            let wire = WireError::from(&err);
            assert_eq!(wire.code, code);
            assert_eq!(wire.message, err.to_string());
        }
    }

    #[test]
    fn every_update_error_variant_has_a_code() {
        let cases = [
            (
                UpdateError::UnsupportedKind {
                    kind: "kds",
                    reason: "static",
                },
                ErrorCode::UpdateUnsupportedKind,
            ),
            (UpdateError::NotWeighted, ErrorCode::UpdateNotWeighted),
            (UpdateError::UnknownId { id: 9 }, ErrorCode::UpdateUnknownId),
            (
                UpdateError::InvalidWeight { value: -1.0 },
                ErrorCode::UpdateInvalidWeight,
            ),
            (
                UpdateError::ShardFailed { shard: 0 },
                ErrorCode::UpdateShardFailed,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(WireError::from(&err).code, code);
        }
    }

    #[test]
    fn every_persist_error_variant_has_a_code() {
        let cases = [
            (
                PersistError::Io {
                    path: "p".into(),
                    kind: std::io::ErrorKind::NotFound,
                },
                ErrorCode::PersistIo,
            ),
            (
                PersistError::BadMagic { found: [0; 8] },
                ErrorCode::PersistBadMagic,
            ),
            (
                PersistError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                ErrorCode::PersistUnsupportedVersion,
            ),
            (
                PersistError::ChecksumMismatch {
                    section: "s",
                    stored: 1,
                    computed: 2,
                },
                ErrorCode::PersistChecksumMismatch,
            ),
            (
                PersistError::Truncated {
                    needed: 8,
                    remaining: 0,
                },
                ErrorCode::PersistTruncated,
            ),
            (
                PersistError::Corrupt { what: "w" },
                ErrorCode::PersistCorrupt,
            ),
            (
                PersistError::UnknownKind { name: "k".into() },
                ErrorCode::PersistUnknownKind,
            ),
            (
                PersistError::EndpointMismatch {
                    stored: "i64".into(),
                    expected: "u32",
                },
                ErrorCode::PersistEndpointMismatch,
            ),
            (
                PersistError::ManifestMismatch { what: "w" },
                ErrorCode::PersistManifestMismatch,
            ),
            (
                PersistError::Unsupported { reason: "r" },
                ErrorCode::PersistUnsupported,
            ),
        ];
        for (err, code) in cases {
            assert_eq!(WireError::from(&err).code, code);
        }
    }

    #[test]
    fn every_catalog_error_variant_has_a_code() {
        use crate::catalog::CatalogError;
        let n = || "t".to_string();
        let cases = [
            (
                CatalogError::UnknownCollection { name: n() },
                ErrorCode::CatalogUnknownCollection,
            ),
            (
                CatalogError::CollectionExists { name: n() },
                ErrorCode::CatalogCollectionExists,
            ),
            (
                CatalogError::InvalidName {
                    name: n(),
                    reason: "r",
                },
                ErrorCode::CatalogInvalidName,
            ),
            (
                CatalogError::BudgetExceeded {
                    name: n(),
                    requested_bytes: 10,
                    used_bytes: 90,
                    budget_bytes: 95,
                },
                ErrorCode::CatalogBudgetExceeded,
            ),
            (
                CatalogError::ReindexInProgress { name: n() },
                ErrorCode::CatalogReindexInProgress,
            ),
            (
                CatalogError::IncompatibleKind {
                    name: n(),
                    kind: "kds".into(),
                    reason: "static",
                },
                ErrorCode::CatalogIncompatibleKind,
            ),
            (
                CatalogError::InvalidSpec { reason: n() },
                ErrorCode::CatalogInvalidSpec,
            ),
            (
                CatalogError::NotServingCatalog,
                ErrorCode::CatalogNotServing,
            ),
            // Wrappers keep the inner taxonomy's code.
            (
                CatalogError::Persist(PersistError::Corrupt { what: "w" }),
                ErrorCode::PersistCorrupt,
            ),
            (
                CatalogError::Update(UpdateError::UnknownId { id: 3 }),
                ErrorCode::UpdateUnknownId,
            ),
        ];
        for (err, code) in cases {
            let wire = WireError::from(&err);
            assert_eq!(wire.code, code, "{err}");
            assert_eq!(wire.message, err.to_string());
        }
    }

    #[test]
    fn every_replication_error_variant_has_a_code() {
        use crate::wal::ReplicationError;
        let cases = [
            (
                ReplicationError::OutOfOrderSequence {
                    expected: 4,
                    found: 9,
                },
                ErrorCode::ReplicationOutOfOrder,
            ),
            (
                ReplicationError::ReadOnlyReplica,
                ErrorCode::ReplicationReadOnly,
            ),
            (
                ReplicationError::NotPrimary,
                ErrorCode::ReplicationNotPrimary,
            ),
            (
                ReplicationError::NotReplica,
                ErrorCode::ReplicationNotReplica,
            ),
            (
                ReplicationError::StaleSubscribe {
                    requested: 1,
                    start: 5,
                },
                ErrorCode::ReplicationStaleSubscribe,
            ),
            (
                ReplicationError::Unsupported { reason: "r" },
                ErrorCode::ReplicationUnsupported,
            ),
            // The wrapper keeps the persistence taxonomy's code.
            (
                ReplicationError::Persist(PersistError::ChecksumMismatch {
                    section: "log-record",
                    stored: 1,
                    computed: 2,
                }),
                ErrorCode::PersistChecksumMismatch,
            ),
        ];
        for (err, code) in cases {
            let wire = WireError::from(&err);
            assert_eq!(wire.code, code, "{err}");
            assert_eq!(wire.message, err.to_string());
        }
    }

    #[test]
    fn wire_error_and_results_roundtrip() {
        let e = WireError::protocol(ErrorCode::FrameTooLarge, "too big");
        let ok: Result<u64, WireError> = Ok(42);
        let err: Result<u64, WireError> = Err(e.clone());
        let mut buf = Vec::new();
        e.encode_into(&mut buf);
        ok.encode_into(&mut buf);
        err.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(WireError::decode(&mut r).unwrap(), e);
        assert_eq!(Result::<u64, WireError>::decode(&mut r).unwrap(), ok);
        assert_eq!(Result::<u64, WireError>::decode(&mut r).unwrap(), err);
        assert!(r.is_empty());
    }

    #[test]
    fn mutations_and_outputs_roundtrip() {
        let muts = [
            Mutation::Insert {
                iv: Interval::new(-3i64, 9),
            },
            Mutation::InsertWeighted {
                iv: Interval::new(0i64, 1),
                weight: 2.5,
            },
            Mutation::Delete { id: 77 },
        ];
        let outs = [UpdateOutput::Inserted(12), UpdateOutput::Removed];
        let mut buf = Vec::new();
        for m in &muts {
            m.encode_into(&mut buf);
        }
        for o in &outs {
            o.encode_into(&mut buf);
        }
        let mut r = Reader::new(&buf);
        for m in &muts {
            assert_eq!(&Mutation::<i64>::decode(&mut r).unwrap(), m);
        }
        for o in &outs {
            assert_eq!(&UpdateOutput::decode(&mut r).unwrap(), o);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn garbage_tags_decode_to_corrupt_not_panic() {
        for bytes in [[9u8].as_slice(), [0xFF].as_slice()] {
            let mut r = Reader::new(bytes);
            assert!(matches!(
                Mutation::<i64>::decode(&mut r),
                Err(PersistError::Corrupt { .. })
            ));
            let mut r = Reader::new(bytes);
            assert!(matches!(
                UpdateOutput::decode(&mut r),
                Err(PersistError::Corrupt { .. })
            ));
        }
        let mut r = Reader::new(&[0x0F, 0x27]); // 9999 LE
        assert!(matches!(
            ErrorCode::decode(&mut r),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
