//! The fallible *mutation* vocabulary: typed update operations, outputs,
//! and errors.
//!
//! Companion to [`crate::query`]: where that module types the read path,
//! this one types the write path opened by the paper's §III-D update
//! algorithms (one-by-one insertion, pooled batch insertion, deletion)
//! and the beyond-paper `DynamicAwit`. Every mutable backend in the
//! workspace — the single-index structures behind `irs-client`'s
//! monolithic backend and the sharded `irs-engine` — reports update
//! failures through one taxonomy:
//!
//! - [`Mutation`] — one typed update operation: insert an interval
//!   (uniform), insert with a weight, or delete by id.
//! - [`UpdateOutput`] — what a successful mutation yields. Insertions
//!   return the new interval's [`ItemId`]; the id is **stable for the
//!   backend's lifetime**, so later deletions and query results refer to
//!   the same interval, monolithic or sharded.
//! - [`UpdateError`] — why one mutation could not be applied. Kinds that
//!   are static snapshots refuse with [`UpdateError::UnsupportedKind`];
//!   a weighted insert into an unweighted build is
//!   [`UpdateError::NotWeighted`]; deleting an id that is not live is
//!   [`UpdateError::UnknownId`]; a bad weight is caught by the same
//!   validation gate as construction ([`crate::validate_weights`], via
//!   [`validate_update_weight`]) before it can corrupt any structure.
//!
//! Mutations take `&mut self` throughout the stack — queries stay
//! `&self` — so the type system itself guarantees no query batch is in
//! flight while the dataset changes.

use crate::interval::{Interval, ItemId};
use crate::query::BuildError;
use std::fmt;

/// One typed update operation submitted to a mutable backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation<E> {
    /// Insert `iv` with unit weight. On a weighted backend the interval
    /// joins with weight `1.0`.
    Insert {
        /// The interval to insert.
        iv: Interval<E>,
    },
    /// Insert `iv` with an explicit weight (Problem 2 backends only).
    /// The weight must pass the same gate as construction-time weights:
    /// positive and finite.
    InsertWeighted {
        /// The interval to insert.
        iv: Interval<E>,
        /// Its sampling weight.
        weight: f64,
    },
    /// Delete the interval identified by `id` (as returned by an insert
    /// or assigned at build time).
    Delete {
        /// The id to delete.
        id: ItemId,
    },
}

impl<E> Mutation<E> {
    /// The mutation's operation class, for capability gating.
    pub fn op(&self) -> UpdateOp {
        match self {
            Mutation::Insert { .. } => UpdateOp::Insert,
            Mutation::InsertWeighted { .. } => UpdateOp::InsertWeighted,
            Mutation::Delete { .. } => UpdateOp::Delete,
        }
    }
}

/// The three mutation classes a backend may (or may not) support, used
/// by capability gates and carried in error payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateOp {
    /// Unit-weight insertion ([`Mutation::Insert`]).
    Insert,
    /// Weighted insertion ([`Mutation::InsertWeighted`]).
    InsertWeighted,
    /// Deletion by id ([`Mutation::Delete`]).
    Delete,
}

impl UpdateOp {
    /// Stable lowercase name (log/JSON field value).
    pub fn name(self) -> &'static str {
        match self {
            UpdateOp::Insert => "insert",
            UpdateOp::InsertWeighted => "insert-weighted",
            UpdateOp::Delete => "delete",
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Successful result of one [`Mutation`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutput {
    /// An insertion succeeded; the payload is the new interval's stable
    /// id, usable in later [`Mutation::Delete`]s and matching the ids
    /// query results report.
    Inserted(ItemId),
    /// A deletion succeeded; the id is retired and will never be
    /// reissued by the same backend.
    Removed,
}

impl UpdateOutput {
    /// The inserted id, if this is an `Inserted` output.
    pub fn inserted(&self) -> Option<ItemId> {
        match self {
            UpdateOutput::Inserted(id) => Some(*id),
            UpdateOutput::Removed => None,
        }
    }
}

/// Why one mutation could not be applied.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateError {
    /// The backend's index kind cannot serve this mutation, however it
    /// was built — static-snapshot kinds refuse all mutations, and
    /// update-capable kinds may refuse one class (e.g. weighted inserts
    /// into an AIT, which stores no weights).
    UnsupportedKind {
        /// The refusing kind's stable name.
        kind: &'static str,
        /// Why it cannot serve the mutation, in one sentence.
        reason: &'static str,
    },
    /// A weighted insert was sent to a backend built without
    /// per-interval weights. Rebuild with weights (or insert with unit
    /// weight) instead.
    NotWeighted,
    /// The id names no live interval: it was never issued by this
    /// backend, or it has already been deleted.
    UnknownId {
        /// The offending id.
        id: ItemId,
    },
    /// The weight is not a positive finite number — the same rejection
    /// policy as construction-time [`crate::validate_weights`], applied
    /// before the mutation can touch any structure.
    InvalidWeight {
        /// The offending value.
        value: f64,
    },
    /// The worker owning the target shard died; the mutation was not
    /// applied. Matches the query path's `QueryError::ShardFailed`
    /// semantics: the dead shard keeps erring on every later operation.
    ShardFailed {
        /// The shard whose worker was observed dead.
        shard: usize,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnsupportedKind { kind, reason } => {
                write!(f, "`{kind}` cannot serve this mutation: {reason}")
            }
            UpdateError::NotWeighted => write!(
                f,
                "weighted insert requested, but the backend was built without weights"
            ),
            UpdateError::UnknownId { id } => {
                write!(
                    f,
                    "id {id} names no live interval (never issued, or already deleted)"
                )
            }
            UpdateError::InvalidWeight { value } => write!(
                f,
                "invalid weight {value} (weights must be positive and finite)"
            ),
            UpdateError::ShardFailed { shard } => {
                write!(f, "shard {shard} failed: its worker thread died")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Validates one insertion weight through the **same gate** as
/// construction-time weight vectors ([`crate::validate_weights`]), so
/// the rejection policy cannot drift between build and update paths.
pub fn validate_update_weight(weight: f64) -> Result<(), UpdateError> {
    match crate::validate_weights(1, &[weight]) {
        Ok(()) => Ok(()),
        // The only reachable arm for a 1-element vector is InvalidWeight.
        Err(BuildError::InvalidWeight { value, .. }) => Err(UpdateError::InvalidWeight { value }),
        Err(_) => Err(UpdateError::InvalidWeight { value: weight }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_ops_classify() {
        let iv = Interval::new(1i64, 5);
        assert_eq!(Mutation::Insert { iv }.op(), UpdateOp::Insert);
        assert_eq!(
            Mutation::InsertWeighted { iv, weight: 2.0 }.op(),
            UpdateOp::InsertWeighted
        );
        assert_eq!(Mutation::<i64>::Delete { id: 3 }.op(), UpdateOp::Delete);
    }

    #[test]
    fn update_weight_gate_matches_build_gate() {
        assert_eq!(validate_update_weight(1.5), Ok(()));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            match validate_update_weight(bad) {
                Err(UpdateError::InvalidWeight { value }) => {
                    assert!(value.is_nan() == bad.is_nan() && (value == bad || bad.is_nan()));
                }
                other => panic!("{bad}: expected InvalidWeight, got {other:?}"),
            }
        }
    }

    #[test]
    fn outputs_and_errors_display() {
        assert_eq!(UpdateOutput::Inserted(7).inserted(), Some(7));
        assert_eq!(UpdateOutput::Removed.inserted(), None);
        let e = UpdateError::UnknownId { id: 42 };
        assert!(e.to_string().contains("id 42"));
        let e = UpdateError::ShardFailed { shard: 2 };
        assert!(e.to_string().contains("shard 2"));
        let e = UpdateError::UnsupportedKind {
            kind: "kds",
            reason: "static snapshot",
        };
        assert!(e.to_string().contains("kds"));
        assert_eq!(UpdateOp::InsertWeighted.to_string(), "insert-weighted");
    }
}
