//! Object-safe erasure of the phase-2 sampling handle.
//!
//! [`PreparedSampler::sample_into`] is generic over the RNG so the
//! per-draw hot loop monomorphizes — which makes the trait not
//! object-safe. Layers that hold *heterogeneous* indexes behind one type
//! (the sharded engine in `irs-engine`, plugin-style registries, FFI)
//! need a `dyn`-able view instead. [`DynPreparedSampler`] is that view:
//! the RNG is passed as `&mut dyn RngCore`, trading one virtual dispatch
//! per ~3 RNG calls for object safety.
//!
//! Two adapters wrap any concrete [`PreparedSampler`]:
//!
//! - [`Erased`] — for structures whose [`candidate_count`] is the exact
//!   result-set size (AIT, AWIT, KDS, HINTm, interval tree, oracle).
//! - [`ErasedUpperBound`] — for structures whose count is only an upper
//!   bound (AIT-V counts candidate *virtual slots*). Consumers that need
//!   exact cardinalities (e.g. cross-shard sample allocation) check
//!   [`DynPreparedSampler::count_is_exact`] and fall back to an exact
//!   count from elsewhere.
//!
//! `Box<dyn DynPreparedSampler>` implements [`PreparedSampler`] again, so
//! erased handles can flow back into generic code unchanged.
//!
//! # Thread safety
//!
//! The trait requires `Send + Sync`: erased handles are the phase-1
//! state the concurrent read path keeps warm across the allocation
//! exchange, and many caller threads hold (and draw from) handles over
//! the *same* shared index at once. Phase-1 state must therefore be
//! immutable after `prepare` — all per-draw scratch lives on the
//! caller's stack (or in the caller-provided `out` buffer), and any
//! telemetry a handle keeps (AIT-V's rejection stats) must be updated
//! race-free. The RNG is the one piece of per-call mutable state, and
//! it is always caller-owned.
//!
//! [`candidate_count`]: PreparedSampler::candidate_count

use crate::interval::ItemId;
use crate::traits::PreparedSampler;
use rand::RngCore;

/// Object-safe counterpart of [`PreparedSampler`].
///
/// `Send + Sync` is part of the contract (see the module docs): a
/// handle may be created under a shared read guard on one thread and
/// drawn from while other threads hold their own handles over the same
/// index.
pub trait DynPreparedSampler: Send + Sync {
    /// See [`PreparedSampler::candidate_count`].
    fn candidate_count(&self) -> usize;

    /// Whether [`Self::candidate_count`] equals `|q ∩ X|` exactly.
    ///
    /// `false` means the count is an upper bound (AIT-V's virtual slots):
    /// still usable for emptiness checks, not for allocation proportional
    /// to result-set size.
    fn count_is_exact(&self) -> bool;

    /// Total result-set weight `Σ_{x ∈ q∩X} w(x)` for handles prepared on
    /// the weighted path; `None` for uniform handles. Lets consumers
    /// (the engine's cross-shard allocation) read the mass off the
    /// phase-1 handle instead of re-enumerating the result set.
    fn total_weight(&self) -> Option<f64> {
        None
    }

    /// See [`PreparedSampler::sample_into`]; the RNG is dynamically
    /// dispatched.
    fn sample_into_dyn(&self, rng: &mut dyn RngCore, s: usize, out: &mut Vec<ItemId>);
}

/// Erases a [`PreparedSampler`] whose candidate count is exact.
pub struct Erased<P>(pub P);

impl<P: PreparedSampler + Send + Sync> DynPreparedSampler for Erased<P> {
    fn candidate_count(&self) -> usize {
        self.0.candidate_count()
    }

    fn count_is_exact(&self) -> bool {
        true
    }

    fn sample_into_dyn(&self, rng: &mut dyn RngCore, s: usize, out: &mut Vec<ItemId>) {
        self.0.sample_into(rng, s, out);
    }
}

/// Erases a [`PreparedSampler`] whose candidate count is an upper bound
/// on the true result-set size (AIT-V).
pub struct ErasedUpperBound<P>(pub P);

impl<P: PreparedSampler + Send + Sync> DynPreparedSampler for ErasedUpperBound<P> {
    fn candidate_count(&self) -> usize {
        self.0.candidate_count()
    }

    fn count_is_exact(&self) -> bool {
        false
    }

    fn sample_into_dyn(&self, rng: &mut dyn RngCore, s: usize, out: &mut Vec<ItemId>) {
        self.0.sample_into(rng, s, out);
    }
}

impl PreparedSampler for Box<dyn DynPreparedSampler + '_> {
    fn candidate_count(&self) -> usize {
        (**self).candidate_count()
    }

    fn sample_into<R: RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        // `&mut R` is itself a (sized) `RngCore`, which unsizes to the
        // trait object the dyn path needs.
        let mut by_ref = rng;
        (**self).sample_into_dyn(&mut by_ref as &mut dyn RngCore, s, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::oracle::BruteForce;
    use crate::traits::RangeSampler;
    use rand::{rngs::StdRng, SeedableRng};

    fn fixture() -> BruteForce<i64> {
        let data: Vec<_> = (0..50).map(|i| Interval::new(i, i + 10)).collect();
        BruteForce::new(&data)
    }

    #[test]
    fn erased_matches_concrete() {
        let bf = fixture();
        let q = Interval::new(20, 30);
        let concrete = bf.prepare(q);
        let erased: Box<dyn DynPreparedSampler> = Box::new(Erased(bf.prepare(q)));
        assert_eq!(erased.candidate_count(), concrete.candidate_count());
        assert!(erased.count_is_exact());

        // Identical draw sequence through the dyn path and the generic
        // path (both consume the same RNG stream).
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        concrete.sample_into(&mut r1, 100, &mut a);
        erased.sample_into_dyn(&mut r2, 100, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn boxed_handle_is_a_prepared_sampler_again() {
        fn takes_generic<P: PreparedSampler>(p: &P) -> usize {
            let mut rng = StdRng::seed_from_u64(1);
            let mut out = Vec::new();
            p.sample_into(&mut rng, 7, &mut out);
            out.len()
        }
        let bf = fixture();
        let erased: Box<dyn DynPreparedSampler> = Box::new(Erased(bf.prepare(Interval::new(0, 5))));
        assert_eq!(takes_generic(&erased), 7);
    }

    #[test]
    fn upper_bound_wrapper_reports_inexact() {
        let bf = fixture();
        let erased = ErasedUpperBound(bf.prepare(Interval::new(0, 5)));
        assert!(!erased.count_is_exact());
        assert!(erased.candidate_count() > 0);
    }

    #[test]
    fn empty_result_draws_nothing_through_dyn() {
        let bf = fixture();
        let erased: Box<dyn DynPreparedSampler> =
            Box::new(Erased(bf.prepare(Interval::new(1000, 2000))));
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = Vec::new();
        erased.sample_into_dyn(&mut rng, 10, &mut out);
        assert!(out.is_empty());
    }
}
