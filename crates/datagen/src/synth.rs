//! Generic synthetic generators for tests, examples, and stress workloads
//! beyond the four calibrated profiles.

use crate::profiles::standard_normal;
use irs_core::Interval64;
use rand::{Rng, SeedableRng};

/// `n` intervals with left endpoints uniform over `[0, domain)` and
/// lengths uniform over `[1, max_len]` (clipped at the domain edge).
pub fn uniform(n: usize, domain: i64, max_len: i64, seed: u64) -> Vec<Interval64> {
    assert!(domain >= 2 && max_len >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lo = rng.random_range(0..domain);
            let len = rng.random_range(1..=max_len);
            Interval64::new(lo, (lo + len).min(domain))
        })
        .collect()
}

/// `n` intervals with uniform starts and Zipf-distributed lengths
/// (`P(len = k) ∝ k^-alpha` over `[1, max_len]`) — a heavy-tailed length
/// mix that stresses replication-based structures like HINTm.
pub fn zipf_lengths(n: usize, domain: i64, max_len: i64, alpha: f64, seed: u64) -> Vec<Interval64> {
    assert!(domain >= 2 && max_len >= 1 && alpha > 0.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Inverse-CDF table over the (truncated) support.
    let support = max_len.min(100_000) as usize;
    let mut cdf = Vec::with_capacity(support);
    let mut acc = 0.0;
    for k in 1..=support {
        acc += (k as f64).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.random_range(0.0..total);
            let k = cdf.partition_point(|&c| c < u) + 1;
            let lo = rng.random_range(0..domain);
            Interval64::new(lo, (lo + k as i64).min(domain))
        })
        .collect()
}

/// `n` intervals whose starts cluster around `clusters` hotspots
/// (Gaussian with the given `spread`), lengths exponential-ish around
/// `mean_len` — models rush-hour style temporal skew.
pub fn clustered(
    n: usize,
    domain: i64,
    clusters: usize,
    spread: i64,
    mean_len: i64,
    seed: u64,
) -> Vec<Interval64> {
    assert!(domain >= 2 && clusters >= 1 && mean_len >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<i64> = (0..clusters)
        .map(|i| (i as i64 * 2 + 1) * domain / (clusters as i64 * 2))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.random_range(0..clusters)];
            let offset = (standard_normal(&mut rng) * spread as f64) as i64;
            let lo = (c + offset).clamp(0, domain - 1);
            // Exponential via inverse CDF.
            let u: f64 = 1.0 - rng.random_range(0.0..1.0);
            let len = ((-u.ln()) * mean_len as f64).ceil().max(1.0) as i64;
            Interval64::new(lo, (lo + len).min(domain))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let data = uniform(5000, 100_000, 500, 1);
        assert_eq!(data.len(), 5000);
        for iv in &data {
            assert!(iv.lo >= 0 && iv.hi <= 100_000);
            assert!(iv.hi > iv.lo || iv.lo == 100_000);
        }
    }

    #[test]
    fn zipf_lengths_are_heavy_tailed() {
        let data = zipf_lengths(20_000, 1_000_000, 10_000, 1.2, 2);
        let lens: Vec<i64> = data.iter().map(|iv| iv.hi - iv.lo).collect();
        let ones = lens.iter().filter(|&&l| l <= 2).count();
        let long = lens.iter().filter(|&&l| l > 1000).count();
        assert!(ones > long, "zipf should concentrate on short lengths");
        assert!(long > 0, "zipf tail should still reach long lengths");
    }

    #[test]
    fn clustered_concentrates_near_centers() {
        let domain = 1_000_000;
        let data = clustered(20_000, domain, 2, 10_000, 50, 3);
        // Centers at 250k and 750k; count points within 50k of either.
        let near = data
            .iter()
            .filter(|iv| (iv.lo - 250_000).abs() < 50_000 || (iv.lo - 750_000).abs() < 50_000)
            .count();
        assert!(near > 19_000, "only {near}/20000 near cluster centers");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uniform(100, 1000, 10, 7), uniform(100, 1000, 10, 7));
        assert_eq!(
            zipf_lengths(100, 1000, 100, 1.0, 7),
            zipf_lengths(100, 1000, 100, 1.0, 7)
        );
        assert_eq!(
            clustered(100, 1000, 3, 10, 5, 7),
            clustered(100, 1000, 3, 10, 5, 7)
        );
    }
}
