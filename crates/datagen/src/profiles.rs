//! Profiles of the paper's four real datasets (Table II), with calibrated
//! synthetic generation.

use irs_core::Interval64;
use rand::{Rng, RngCore, SeedableRng};

/// Statistics of one of the paper's datasets (Table II) and the knobs the
/// synthetic generator derives from them.
#[derive(Clone, Copy, Debug)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper's tables.
    pub name: &'static str,
    /// Cardinality of the real dataset (`n` at 100% scale).
    pub cardinality: usize,
    /// Domain size (span of all endpoints).
    pub domain_size: i64,
    /// Minimum interval length.
    pub min_len: i64,
    /// Median interval length.
    pub med_len: i64,
    /// Maximum interval length.
    pub max_len: i64,
}

/// Book: borrowing periods of books in Aarhus libraries — long intervals
/// relative to the domain (median 1.46M of 31.5M).
pub const BOOK: DatasetProfile = DatasetProfile {
    name: "Book",
    cardinality: 2_295_260,
    domain_size: 31_507_200,
    min_len: 3_600,
    med_len: 1_458_000,
    max_len: 31_406_400,
};

/// BTC: historical Bitcoin [low, high] price intervals — tiny intervals
/// hugging the diagonal (median 937 of 6.9M).
pub const BTC: DatasetProfile = DatasetProfile {
    name: "BTC",
    cardinality: 2_538_921,
    domain_size: 6_876_400,
    min_len: 1,
    med_len: 937,
    max_len: 547_077,
};

/// Renfe: Spanish high-speed rail trips (departure → arrival).
pub const RENFE: DatasetProfile = DatasetProfile {
    name: "Renfe",
    cardinality: 38_753_060,
    domain_size: 52_163_400,
    min_len: 1_320,
    med_len: 9_120,
    max_len: 44_700,
};

/// Taxi: NYC taxi trips (pick-up → drop-off) — short trips with a heavy
/// tail.
pub const TAXI: DatasetProfile = DatasetProfile {
    name: "Taxi",
    cardinality: 106_685_540,
    domain_size: 79_901_357,
    min_len: 1,
    med_len: 663,
    max_len: 2_618_881,
};

/// All four profiles in the paper's column order.
pub const ALL_PROFILES: [DatasetProfile; 4] = [BOOK, BTC, RENFE, TAXI];

impl DatasetProfile {
    /// Generates `n` intervals matching this profile's domain and length
    /// distribution, deterministically from `seed`.
    ///
    /// Lengths follow a log-normal fitted to the profile: the median maps
    /// to the distribution median exactly, and `σ` is chosen so the
    /// profile maximum sits near the extreme quantile, then samples are
    /// clipped to `[min_len, max_len]`. Left endpoints are uniform over
    /// the part of the domain that keeps the interval inside — this
    /// matches the qualitative point-cloud shapes of the paper's Fig. 4
    /// (long spread intervals for Book, a tight diagonal band for BTC and
    /// Taxi).
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Interval64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mu = (self.med_len as f64).ln();
        // Put max_len at roughly the +3.5σ quantile: rare but reachable.
        let sigma = ((self.max_len as f64).ln() - mu) / 3.5;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            let len = (mu + sigma * z).exp().round() as i64;
            let len = len.clamp(self.min_len, self.max_len);
            let max_start = (self.domain_size - len).max(0);
            let lo = if max_start == 0 {
                0
            } else {
                rng.random_range(0..=max_start)
            };
            out.push(Interval64::new(lo, lo + len));
        }
        out
    }

    /// Generates at the profile's full cardinality (the paper's 100%
    /// scale). Prefer [`DatasetProfile::generate`] with an explicit `n`
    /// for laptop-scale runs.
    pub fn generate_full(&self, seed: u64) -> Vec<Interval64> {
        self.generate(self.cardinality, seed)
    }
}

/// One standard-normal draw via Box–Muller (keeps the dependency set to
/// `rand` alone; `rand_distr` is not among the approved crates).
pub(crate) fn standard_normal(rng: &mut (impl RngCore + ?Sized)) -> f64 {
    // Avoid u1 == 0 (ln(0)); the half-open range already excludes 1.
    let u1: f64 = 1.0 - rng.random_range(0.0..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_len(data: &[Interval64]) -> i64 {
        let mut lens: Vec<i64> = data.iter().map(|iv| iv.hi - iv.lo).collect();
        let mid = lens.len() / 2;
        *lens.select_nth_unstable(mid).1
    }

    #[test]
    fn lengths_respect_profile_bounds() {
        for p in ALL_PROFILES {
            let data = p.generate(20_000, 42);
            assert_eq!(data.len(), 20_000);
            for iv in &data {
                let len = iv.hi - iv.lo;
                assert!(
                    len >= p.min_len,
                    "{}: len {len} < min {}",
                    p.name,
                    p.min_len
                );
                assert!(
                    len <= p.max_len,
                    "{}: len {len} > max {}",
                    p.name,
                    p.max_len
                );
                assert!(
                    iv.lo >= 0 && iv.hi <= p.domain_size,
                    "{}: out of domain",
                    p.name
                );
            }
        }
    }

    #[test]
    fn median_length_close_to_profile() {
        for p in ALL_PROFILES {
            let data = p.generate(50_000, 7);
            let med = median_len(&data) as f64;
            let target = p.med_len as f64;
            // Clipping pulls the median around a little; 25% is plenty to
            // assert the right order of magnitude and shape.
            assert!(
                (med - target).abs() / target < 0.25,
                "{}: median {med} vs target {target}",
                p.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = BOOK.generate(1000, 5);
        let b = BOOK.generate(1000, 5);
        let c = BOOK.generate(1000, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        let mean: f64 = sum / n as f64;
        let var: f64 = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }
}
