//! Query workload and weight generation (§V-A of the paper).

use irs_core::Interval64;
use rand::{Rng, SeedableRng};

/// The paper's query generator: left endpoints uniform over the domain,
/// interval length a fixed percentage of the domain size (8% by default),
/// 1,000 queries per experiment.
#[derive(Clone, Copy, Debug)]
pub struct QueryWorkload {
    /// Domain the queries are drawn over, `[min, max]`.
    pub domain: (i64, i64),
}

impl QueryWorkload {
    /// Workload over an explicit domain.
    pub fn new(domain: (i64, i64)) -> Self {
        assert!(domain.0 <= domain.1, "domain out of order");
        Self { domain }
    }

    /// Workload over the domain spanned by `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty.
    pub fn from_data(data: &[Interval64]) -> Self {
        Self::new(irs_core::domain_bounds(data).expect("empty dataset has no domain"))
    }

    /// Generates `count` queries whose length is `extent_pct`% of the
    /// domain size, deterministically from `seed`.
    pub fn generate(&self, count: usize, extent_pct: f64, seed: u64) -> Vec<Interval64> {
        assert!(
            (0.0..=100.0).contains(&extent_pct),
            "extent {extent_pct}% out of range"
        );
        let (dmin, dmax) = self.domain;
        let size = dmax - dmin;
        let extent = ((size as f64) * extent_pct / 100.0).round() as i64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let max_start = dmax - extent;
                let lo = if max_start <= dmin {
                    dmin
                } else {
                    rng.random_range(dmin..=max_start)
                };
                Interval64::new(lo, lo + extent)
            })
            .collect()
    }
}

/// The paper's weight assignment: one uniform random integer in `[1, 100]`
/// per interval.
pub fn uniform_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.random_range(1..=100u32) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_fit_domain_and_extent() {
        let w = QueryWorkload::new((0, 1_000_000));
        let qs = w.generate(500, 8.0, 1);
        assert_eq!(qs.len(), 500);
        for q in &qs {
            assert_eq!(q.hi - q.lo, 80_000);
            assert!(q.lo >= 0 && q.hi <= 1_000_000);
        }
    }

    #[test]
    fn zero_extent_gives_stabbing_queries() {
        let w = QueryWorkload::new((10, 110));
        for q in w.generate(50, 0.0, 2) {
            assert_eq!(q.lo, q.hi);
        }
    }

    #[test]
    fn full_extent_covers_domain() {
        let w = QueryWorkload::new((5, 105));
        for q in w.generate(10, 100.0, 3) {
            assert_eq!((q.lo, q.hi), (5, 105));
        }
    }

    #[test]
    fn weights_in_paper_range() {
        let ws = uniform_weights(10_000, 4);
        assert!(ws
            .iter()
            .all(|&w| (1.0..=100.0).contains(&w) && w.fract() == 0.0));
        // All 100 values should appear over 10k draws.
        let distinct: std::collections::HashSet<u64> = ws.iter().map(|&w| w as u64).collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let w = QueryWorkload::new((0, 1000));
        assert_eq!(w.generate(20, 8.0, 9), w.generate(20, 8.0, 9));
        assert_ne!(w.generate(20, 8.0, 9), w.generate(20, 8.0, 10));
    }
}
