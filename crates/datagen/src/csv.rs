//! The CSV interval format every binary speaks: one `lo,hi[,weight]`
//! triple per line.
//!
//! Shared by `irs-cli` (generate/query/serve) and `irs-server` so a file
//! written by one tool always loads in the other. Header lines (starting
//! with a letter) are only recognized *before* the first data line; a
//! malformed line in the data body is an error naming the line, never
//! silently skipped. Weights must be positive and finite — the loader
//! rejects them with a `file:line` message rather than letting an index
//! builder abort on an unnamed row.

use irs_core::{Interval, Interval64};
use std::io::BufRead;
use std::path::Path;

/// Parses `lo,hi[,weight]` lines from any reader; `path` is used only in
/// error messages. Missing weights default to `1.0`.
pub fn parse_csv(reader: impl BufRead, path: &str) -> Result<(Vec<Interval64>, Vec<f64>), String> {
    let mut data = Vec::new();
    let mut weights = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |what: &str| format!("{path}:{}: {what}", lineno + 1);
        if line.starts_with(|c: char| c.is_alphabetic()) {
            if data.is_empty() {
                continue; // header
            }
            return Err(err(
                "malformed data line (non-numeric; headers may only open the file)",
            ));
        }
        let mut parts = line.split(',');
        let lo: i64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err("bad lo"))?;
        let hi: i64 = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| err("bad hi"))?;
        if lo > hi {
            return Err(err("lo > hi"));
        }
        let w: f64 = match parts.next() {
            Some(v) => v.trim().parse().map_err(|_| err("bad weight"))?,
            None => 1.0,
        };
        // Catch these here with a file:line error; the index builders
        // only assert, which would abort without naming the bad row.
        if !(w.is_finite() && w > 0.0) {
            return Err(err("bad weight (must be positive and finite)"));
        }
        data.push(Interval::new(lo, hi));
        weights.push(w);
    }
    if data.is_empty() {
        return Err(format!("{path}: no intervals"));
    }
    Ok((data, weights))
}

/// Opens and parses a CSV interval file.
pub fn load_csv(path: impl AsRef<Path>) -> Result<(Vec<Interval64>, Vec<f64>), String> {
    let path = path.as_ref();
    let shown = path.display().to_string();
    let file = std::fs::File::open(path).map_err(|e| format!("{shown}: {e}"))?;
    parse_csv(std::io::BufReader::new(file), &shown)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<(Vec<Interval64>, Vec<f64>), String> {
        parse_csv(text.as_bytes(), "test.csv")
    }

    #[test]
    fn plain_rows_parse_with_default_weight() {
        let (data, weights) = parse("1,5\n2,8,3.5\n").unwrap();
        assert_eq!(data, vec![Interval::new(1, 5), Interval::new(2, 8)]);
        assert_eq!(weights, vec![1.0, 3.5]);
    }

    #[test]
    fn leading_header_and_blank_lines_are_skipped() {
        let (data, _) = parse("lo,hi,weight\n\n10,20\n30,40\n").unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn malformed_line_mid_file_errors_with_line_number() {
        // A mid-file alphabetic line must not be skipped as a "header".
        let err = parse("1,5\nnot,a,row\n2,8\n").unwrap_err();
        assert!(
            err.contains("test.csv:2"),
            "error must name the line: {err}"
        );
        assert!(err.contains("malformed"), "{err}");
    }

    #[test]
    fn numeric_garbage_errors_with_line_number() {
        let err = parse("1,5\n3,\n").unwrap_err();
        assert!(err.contains("test.csv:2"), "{err}");
        let err = parse("1,5\n4,2\n").unwrap_err();
        assert!(err.contains("lo > hi"), "{err}");
        let err = parse("1,5\n4,9,heavy\n").unwrap_err();
        assert!(err.contains("bad weight"), "{err}");
    }

    #[test]
    fn non_positive_or_non_finite_weights_error_with_line_number() {
        // These parse as f64 but would abort deep inside the index
        // builders; the loader must reject them with file:line instead.
        for bad in ["-3", "0", "NaN", "inf"] {
            let err = parse(&format!("1,5,2\n2,8,{bad}\n")).unwrap_err();
            assert!(err.contains("test.csv:2"), "`{bad}`: {err}");
            assert!(err.contains("bad weight"), "`{bad}`: {err}");
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").unwrap_err().contains("no intervals"));
        assert!(parse("lo,hi\n").unwrap_err().contains("no intervals"));
    }
}
