//! Synthetic dataset and workload generation.
//!
//! The paper evaluates on four real datasets (Book, BTC, Renfe, Taxi) that
//! are not redistributable here; this crate generates synthetic datasets
//! matching each dataset's published statistics (Table II: cardinality,
//! domain size, min/median/max interval length) and qualitative shape
//! (Fig. 4). The index structures' costs depend only on `n`, the domain,
//! and the interval-length distribution — matching those preserves the
//! paper's comparisons (see DESIGN.md, "Substitutions").
//!
//! Also provides the paper's query workload (§V-A: left endpoint uniform
//! over the domain, length a fixed percentage of the domain, default 8%,
//! 1,000 queries) and the weight generator (uniform integers in
//! `[1, 100]`).

#![deny(missing_docs)]

pub mod csv;
pub mod profiles;
pub mod queries;
pub mod synth;

pub use csv::{load_csv, parse_csv};
pub use profiles::{DatasetProfile, BOOK, BTC, RENFE, TAXI};
pub use queries::{uniform_weights, QueryWorkload};
pub use synth::{clustered, uniform, zipf_lengths};
