//! The **timeline index** (Kaufmann et al., SIGMOD 2013 — "Timeline
//! index: a unified data structure for processing queries on temporal
//! data in SAP HANA"), one of the range-search baselines the paper's
//! related work discusses (§VI; HINTm was shown to outperform it, which
//! is why §V benches HINTm instead — this crate completes the landscape).
//!
//! # Structure
//!
//! All interval endpoints become an *event list*, sorted by time: a
//! `+id` event at `lo` and a `−id` event just after `hi` (closed
//! intervals). Every `c` events a *checkpoint* stores the full set of
//! intervals active at that point. A query `[q.lo, q.hi]` then:
//!
//! 1. reconstructs the active set at `q.lo` from the nearest checkpoint
//!    at or before it plus an event replay (`O(c + |active|)`), and
//! 2. appends every interval that *starts* within `(q.lo, q.hi]`
//!    (a contiguous run of the start-sorted event list).
//!
//! Range search therefore costs `O(c + |q ∩ X| + replay)` — fast for
//! short queries, `Ω(|q ∩ X|)` like all search-based baselines (the
//! paper's related work, §VI, discusses it as the temporal-database
//! representative HINTm superseded).
//!
//! # Complexity
//!
//! | Operation | Time | Notes |
//! |---|---|---|
//! | Build | `O(n log n)` | event sort + periodic checkpoints |
//! | Range search | `O(c + replay + \|q ∩ X\|)` | `c` = checkpoint period |
//! | Range count | same as search | search-based |
//! | IRS | `Ω(\|q ∩ X\| + s)` | search-then-sample |
//! | Space | `O(n + n/c · active)` | event list + snapshots |

#![deny(missing_docs)]

use irs_core::{
    vec_bytes, Endpoint, Interval, ItemId, MemoryFootprint, PreparedSampler, RangeCount,
    RangeSampler, RangeSearch, StabbingQuery,
};

/// One event: an interval starting or ending.
#[derive(Clone, Copy, Debug)]
struct Event<E> {
    time: E,
    id: ItemId,
    /// `true` = interval becomes active, `false` = it just became
    /// inactive (processed for times strictly greater than `time`).
    start: bool,
}

/// A periodic snapshot of the active set.
#[derive(Clone, Debug)]
struct Checkpoint {
    /// Index into the event list this snapshot is valid *after*.
    event_pos: usize,
    /// Ids active after applying events `0..event_pos`.
    active: Vec<ItemId>,
}

/// Default checkpoint period (events between snapshots).
pub const DEFAULT_CHECKPOINT_PERIOD: usize = 512;

/// The timeline index.
///
/// ```
/// use irs_timeline::TimelineIndex;
/// use irs_core::{Interval, RangeSearch, StabbingQuery};
///
/// let data = vec![Interval::new(0i64, 10), Interval::new(5, 15), Interval::new(20, 30)];
/// let tl = TimelineIndex::new(&data);
/// assert_eq!(tl.stab(7), vec![0, 1]);
/// let mut hits = tl.range_search(Interval::new(12, 25));
/// hits.sort_unstable();
/// assert_eq!(hits, vec![1, 2]);
/// ```
#[derive(Debug)]
pub struct TimelineIndex<E> {
    /// Start and end events interleaved, sorted by (time, end-before-
    /// start so that replay at a time T applies closed-interval
    /// semantics correctly — see `active_at`).
    events: Vec<Event<E>>,
    checkpoints: Vec<Checkpoint>,
    /// Positions of the start events only, for the "started within
    /// (q.lo, q.hi]" phase: `(lo, id)` sorted by `lo`.
    starts: Vec<(E, ItemId)>,
    len: usize,
    period: usize,
}

impl<E: Endpoint> TimelineIndex<E> {
    /// Builds with [`DEFAULT_CHECKPOINT_PERIOD`].
    pub fn new(data: &[Interval<E>]) -> Self {
        Self::with_checkpoint_period(data, DEFAULT_CHECKPOINT_PERIOD)
    }

    /// Builds with an explicit checkpoint period (smaller = faster
    /// queries, more memory).
    pub fn with_checkpoint_period(data: &[Interval<E>], period: usize) -> Self {
        assert!(period >= 1, "checkpoint period must be at least 1");
        let mut events: Vec<Event<E>> = Vec::with_capacity(data.len() * 2);
        let mut starts: Vec<(E, ItemId)> = Vec::with_capacity(data.len());
        for (i, iv) in data.iter().enumerate() {
            events.push(Event {
                time: iv.lo,
                id: i as ItemId,
                start: true,
            });
            events.push(Event {
                time: iv.hi,
                id: i as ItemId,
                start: false,
            });
            starts.push((iv.lo, i as ItemId));
        }
        // Replay order: all events at time t happen "at" t, with starts
        // before ends so a point query at t sees intervals that both
        // start and end at t. An end at time t only deactivates for
        // times strictly greater than t (closed intervals), which
        // `active_at` honours by replaying ends at t *after* the probe.
        events.sort_unstable_by_key(|e| (e.time, !e.start, e.id));
        starts.sort_unstable();

        // Checkpoints: active set after each `period` events.
        let mut checkpoints = Vec::with_capacity(events.len() / period + 1);
        let mut active: Vec<ItemId> = Vec::new();
        checkpoints.push(Checkpoint {
            event_pos: 0,
            active: Vec::new(),
        });
        for (pos, e) in events.iter().enumerate() {
            if e.start {
                active.push(e.id);
            } else if let Some(k) = active.iter().position(|&id| id == e.id) {
                active.swap_remove(k);
            }
            if (pos + 1) % period == 0 {
                let mut snapshot = active.clone();
                snapshot.sort_unstable();
                checkpoints.push(Checkpoint {
                    event_pos: pos + 1,
                    active: snapshot,
                });
            }
        }
        TimelineIndex {
            events,
            checkpoints,
            starts,
            len: data.len(),
            period,
        }
    }

    /// Number of intervals indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Checkpoint period in use.
    pub fn checkpoint_period(&self) -> usize {
        self.period
    }

    /// Ids active at time `t` (the timeline's native *time-travel*
    /// operator): nearest checkpoint + replay of at most `period` events.
    pub fn active_at(&self, t: E) -> Vec<ItemId> {
        if self.len == 0 {
            return Vec::new();
        }
        // Events relevant at time t: all with (time < t), plus starts at
        // t (closed start), while ends at t remain active (closed end).
        // Our sort key places starts before ends per time, so the replay
        // boundary is: all events with time < t, plus start events at t.
        let boundary = self
            .events
            .partition_point(|e| (e.time, !e.start) < (t, false) || (e.time == t && e.start));
        // Nearest checkpoint at or before the boundary.
        let ck_idx = self
            .checkpoints
            .partition_point(|c| c.event_pos <= boundary)
            .saturating_sub(1);
        let ck = &self.checkpoints[ck_idx];
        let mut active: Vec<ItemId> = ck.active.clone();
        for e in &self.events[ck.event_pos..boundary] {
            if e.start {
                active.push(e.id);
            } else if let Some(k) = active.iter().position(|&id| id == e.id) {
                active.swap_remove(k);
            }
        }
        // Ends at exactly `t` were replayed as deactivations only if
        // they preceded the boundary; with our key (time, !start) an end
        // at time t has key (t, true) ≥ (t, false) so it is *not* below
        // the boundary. Closed-interval semantics hold.
        active
    }
}

impl<E: Endpoint> RangeSearch<E> for TimelineIndex<E> {
    fn range_search_into(&self, q: Interval<E>, out: &mut Vec<ItemId>) {
        if self.len == 0 {
            return;
        }
        // Phase 1: active at q.lo.
        let active = self.active_at(q.lo);
        out.extend_from_slice(&active);
        // Phase 2: started within (q.lo, q.hi] — disjoint from phase 1
        // because those intervals were not active at q.lo.
        let from = self.starts.partition_point(|&(lo, _)| lo <= q.lo);
        let to = self.starts.partition_point(|&(lo, _)| lo <= q.hi);
        out.extend(self.starts[from..to].iter().map(|&(_, id)| id));
    }
}

impl<E: Endpoint> RangeCount<E> for TimelineIndex<E> {
    fn range_count(&self, q: Interval<E>) -> usize {
        if self.len == 0 {
            return 0;
        }
        let active = self.active_at(q.lo).len();
        let from = self.starts.partition_point(|&(lo, _)| lo <= q.lo);
        let to = self.starts.partition_point(|&(lo, _)| lo <= q.hi);
        active + (to - from)
    }
}

impl<E: Endpoint> StabbingQuery<E> for TimelineIndex<E> {
    fn stab_into(&self, p: E, out: &mut Vec<ItemId>) {
        out.extend(self.active_at(p));
    }
}

/// Phase-2 handle: the materialized result set (search-then-sample
/// baseline semantics, like the interval tree).
pub struct TimelinePrepared {
    candidates: Vec<ItemId>,
}

impl PreparedSampler for TimelinePrepared {
    fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    fn sample_into<R: rand::RngCore + ?Sized>(&self, rng: &mut R, s: usize, out: &mut Vec<ItemId>) {
        if self.candidates.is_empty() {
            return;
        }
        for _ in 0..s {
            let k = rand::Rng::random_range(&mut *rng, 0..self.candidates.len());
            out.push(self.candidates[k]);
        }
    }
}

impl<E: Endpoint> RangeSampler<E> for TimelineIndex<E> {
    type Prepared<'a> = TimelinePrepared;

    fn prepare(&self, q: Interval<E>) -> TimelinePrepared {
        TimelinePrepared {
            candidates: self.range_search(q),
        }
    }
}

impl<E: Endpoint> MemoryFootprint for TimelineIndex<E> {
    fn heap_bytes(&self) -> usize {
        vec_bytes(&self.events)
            + vec_bytes(&self.starts)
            + vec_bytes(&self.checkpoints)
            + self
                .checkpoints
                .iter()
                .map(|c| vec_bytes(&c.active))
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irs_core::BruteForce;
    use proptest::prelude::*;

    fn iv(lo: i64, hi: i64) -> Interval<i64> {
        Interval::new(lo, hi)
    }

    fn sorted(mut v: Vec<ItemId>) -> Vec<ItemId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let tl = TimelineIndex::<i64>::new(&[]);
        assert!(tl.is_empty());
        assert!(tl.range_search(iv(0, 10)).is_empty());
        assert_eq!(tl.range_count(iv(0, 10)), 0);
        assert!(tl.active_at(5).is_empty());
    }

    #[test]
    fn closed_interval_boundaries() {
        let data = vec![iv(5, 10)];
        let tl = TimelineIndex::new(&data);
        assert_eq!(tl.stab(5), vec![0], "closed at start");
        assert_eq!(tl.stab(10), vec![0], "closed at end");
        assert!(tl.stab(4).is_empty());
        assert!(tl.stab(11).is_empty());
    }

    #[test]
    fn degenerate_point_interval() {
        let data = vec![iv(7, 7), iv(0, 20)];
        let tl = TimelineIndex::new(&data);
        assert_eq!(sorted(tl.stab(7)), vec![0, 1]);
        assert_eq!(sorted(tl.range_search(iv(6, 8))), vec![0, 1]);
    }

    #[test]
    fn matches_oracle_across_checkpoint_periods() {
        let data: Vec<_> = (0..500)
            .map(|i| iv((i * 17) % 400, (i * 17) % 400 + 3 + (i % 29)))
            .collect();
        let bf = BruteForce::new(&data);
        for period in [1, 7, 64, 512, 100_000] {
            let tl = TimelineIndex::with_checkpoint_period(&data, period);
            for q in [
                iv(0, 450),
                iv(100, 120),
                iv(399, 440),
                iv(-20, -1),
                iv(250, 250),
            ] {
                assert_eq!(
                    sorted(tl.range_search(q)),
                    sorted(bf.range_search(q)),
                    "period {period} query {q:?}"
                );
                assert_eq!(tl.range_count(q), bf.range_count(q), "period {period}");
            }
            for p in [0, 200, 399, 431] {
                assert_eq!(
                    sorted(tl.stab(p)),
                    sorted(bf.stab(p)),
                    "period {period} stab {p}"
                );
            }
        }
    }

    #[test]
    fn sampling_supports_result_set() {
        use irs_core::RangeSampler;
        use rand::{rngs::StdRng, SeedableRng};
        let data: Vec<_> = (0..200).map(|i| iv(i, i + 30)).collect();
        let tl = TimelineIndex::new(&data);
        let bf = BruteForce::new(&data);
        let q = iv(60, 90);
        let support = sorted(bf.range_search(q));
        let mut rng = StdRng::seed_from_u64(4);
        for id in tl.sample(q, 1000, &mut rng) {
            assert!(support.binary_search(&id).is_ok());
        }
    }

    #[test]
    fn checkpoints_bound_replay() {
        let data: Vec<_> = (0..10_000).map(|i| iv(i, i + 100)).collect();
        let tl = TimelineIndex::with_checkpoint_period(&data, 128);
        // 20k events / 128 → ~156 checkpoints (plus the initial one).
        assert!(
            tl.checkpoints.len() >= 150,
            "{} checkpoints",
            tl.checkpoints.len()
        );
        assert_eq!(tl.active_at(5_000).len(), 101);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_oracle(
            raw in prop::collection::vec((0i64..600, 0i64..150), 1..250),
            queries in prop::collection::vec((-40i64..700, 0i64..250), 12),
            period in 1usize..600,
        ) {
            let data: Vec<_> = raw.iter().map(|&(lo, len)| iv(lo, lo + len)).collect();
            let tl = TimelineIndex::with_checkpoint_period(&data, period);
            let bf = BruteForce::new(&data);
            for &(lo, len) in &queries {
                let q = iv(lo, lo + len);
                prop_assert_eq!(sorted(tl.range_search(q)), sorted(bf.range_search(q)));
                prop_assert_eq!(tl.range_count(q), bf.range_count(q));
                prop_assert_eq!(sorted(tl.stab(lo)), sorted(bf.stab(lo)));
            }
        }
    }
}
