//! Multi-tenant catalog over the IRS engine: **named collections**,
//! a **global memory budget**, workload-driven **index-kind
//! selection**, and **online re-indexing**.
//!
//! The paper's index structures each win on a different workload
//! (query extent, update rate, weighted vs. uniform), but a `Client`
//! serves exactly one dataset. A [`Catalog`] serves many: each named
//! collection owns its own backend (its [`IndexKind`], shard count, and
//! seed), and the catalog handle — `Clone + Send + Sync`, shared by
//! every server connection — routes queries and mutations by name.
//!
//! Four properties define the subsystem:
//!
//! - **Budgeted admission.** The catalog can carry a global memory
//!   budget. Collections are accounted by their indexes' deterministic
//!   deep-size estimate (`DynIndex::heap_bytes`); a creation or an
//!   insert batch that would cross the budget is refused with the typed
//!   [`CatalogError::BudgetExceeded`] — never an abort, never an OOM.
//! - **Adaptive planning.** A collection created with
//!   [`KindSpec::Auto`] declares [`WorkloadHints`] instead of an index
//!   kind; the [`planner`] picks one from the capability table plus a
//!   static cost model seeded from the committed bench matrix
//!   (`BENCH_2026-08-07.json`). Churning hints always land on an
//!   update-capable kind; read-only hints on a static one.
//! - **Online re-index.** [`Catalog::reindex`] rebuilds a collection on
//!   a different kind while readers keep flowing: the current backend
//!   is snapshotted, the replacement is built from the live set, and
//!   the swap is atomic under the collection's writer seat. The
//!   **global-id contract survives**: ids issued before the swap stay
//!   valid after it, through a per-collection id remap that the query
//!   and mutation paths translate through.
//! - **One-manifest persistence.** [`Catalog::save`] writes every
//!   collection's snapshot plus a single catalog manifest
//!   (`catalog.irs`, PR-5 codec); [`Catalog::load`] restores the whole
//!   tenancy — seeded replay after the round trip is byte-identical.
//!
//! Lock order inside a collection is `state` (backend) → `book`
//! (id bookkeeping), everywhere: queries hold the state read lock
//! across run *and* translate, so the atomic swap (which takes the
//! state write lock before touching the book) can never tear a
//! response between an old backend and a new remap.

#![deny(missing_docs)]

mod persist;
pub mod planner;

pub use irs_core::{validate_collection_name, CatalogError};
pub use persist::{
    read_catalog_manifest, CatalogManifest, CollectionRecord, CATALOG_MANIFEST_FILE,
};

use irs_client::{Client, Irs};
use irs_core::{GridEndpoint, Interval, ItemId, Mutation, QueryError, UpdateError, UpdateOutput};
use irs_engine::{IndexKind, Query, QueryOutput};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Declared workload shape for [`KindSpec::Auto`]: the planner's
/// inputs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadHints {
    /// Expected fraction of operations that mutate, in `[0, 1]`.
    /// Anything above zero restricts planning to update-capable kinds.
    pub update_rate: f64,
    /// Whether sampling must be weight-proportional (Problem 2).
    pub weighted: bool,
    /// Expected fraction of the domain one query covers, in `[0, 1]`.
    /// Blends the cost model between the bench matrix's sampling and
    /// enumeration columns.
    pub expected_extent: f64,
}

impl Default for WorkloadHints {
    fn default() -> Self {
        WorkloadHints {
            update_rate: 0.0,
            weighted: false,
            expected_extent: 0.001,
        }
    }
}

impl WorkloadHints {
    fn validate(&self) -> Result<(), CatalogError> {
        let unit = |v: f64| v.is_finite() && (0.0..=1.0).contains(&v);
        if !unit(self.update_rate) {
            return Err(CatalogError::InvalidSpec {
                reason: format!("update_rate {} is not in [0, 1]", self.update_rate),
            });
        }
        if !unit(self.expected_extent) {
            return Err(CatalogError::InvalidSpec {
                reason: format!("expected_extent {} is not in [0, 1]", self.expected_extent),
            });
        }
        Ok(())
    }
}

/// How a collection chooses its index structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KindSpec {
    /// This exact kind.
    Fixed(IndexKind),
    /// Let the [`planner`] choose from declared workload hints.
    Auto(WorkloadHints),
}

/// Everything needed to create one collection.
#[derive(Clone, Debug)]
pub struct CollectionSpec<E> {
    /// Collection name (validated by [`validate_collection_name`]).
    pub name: String,
    /// Index-kind choice: fixed or planner-driven.
    pub kind: KindSpec,
    /// Shard count for the backend (1 = monolithic).
    pub shards: usize,
    /// Seed for every draw stream the backend derives.
    pub seed: u64,
    /// Initial dataset; `data[i]` gets global id `i`.
    pub data: Vec<Interval<E>>,
    /// Per-interval weights (`weights[i]` belongs to `data[i]`); `Some`
    /// makes the collection weighted. An empty weighted collection is
    /// declared with `Some(vec![])`.
    pub weights: Option<Vec<f64>>,
}

impl<E> CollectionSpec<E> {
    /// A spec with planner-chosen kind, one shard, seed 0, and no data.
    pub fn new(name: impl Into<String>) -> Self {
        CollectionSpec {
            name: name.into(),
            kind: KindSpec::Auto(WorkloadHints::default()),
            shards: 1,
            seed: 0,
            data: Vec::new(),
            weights: None,
        }
    }

    /// Sets the kind choice.
    pub fn kind(mut self, kind: KindSpec) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the shard count (clamped to at least 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initial dataset.
    pub fn data(mut self, data: Vec<Interval<E>>) -> Self {
        self.data = data;
        self
    }

    /// Sets per-interval weights (making the collection weighted).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }
}

/// A point-in-time description of one collection.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionInfo {
    /// The collection's name.
    pub name: String,
    /// The index kind currently serving it (planner-chosen for `auto`
    /// collections, and updated by [`Catalog::reindex`]).
    pub kind: IndexKind,
    /// Backend shard count.
    pub shards: usize,
    /// Live intervals.
    pub len: usize,
    /// Whether the collection is weighted.
    pub weighted: bool,
    /// Estimated heap bytes its indexes retain (the budget's unit).
    pub heap_bytes: usize,
    /// The workload hints it was created with, if planner-driven.
    pub auto: Option<WorkloadHints>,
    /// The seed its draw streams derive from.
    pub seed: u64,
}

/// Per-collection id remap, created by the first re-index. Before any
/// re-index the backend's ids *are* the global ids and no map exists.
#[derive(Clone, Debug, Default)]
struct IdMap {
    /// Backend id → global id.
    to_global: HashMap<ItemId, ItemId>,
    /// Global id → backend id.
    to_backend: HashMap<ItemId, ItemId>,
}

/// Id bookkeeping: the live set keyed by global id (the rebuild source
/// and the delete gate) plus the optional remap.
struct Book<E> {
    live: BTreeMap<ItemId, (Interval<E>, f64)>,
    remap: Option<IdMap>,
    /// Next global id to issue once a remap exists; kept ≥ every id the
    /// backend ever issued so retired ids are never reissued.
    next_global: ItemId,
}

/// The swappable backend state: the client plus the kind serving it.
struct BackendState<E> {
    client: Client<E>,
    kind: IndexKind,
}

struct Collection<E> {
    name: String,
    shards: usize,
    seed: u64,
    weighted: bool,
    auto: Option<WorkloadHints>,
    state: RwLock<BackendState<E>>,
    book: Mutex<Book<E>>,
    /// The collection's writer seat: mutations and the re-index rebuild
    /// serialize here, so the live set is frozen while a replacement
    /// backend is built. Queries never touch it.
    writer: Mutex<()>,
    reindexing: AtomicBool,
}

impl<E: GridEndpoint> Collection<E> {
    fn heap_bytes(&self) -> usize {
        self.state
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .client
            .heap_bytes()
    }

    fn info(&self) -> CollectionInfo {
        let st = self.state.read().unwrap_or_else(|e| e.into_inner());
        CollectionInfo {
            name: self.name.clone(),
            kind: st.kind,
            shards: self.shards,
            len: st.client.len(),
            weighted: self.weighted,
            heap_bytes: st.client.heap_bytes(),
            auto: self.auto,
            seed: self.seed,
        }
    }
}

struct CatalogShared<E> {
    budget: Option<usize>,
    collections: RwLock<BTreeMap<String, Arc<Collection<E>>>>,
}

/// The shared multi-tenant handle: named collections behind one
/// `Clone + Send + Sync` value. Clones share all state — a server
/// thread per connection, a CLI process, and an embedding application
/// all see the same tenancy.
pub struct Catalog<E> {
    inner: Arc<CatalogShared<E>>,
}

impl<E> Clone for Catalog<E> {
    fn clone(&self) -> Self {
        Catalog {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The collection name single-tenant (pre-catalog) wire requests are
/// routed to when a server fronts a catalog: a plain `Run`/`Apply`
/// frame behaves as if tagged with this collection.
pub const DEFAULT_COLLECTION: &str = "default";

/// Per-insert admission estimate: what one more live interval is
/// assumed to cost across the index, its node overhead, and the
/// catalog's own bookkeeping. Deliberately generous — the budget is a
/// refusal threshold, not an accounting ledger.
fn insert_estimate<E>() -> usize {
    4 * std::mem::size_of::<Interval<E>>() + 64
}

impl<E: GridEndpoint> Default for Catalog<E> {
    fn default() -> Self {
        Catalog::new()
    }
}

impl<E: GridEndpoint> Catalog<E> {
    /// An empty catalog with no memory budget.
    pub fn new() -> Self {
        Catalog {
            inner: Arc::new(CatalogShared {
                budget: None,
                collections: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// An empty catalog whose collections may retain at most
    /// `budget_bytes` of estimated index heap memory in total.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Catalog {
            inner: Arc::new(CatalogShared {
                budget: Some(budget_bytes),
                collections: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// The configured budget, if any.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.inner.budget
    }

    /// Estimated heap bytes currently retained across all collections
    /// — the figure admission checks compare against the budget.
    pub fn used_bytes(&self) -> usize {
        let map = self
            .inner
            .collections
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.values().map(|c| c.heap_bytes()).sum()
    }

    fn get(&self, name: &str) -> Result<Arc<Collection<E>>, CatalogError> {
        let map = self
            .inner
            .collections
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.get(name)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownCollection {
                name: name.to_string(),
            })
    }

    /// Resolves the kind a spec asks for, enforcing data/kind
    /// compatibility (the planner handles `Auto`).
    fn resolve_kind(
        name: &str,
        kind: &KindSpec,
        weighted: bool,
        n: usize,
    ) -> Result<IndexKind, CatalogError> {
        match kind {
            KindSpec::Fixed(k) => {
                if weighted && !k.capabilities(true).weighted_sample {
                    return Err(CatalogError::IncompatibleKind {
                        name: name.to_string(),
                        kind: k.name().to_string(),
                        reason: "the kind cannot sample by weight; weighted collections \
                                 need awit, awit-dynamic, kds, hint-m, or interval-tree",
                    });
                }
                Ok(*k)
            }
            KindSpec::Auto(hints) => {
                hints.validate()?;
                if hints.weighted != weighted {
                    return Err(CatalogError::InvalidSpec {
                        reason: "the hints' weighted flag disagrees with whether \
                                 weights were supplied"
                            .to_string(),
                    });
                }
                Ok(planner::choose(hints, n))
            }
        }
    }

    /// Creates a collection from `spec` and reports its initial shape.
    ///
    /// Refuses with a typed [`CatalogError`] on an invalid name, a
    /// duplicate name, a kind that cannot serve the data, invalid
    /// hints, or a build that would cross the budget. `spec.data[i]`
    /// receives global id `i`, exactly like building a `Client` over
    /// the same slice.
    pub fn create(&self, spec: CollectionSpec<E>) -> Result<CollectionInfo, CatalogError> {
        validate_collection_name(&spec.name)?;
        {
            let map = self
                .inner
                .collections
                .read()
                .unwrap_or_else(|e| e.into_inner());
            if map.contains_key(&spec.name) {
                return Err(CatalogError::CollectionExists { name: spec.name });
            }
        }
        let weighted = spec.weights.is_some();
        let kind = Self::resolve_kind(&spec.name, &spec.kind, weighted, spec.data.len())?;
        let auto = match spec.kind {
            KindSpec::Auto(h) => Some(h),
            KindSpec::Fixed(_) => None,
        };

        let mut builder = Irs::builder()
            .kind(kind)
            .shards(spec.shards)
            .seed(spec.seed);
        if let Some(w) = &spec.weights {
            builder = builder.weights(w.clone());
        }
        let client = builder
            .build(&spec.data)
            .map_err(|e| CatalogError::InvalidSpec {
                reason: e.to_string(),
            })?;

        let live: BTreeMap<ItemId, (Interval<E>, f64)> = spec
            .data
            .iter()
            .enumerate()
            .map(|(i, iv)| {
                let w = spec.weights.as_ref().map_or(1.0, |w| w[i]);
                (i as ItemId, (*iv, w))
            })
            .collect();
        let collection = Arc::new(Collection {
            name: spec.name.clone(),
            shards: spec.shards.max(1),
            seed: spec.seed,
            weighted,
            auto,
            state: RwLock::new(BackendState { client, kind }),
            book: Mutex::new(Book {
                live,
                remap: None,
                next_global: spec.data.len() as ItemId,
            }),
            writer: Mutex::new(()),
            reindexing: AtomicBool::new(false),
        });

        // Admission and insertion are one critical section, so two
        // racing creates cannot both pass the budget check.
        let mut map = self
            .inner
            .collections
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if map.contains_key(&spec.name) {
            return Err(CatalogError::CollectionExists { name: spec.name });
        }
        if let Some(budget) = self.inner.budget {
            let used: usize = map.values().map(|c| c.heap_bytes()).sum();
            let requested = collection.heap_bytes();
            if used.saturating_add(requested) > budget {
                return Err(CatalogError::BudgetExceeded {
                    name: spec.name,
                    requested_bytes: requested,
                    used_bytes: used,
                    budget_bytes: budget,
                });
            }
        }
        let info = collection.info();
        map.insert(spec.name, collection);
        Ok(info)
    }

    /// Removes a collection; its memory is released once in-flight
    /// queries holding the handle finish.
    pub fn drop_collection(&self, name: &str) -> Result<(), CatalogError> {
        let mut map = self
            .inner
            .collections
            .write()
            .unwrap_or_else(|e| e.into_inner());
        map.remove(name)
            .map(|_| ())
            .ok_or_else(|| CatalogError::UnknownCollection {
                name: name.to_string(),
            })
    }

    /// Describes every collection, sorted by name.
    pub fn list(&self) -> Vec<CollectionInfo> {
        let map = self
            .inner
            .collections
            .read()
            .unwrap_or_else(|e| e.into_inner());
        map.values().map(|c| c.info()).collect()
    }

    /// Describes one collection.
    pub fn describe(&self, name: &str) -> Result<CollectionInfo, CatalogError> {
        Ok(self.get(name)?.info())
    }

    /// Runs a query batch against a collection on its own draw stream;
    /// one result per query, in order.
    pub fn run_in(
        &self,
        name: &str,
        queries: &[Query<E>],
    ) -> Result<Vec<Result<QueryOutput, QueryError>>, CatalogError> {
        let coll = self.get(name)?;
        let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
        let results = st.client.run(queries);
        Ok(translate_outputs(&coll, results))
    }

    /// Runs a query batch on an explicit seed. With a remap in place
    /// (after a re-index), translated ids are still deterministic:
    /// the same seed, batch, and collection state replay byte-identical
    /// results.
    pub fn run_seeded_in(
        &self,
        name: &str,
        queries: &[Query<E>],
        seed: u64,
    ) -> Result<Vec<Result<QueryOutput, QueryError>>, CatalogError> {
        let coll = self.get(name)?;
        let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
        let results = st.client.run_seeded(queries, seed);
        Ok(translate_outputs(&coll, results))
    }

    /// Applies a mutation batch to a collection under its writer seat;
    /// one result per mutation, in order. Ids in inputs and outputs are
    /// **global** ids — stable across re-indexes.
    ///
    /// An insert batch that would cross the catalog budget is refused
    /// whole with [`CatalogError::BudgetExceeded`] before any mutation
    /// lands; per-mutation failures (unknown id, unsupported kind)
    /// surface inside the result vector, exactly like `Client::apply`.
    pub fn apply_in(
        &self,
        name: &str,
        muts: &[Mutation<E>],
    ) -> Result<Vec<Result<UpdateOutput, UpdateError>>, CatalogError> {
        let coll = self.get(name)?;
        let _seat = coll.writer.lock().unwrap_or_else(|e| e.into_inner());

        if let Some(budget) = self.inner.budget {
            let inserts = muts
                .iter()
                .filter(|m| !matches!(m, Mutation::Delete { .. }))
                .count();
            if inserts > 0 {
                let used = self.used_bytes();
                let requested = inserts * insert_estimate::<E>();
                if used.saturating_add(requested) > budget {
                    return Err(CatalogError::BudgetExceeded {
                        name: name.to_string(),
                        requested_bytes: requested,
                        used_bytes: used,
                        budget_bytes: budget,
                    });
                }
            }
        }

        let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
        let mut book = coll.book.lock().unwrap_or_else(|e| e.into_inner());
        let mut writer = st.client.writer();
        let mut out = Vec::with_capacity(muts.len());
        for m in muts {
            out.push(apply_one(&mut writer, &mut book, *m));
        }
        Ok(out)
    }

    /// Rebuilds a collection on a different index kind and atomically
    /// swaps it in, while readers keep flowing on the old backend.
    ///
    /// The protocol: (1) take the collection's writer seat, freezing
    /// the live set (queries are untouched); (2) snapshot the current
    /// backend to `snapshot_dir` — or a scratch directory — so the
    /// collection survives a crash mid-rebuild; (3) build the
    /// replacement from the live set on the new kind; (4) swap backend
    /// and id remap together under the state write lock. Ids issued
    /// before the swap stay valid after it, and the next insert
    /// continues the global id sequence.
    pub fn reindex(
        &self,
        name: &str,
        kind: IndexKind,
        snapshot_dir: Option<&Path>,
    ) -> Result<CollectionInfo, CatalogError> {
        let coll = self.get(name)?;
        if coll
            .reindexing
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(CatalogError::ReindexInProgress {
                name: name.to_string(),
            });
        }
        let result = self.reindex_locked(&coll, kind, snapshot_dir);
        coll.reindexing.store(false, Ordering::SeqCst);
        result
    }

    fn reindex_locked(
        &self,
        coll: &Arc<Collection<E>>,
        kind: IndexKind,
        snapshot_dir: Option<&Path>,
    ) -> Result<CollectionInfo, CatalogError> {
        if coll.weighted && !kind.capabilities(true).weighted_sample {
            return Err(CatalogError::IncompatibleKind {
                name: coll.name.clone(),
                kind: kind.name().to_string(),
                reason: "the kind cannot sample by weight, and this collection is weighted",
            });
        }
        if let Some(hints) = &coll.auto {
            if hints.update_rate > 0.0 && !kind.capabilities(coll.weighted).update {
                return Err(CatalogError::IncompatibleKind {
                    name: coll.name.clone(),
                    kind: kind.name().to_string(),
                    reason: "the collection declared a churning workload, and this \
                             kind is a static snapshot",
                });
            }
        }

        // Writers stall here until the swap completes; readers flow.
        let _seat = coll.writer.lock().unwrap_or_else(|e| e.into_inner());

        // Durability first: the old backend goes to disk before the
        // rebuild, so a crash mid-rebuild loses nothing.
        let scratch;
        let snap_dir: &Path = match snapshot_dir {
            Some(dir) => dir,
            None => {
                scratch = scratch_snapshot_dir(&coll.name);
                &scratch
            }
        };
        std::fs::create_dir_all(snap_dir)
            .map_err(|e| CatalogError::Persist(irs_core::PersistError::io(snap_dir, &e)))?;
        {
            let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
            st.client.save(snap_dir)?;
        }

        // The live set is frozen (writer seat held); rebuild in global
        // id order so `data[i]` lands on backend id `i` on any kind.
        let (ids, data, weights): (Vec<ItemId>, Vec<Interval<E>>, Vec<f64>) = {
            let book = coll.book.lock().unwrap_or_else(|e| e.into_inner());
            let mut ids = Vec::with_capacity(book.live.len());
            let mut data = Vec::with_capacity(book.live.len());
            let mut weights = Vec::with_capacity(book.live.len());
            for (&g, &(iv, w)) in &book.live {
                ids.push(g);
                data.push(iv);
                weights.push(w);
            }
            (ids, data, weights)
        };
        let mut builder = Irs::builder()
            .kind(kind)
            .shards(coll.shards)
            .seed(coll.seed);
        if coll.weighted {
            builder = builder.weights(weights);
        }
        let fresh = builder
            .build(&data)
            .map_err(|e| CatalogError::InvalidSpec {
                reason: e.to_string(),
            })?;

        if let Some(budget) = self.inner.budget {
            let old = coll.heap_bytes();
            let new = fresh.heap_bytes();
            let used = self.used_bytes().saturating_sub(old);
            if used.saturating_add(new) > budget {
                return Err(CatalogError::BudgetExceeded {
                    name: coll.name.clone(),
                    requested_bytes: new,
                    used_bytes: used,
                    budget_bytes: budget,
                });
            }
        }

        // Atomic swap: backend and remap change together, under the
        // state write lock (no reader can be between run and translate)
        // then the book lock.
        {
            let mut st = coll.state.write().unwrap_or_else(|e| e.into_inner());
            let mut book = coll.book.lock().unwrap_or_else(|e| e.into_inner());
            let mut remap = IdMap::default();
            for (backend, &global) in ids.iter().enumerate() {
                remap.to_global.insert(backend as ItemId, global);
                remap.to_backend.insert(global, backend as ItemId);
            }
            book.remap = Some(remap);
            st.client = fresh;
            st.kind = kind;
        }
        if snapshot_dir.is_none() {
            let _ = std::fs::remove_dir_all(snap_dir);
        }
        Ok(coll.info())
    }

    /// Saves one collection's backend to `dir` in the single-tenant
    /// snapshot layout (loadable by `Client::load`) — the back-compat
    /// form of `save` a catalog-fronting server answers plain `Save`
    /// requests with.
    pub fn save_collection_snapshot(
        &self,
        name: &str,
        dir: impl AsRef<Path>,
    ) -> Result<(), CatalogError> {
        let coll = self.get(name)?;
        let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
        st.client.save(dir.as_ref())?;
        Ok(())
    }

    /// Saves every collection plus one catalog manifest to `dir`:
    /// `<dir>/collections/<name>/` per collection (the PR-5 snapshot
    /// layout) and `<dir>/catalog.irs` last, so an interrupted save
    /// leaves the previous manifest rather than a manifest over missing
    /// snapshots.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), CatalogError> {
        persist::save(self, dir.as_ref())
    }

    /// Restores a catalog saved by [`Catalog::save`]: the budget, every
    /// collection's backend, and the id bookkeeping — seeded replay
    /// after the round trip is byte-identical on every collection.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, CatalogError> {
        persist::load(dir.as_ref())
    }

    /// Rebuilds the internal state from persisted parts (the load
    /// path's constructor).
    fn from_parts(
        budget: Option<usize>,
        collections: BTreeMap<String, Arc<Collection<E>>>,
    ) -> Self {
        Catalog {
            inner: Arc::new(CatalogShared {
                budget,
                collections: RwLock::new(collections),
            }),
        }
    }
}

/// A scratch directory for the re-index durability snapshot when the
/// caller supplies none.
fn scratch_snapshot_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("irs-reindex-{}-{name}", std::process::id()))
}

/// Applies one mutation through the backend writer, translating global
/// ids to backend ids on the way in and back on the way out, and keeps
/// the book in step.
fn apply_one<E: GridEndpoint>(
    writer: &mut irs_client::ClientWriter<'_, E>,
    book: &mut Book<E>,
    m: Mutation<E>,
) -> Result<UpdateOutput, UpdateError> {
    match m {
        Mutation::Insert { iv } | Mutation::InsertWeighted { iv, .. } => {
            let weight = match m {
                Mutation::InsertWeighted { weight, .. } => weight,
                _ => 1.0,
            };
            let backend_id = match writer.apply(&[m]).pop().expect("one result per mutation")? {
                UpdateOutput::Inserted(id) => id,
                UpdateOutput::Removed => unreachable!("insert cannot answer Removed"),
            };
            let global = match &mut book.remap {
                None => {
                    book.next_global = book.next_global.max(backend_id + 1);
                    backend_id
                }
                Some(remap) => {
                    let global = book.next_global;
                    book.next_global += 1;
                    remap.to_global.insert(backend_id, global);
                    remap.to_backend.insert(global, backend_id);
                    global
                }
            };
            book.live.insert(global, (iv, weight));
            Ok(UpdateOutput::Inserted(global))
        }
        Mutation::Delete { id: global } => {
            // The book is authoritative for global ids: unknown ones
            // never reach the backend (whose id space may differ).
            if !book.live.contains_key(&global) {
                return Err(UpdateError::UnknownId { id: global });
            }
            let backend_id = match &book.remap {
                None => global,
                Some(remap) => *remap
                    .to_backend
                    .get(&global)
                    .expect("live global id must be mapped"),
            };
            writer
                .apply(&[Mutation::Delete { id: backend_id }])
                .pop()
                .expect("one result per mutation")?;
            book.live.remove(&global);
            if let Some(remap) = &mut book.remap {
                remap.to_backend.remove(&global);
                remap.to_global.remove(&backend_id);
            }
            Ok(UpdateOutput::Removed)
        }
    }
}

/// Translates backend ids in query outputs to global ids through the
/// collection's remap (identity before the first re-index). Called
/// while the caller still holds the state read lock, so the outputs
/// and the remap are from the same backend generation.
fn translate_outputs<E: GridEndpoint>(
    coll: &Collection<E>,
    mut results: Vec<Result<QueryOutput, QueryError>>,
) -> Vec<Result<QueryOutput, QueryError>> {
    let book = coll.book.lock().unwrap_or_else(|e| e.into_inner());
    let Some(remap) = &book.remap else {
        return results;
    };
    for result in &mut results {
        if let Ok(QueryOutput::Ids(ids) | QueryOutput::Samples(ids)) = result {
            for id in ids {
                // Every backend id is remapped at swap time, and
                // later inserts register theirs; a miss would mean a
                // torn swap, which the lock order rules out.
                *id = *remap.to_global.get(id).expect("backend id must be mapped");
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    type Iv = Interval<i64>;

    fn data(n: usize) -> Vec<Iv> {
        (0..n as i64)
            .map(|i| Interval::new(i * 3 % 101, i * 3 % 101 + 5 + i % 7))
            .collect()
    }

    #[test]
    fn create_list_describe_drop() {
        let catalog: Catalog<i64> = Catalog::new();
        catalog
            .create(
                CollectionSpec::new("alpha")
                    .kind(KindSpec::Fixed(IndexKind::Ait))
                    .data(data(100)),
            )
            .unwrap();
        catalog
            .create(
                CollectionSpec::new("beta")
                    .kind(KindSpec::Fixed(IndexKind::Kds))
                    .data(data(50)),
            )
            .unwrap();
        let names: Vec<_> = catalog.list().into_iter().map(|i| i.name).collect();
        assert_eq!(names, ["alpha", "beta"]);
        assert_eq!(catalog.describe("beta").unwrap().len, 50);
        assert!(matches!(
            catalog.create(CollectionSpec::new("alpha")),
            Err(CatalogError::CollectionExists { .. })
        ));
        catalog.drop_collection("alpha").unwrap();
        assert!(matches!(
            catalog.describe("alpha"),
            Err(CatalogError::UnknownCollection { .. })
        ));
        assert!(matches!(
            catalog.drop_collection("alpha"),
            Err(CatalogError::UnknownCollection { .. })
        ));
    }

    #[test]
    fn invalid_names_and_specs_are_refused() {
        let catalog: Catalog<i64> = Catalog::new();
        assert!(matches!(
            catalog.create(CollectionSpec::new("Not Valid")),
            Err(CatalogError::InvalidName { .. })
        ));
        assert!(matches!(
            catalog.create(CollectionSpec::new("w").kind(KindSpec::Auto(WorkloadHints {
                update_rate: 2.0,
                ..WorkloadHints::default()
            }))),
            Err(CatalogError::InvalidSpec { .. })
        ));
        // A weighted collection on a kind without weighted sampling.
        assert!(matches!(
            catalog.create(
                CollectionSpec::new("w2")
                    .kind(KindSpec::Fixed(IndexKind::Ait))
                    .data(data(4))
                    .weights(vec![1.0; 4])
            ),
            Err(CatalogError::IncompatibleKind { .. })
        ));
    }

    #[test]
    fn budget_refuses_creation_not_aborts() {
        let catalog: Catalog<i64> = Catalog::with_budget(1);
        let err = catalog
            .create(
                CollectionSpec::new("big")
                    .kind(KindSpec::Fixed(IndexKind::Ait))
                    .data(data(1000)),
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::BudgetExceeded { .. }));
        assert!(catalog.list().is_empty());
        assert_eq!(catalog.used_bytes(), 0);
    }

    #[test]
    fn mutations_keep_global_ids_across_reindex() {
        let catalog: Catalog<i64> = Catalog::new();
        catalog
            .create(
                CollectionSpec::new("churn")
                    .kind(KindSpec::Fixed(IndexKind::Ait))
                    .data(data(20)),
            )
            .unwrap();
        let out = catalog
            .apply_in(
                "churn",
                &[Mutation::Insert {
                    iv: Interval::new(1, 2),
                }],
            )
            .unwrap();
        let id = out[0].as_ref().unwrap().inserted().unwrap();
        assert_eq!(id, 20);

        catalog.reindex("churn", IndexKind::Kds, None).unwrap();
        assert_eq!(catalog.describe("churn").unwrap().kind, IndexKind::Kds);

        // Static kind: backend mutations refuse, but the id space is
        // intact — a delete of a pre-swap id fails *in the backend*
        // only if sent; here the book still translates it, and KDS
        // refuses with its typed error.
        let out = catalog
            .apply_in("churn", &[Mutation::Delete { id }])
            .unwrap();
        assert!(matches!(out[0], Err(UpdateError::UnsupportedKind { .. })));

        // Back onto an updatable kind: the pre-swap id still deletes.
        catalog.reindex("churn", IndexKind::Ait, None).unwrap();
        let out = catalog
            .apply_in("churn", &[Mutation::Delete { id }])
            .unwrap();
        assert_eq!(out[0], Ok(UpdateOutput::Removed));
        assert_eq!(catalog.describe("churn").unwrap().len, 20);
        // Deleting it again reports unknown — retired ids stay retired.
        let out = catalog
            .apply_in("churn", &[Mutation::Delete { id }])
            .unwrap();
        assert!(matches!(out[0], Err(UpdateError::UnknownId { .. })));
    }

    #[test]
    fn concurrent_reindex_is_refused() {
        let catalog: Catalog<i64> = Catalog::new();
        catalog
            .create(
                CollectionSpec::new("c")
                    .kind(KindSpec::Fixed(IndexKind::Ait))
                    .data(data(10)),
            )
            .unwrap();
        let coll = catalog.get("c").unwrap();
        coll.reindexing.store(true, Ordering::SeqCst);
        assert!(matches!(
            catalog.reindex("c", IndexKind::Kds, None),
            Err(CatalogError::ReindexInProgress { .. })
        ));
        coll.reindexing.store(false, Ordering::SeqCst);
        catalog.reindex("c", IndexKind::Kds, None).unwrap();
    }
}
