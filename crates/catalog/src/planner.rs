//! The adaptive planner: picks an [`IndexKind`] from declared
//! [`WorkloadHints`] using the capability table plus a static cost
//! model seeded from the committed bench matrix.
//!
//! Two stages:
//!
//! 1. **Capability filter.** A positive `update_rate` restricts the
//!    candidate set to update-capable kinds (`ait`, or `awit-dynamic`
//!    when weighted); a read-only workload considers the static kinds
//!    (weighted workloads only the weighted-capable ones). This stage
//!    alone guarantees the contract the catalog tests pin: churning
//!    hints never land on a static snapshot.
//! 2. **Cost model.** Among the survivors, each kind is scored by a
//!    throughput estimate interpolated from `BENCH_2026-08-07.json`'s
//!    pinned 1-shard / 1-thread rows (taxi profile, seed 42): QPS at
//!    `n = 200 000` and `n = 1 000 000`, interpolated log-linearly in
//!    the collection size and blended between the *sampling* and
//!    *enumeration* columns by `expected_extent` (wider queries shift
//!    weight toward enumeration throughput). Kinds absent from the
//!    pinned matrix (`hint-m`, `interval-tree`) score zero and rank
//!    last; ties break in [`IndexKind::ALL`] order. The model is
//!    deliberately static — it re-ranks only when the committed bench
//!    baseline is re-measured, so planning is deterministic across
//!    machines.

use crate::WorkloadHints;
use irs_engine::IndexKind;

/// One pinned bench row pair: `(kind, qps@200k, qps@1M)`.
type Row = (IndexKind, f64, f64);

/// `sample_qps` from `BENCH_2026-08-07.json` (1 shard, 1 thread,
/// batch 256, s = 1000, taxi profile).
const SAMPLE_QPS: [Row; 5] = [
    (IndexKind::Ait, 21_549.6, 16_807.3),
    (IndexKind::AitV, 15_938.6, 7_770.1),
    (IndexKind::Awit, 14_950.5, 5_694.0),
    (IndexKind::AwitDynamic, 10_890.7, 4_599.0),
    (IndexKind::Kds, 35_343.5, 16_460.1),
];

/// `search_qps` from the same pinned rows.
const SEARCH_QPS: [Row; 5] = [
    (IndexKind::Ait, 139_489.8, 6_220.7),
    (IndexKind::AitV, 43_108.3, 5_781.9),
    (IndexKind::Awit, 17_651.6, 5_083.6),
    (IndexKind::AwitDynamic, 46_090.4, 10_518.0),
    (IndexKind::Kds, 80_696.3, 14_735.7),
];

/// The two dataset sizes the pinned matrix measured.
const N_LO: f64 = 200_000.0;
const N_HI: f64 = 1_000_000.0;

/// QPS for `kind` at collection size `n`, log-linearly interpolated
/// between the two pinned sizes (clamped outside them). `None` for
/// kinds the pinned matrix never measured.
fn interpolate(table: &[Row], kind: IndexKind, n: usize) -> Option<f64> {
    let &(_, lo, hi) = table.iter().find(|(k, _, _)| *k == kind)?;
    let n = (n.max(1) as f64).clamp(N_LO, N_HI);
    let t = (n.ln() - N_LO.ln()) / (N_HI.ln() - N_LO.ln());
    Some(lo + (hi - lo) * t)
}

/// The planner's score for one candidate: higher is better. Public so
/// tooling (and the docs) can show why a kind won.
pub fn score(kind: IndexKind, hints: &WorkloadHints, n: usize) -> f64 {
    let extent = hints.expected_extent.clamp(0.0, 1.0);
    let sample = interpolate(&SAMPLE_QPS, kind, n).unwrap_or(0.0);
    let search = interpolate(&SEARCH_QPS, kind, n).unwrap_or(0.0);
    sample * (1.0 - extent) + search * extent
}

/// Candidate kinds after the capability filter.
pub fn candidates(hints: &WorkloadHints) -> Vec<IndexKind> {
    IndexKind::ALL
        .into_iter()
        .filter(|k| {
            let caps = k.capabilities(hints.weighted);
            if hints.update_rate > 0.0 && !caps.update {
                return false;
            }
            if hints.weighted {
                caps.weighted_sample
            } else {
                caps.uniform_sample
            }
        })
        .collect()
}

/// Picks the kind for a collection of `n` intervals declaring `hints`.
/// Deterministic: the capability filter, then the highest score, ties
/// broken in [`IndexKind::ALL`] order.
pub fn choose(hints: &WorkloadHints, n: usize) -> IndexKind {
    let candidates = candidates(hints);
    let mut best = candidates[0];
    let mut best_score = score(best, hints, n);
    for &k in &candidates[1..] {
        let s = score(k, hints, n);
        if s > best_score {
            best = k;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hints(update_rate: f64, weighted: bool, extent: f64) -> WorkloadHints {
        WorkloadHints {
            update_rate,
            weighted,
            expected_extent: extent,
        }
    }

    #[test]
    fn churning_hints_pick_update_capable_kinds() {
        for n in [0, 1_000, 200_000, 5_000_000] {
            let k = choose(&hints(0.2, false, 0.01), n);
            assert!(k.capabilities(false).update, "{k} is static");
            let k = choose(&hints(0.9, true, 0.5), n);
            assert!(k.capabilities(true).update, "{k} is static");
            assert!(k.capabilities(true).weighted_sample, "{k} not weighted");
        }
    }

    #[test]
    fn read_only_hints_pick_static_kinds() {
        for weighted in [false, true] {
            for extent in [0.0, 0.01, 0.5, 1.0] {
                let k = choose(&hints(0.0, weighted, extent), 200_000);
                // "Static" here means: the planner was free to pick a
                // snapshot kind, and with update_rate = 0 it never
                // pays for an update-capable wrapper it doesn't need.
                assert!(
                    !matches!(k, IndexKind::AwitDynamic) || weighted,
                    "uniform read-only picked the dynamic AWIT"
                );
                if weighted {
                    assert!(k.capabilities(true).weighted_sample);
                } else {
                    assert!(k.capabilities(false).uniform_sample);
                }
            }
        }
    }

    #[test]
    fn scores_interpolate_between_pinned_sizes() {
        let h = hints(0.0, false, 0.0);
        let lo = score(IndexKind::Kds, &h, 200_000);
        let mid = score(IndexKind::Kds, &h, 500_000);
        let hi = score(IndexKind::Kds, &h, 1_000_000);
        assert!(lo > mid && mid > hi, "{lo} {mid} {hi}");
        // Clamped outside the measured range.
        assert_eq!(score(IndexKind::Kds, &h, 10), lo);
        assert_eq!(score(IndexKind::Kds, &h, 50_000_000), hi);
    }

    #[test]
    fn unmeasured_kinds_rank_last() {
        let h = hints(0.0, false, 0.1);
        for k in [IndexKind::HintM, IndexKind::IntervalTree] {
            assert_eq!(score(k, &h, 200_000), 0.0);
        }
        assert_ne!(choose(&h, 200_000), IndexKind::HintM);
    }

    #[test]
    fn choice_is_deterministic() {
        let h = hints(0.0, true, 0.2);
        let first = choose(&h, 300_000);
        for _ in 0..10 {
            assert_eq!(choose(&h, 300_000), first);
        }
    }
}
