//! Catalog persistence: one manifest covering every collection.
//!
//! On-disk layout under the save directory:
//!
//! ```text
//! <dir>/
//!   catalog.irs              # ROLE_CATALOG header + manifest section
//!   collections/
//!     <name>/                # one PR-5 client snapshot per collection
//!       manifest.irs
//!       shard-0000.irs …
//! ```
//!
//! Collection snapshots are written **first**, the catalog manifest
//! **last** (each atomically), mirroring the engine's shard-then-
//! manifest order: an interrupted save leaves the previous manifest —
//! which still names the previous snapshots — rather than a new
//! manifest over missing directories.
//!
//! The manifest records what the client snapshots cannot: the budget,
//! each collection's planner hints, and the id bookkeeping (live set,
//! remap, next global id) that keeps the global-id contract intact
//! across re-indexes *and* restarts.

use crate::{BackendState, Book, Catalog, Collection, IdMap, WorkloadHints};
use irs_client::Client;
use irs_core::persist::{
    decode_section, encode_section, read_header, write_file_atomic, write_header, Codec,
    PersistError, Reader, ROLE_CATALOG,
};
use irs_core::{CatalogError, GridEndpoint, Interval, ItemId};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex, RwLock};

/// The catalog manifest's file name inside the save directory.
pub const CATALOG_MANIFEST_FILE: &str = "catalog.irs";

/// Subdirectory holding the per-collection client snapshots.
const COLLECTIONS_DIR: &str = "collections";

/// One collection's row in the catalog manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectionRecord<E> {
    /// Collection name (doubles as its snapshot subdirectory).
    pub name: String,
    /// Stable name of the kind serving it at save time.
    pub kind: String,
    /// Backend shard count.
    pub shards: usize,
    /// Draw-stream seed.
    pub seed: u64,
    /// Whether the collection is weighted.
    pub weighted: bool,
    /// Planner hints, if the collection was created with `kind: auto`
    /// (encoded as `(update_rate, weighted, expected_extent)`).
    pub auto: Option<(f64, bool, f64)>,
    /// Next global id to issue.
    pub next_global: ItemId,
    /// Backend-id → global-id pairs, present once a re-index happened.
    pub remap: Option<Vec<(ItemId, ItemId)>>,
    /// The live set: `(global id, interval, weight)`, sorted by id.
    pub live: Vec<(ItemId, (Interval<E>, f64))>,
}

/// The whole catalog's manifest: budget plus one record per collection.
#[derive(Clone, Debug, PartialEq)]
pub struct CatalogManifest<E> {
    /// The global memory budget, if one was configured.
    pub budget: Option<usize>,
    /// Every collection, sorted by name.
    pub collections: Vec<CollectionRecord<E>>,
}

impl<E: GridEndpoint> Codec for CollectionRecord<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.kind.encode_into(out);
        self.shards.encode_into(out);
        self.seed.encode_into(out);
        self.weighted.encode_into(out);
        self.auto.encode_into(out);
        self.next_global.encode_into(out);
        self.remap.encode_into(out);
        self.live.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CollectionRecord {
            name: String::decode(r)?,
            kind: String::decode(r)?,
            shards: usize::decode(r)?,
            seed: u64::decode(r)?,
            weighted: bool::decode(r)?,
            auto: Option::<(f64, bool, f64)>::decode(r)?,
            next_global: ItemId::decode(r)?,
            remap: Option::<Vec<(ItemId, ItemId)>>::decode(r)?,
            live: Vec::<(ItemId, (Interval<E>, f64))>::decode(r)?,
        })
    }
}

impl<E: GridEndpoint> Codec for CatalogManifest<E> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.budget.encode_into(out);
        self.collections.encode_into(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        Ok(CatalogManifest {
            budget: Option::<usize>::decode(r)?,
            collections: Vec::<CollectionRecord<E>>::decode(r)?,
        })
    }
}

pub(crate) fn save<E: GridEndpoint>(catalog: &Catalog<E>, dir: &Path) -> Result<(), CatalogError> {
    let subdir = dir.join(COLLECTIONS_DIR);
    std::fs::create_dir_all(&subdir).map_err(|e| PersistError::io(&subdir, &e))?;

    // Holding the map read lock across the save pins the tenancy: no
    // create/drop can slide between a snapshot and the manifest.
    let map = catalog
        .inner
        .collections
        .read()
        .unwrap_or_else(|e| e.into_inner());
    let mut records = Vec::with_capacity(map.len());
    for (name, coll) in map.iter() {
        let coll_dir = subdir.join(name);
        std::fs::create_dir_all(&coll_dir).map_err(|e| PersistError::io(&coll_dir, &e))?;
        // State read lock + book lock = one consistent generation of
        // (backend snapshot, id bookkeeping) per collection.
        let st = coll.state.read().unwrap_or_else(|e| e.into_inner());
        let book = coll.book.lock().unwrap_or_else(|e| e.into_inner());
        st.client.save(&coll_dir)?;
        records.push(CollectionRecord {
            name: name.clone(),
            kind: st.kind.name().to_string(),
            shards: coll.shards,
            seed: coll.seed,
            weighted: coll.weighted,
            auto: coll
                .auto
                .map(|h| (h.update_rate, h.weighted, h.expected_extent)),
            next_global: book.next_global,
            remap: book.remap.as_ref().map(|m| {
                let mut pairs: Vec<(ItemId, ItemId)> =
                    m.to_global.iter().map(|(&b, &g)| (b, g)).collect();
                pairs.sort_unstable();
                pairs
            }),
            live: book.live.iter().map(|(&g, &entry)| (g, entry)).collect(),
        });
    }

    let manifest = CatalogManifest::<E> {
        budget: catalog.inner.budget,
        collections: records,
    };
    let mut file = Vec::new();
    write_header(&mut file, ROLE_CATALOG);
    encode_section(&mut file, &manifest);
    write_file_atomic(&dir.join(CATALOG_MANIFEST_FILE), &file).map_err(CatalogError::from)
}

/// Reads `<dir>/catalog.irs` without loading any collection.
pub fn read_catalog_manifest<E: GridEndpoint>(
    dir: &Path,
) -> Result<CatalogManifest<E>, PersistError> {
    let path = dir.join(CATALOG_MANIFEST_FILE);
    let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, &e))?;
    let mut r = Reader::new(&bytes);
    read_header(&mut r, ROLE_CATALOG)?;
    let manifest = decode_section::<CatalogManifest<E>>(&mut r, "catalog manifest")?;
    if !r.is_empty() {
        return Err(PersistError::Corrupt {
            what: "catalog manifest file has trailing bytes",
        });
    }
    Ok(manifest)
}

pub(crate) fn load<E: GridEndpoint>(dir: &Path) -> Result<Catalog<E>, CatalogError> {
    let manifest = read_catalog_manifest::<E>(dir)?;
    let mut collections = BTreeMap::new();
    for record in manifest.collections {
        let coll_dir = dir.join(COLLECTIONS_DIR).join(&record.name);
        let client = Client::<E>::load(&coll_dir)?;
        let kind = irs_engine::IndexKind::parse(&record.kind).ok_or(PersistError::UnknownKind {
            name: record.kind.clone(),
        })?;
        if client.kind() != kind {
            return Err(CatalogError::Persist(PersistError::ManifestMismatch {
                what: "collection snapshot kind disagrees with the catalog manifest",
            }));
        }
        if client.len() != record.live.len() {
            return Err(CatalogError::Persist(PersistError::ManifestMismatch {
                what: "collection snapshot length disagrees with the catalog live set",
            }));
        }
        let remap = record.remap.map(|pairs| {
            let mut map = IdMap::default();
            for (backend, global) in pairs {
                map.to_global.insert(backend, global);
                map.to_backend.insert(global, backend);
            }
            map
        });
        let collection = Arc::new(Collection {
            name: record.name.clone(),
            shards: record.shards.max(1),
            seed: record.seed,
            weighted: record.weighted,
            auto: record
                .auto
                .map(|(update_rate, weighted, expected_extent)| WorkloadHints {
                    update_rate,
                    weighted,
                    expected_extent,
                }),
            state: RwLock::new(BackendState { client, kind }),
            book: Mutex::new(Book {
                live: record.live.into_iter().collect(),
                remap,
                next_global: record.next_global,
            }),
            writer: Mutex::new(()),
            reindexing: AtomicBool::new(false),
        });
        collections.insert(record.name, collection);
    }
    Ok(Catalog::from_parts(manifest.budget, collections))
}
